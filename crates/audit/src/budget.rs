//! The suppression budget: a checked-in ledger of how many allows each
//! rule is permitted.
//!
//! The point is review visibility, not ceremony: a new `db-audit:
//! allow(...)` anywhere in the tree changes a per-rule count, the budget
//! file stops matching, CI fails, and the diff that fixes CI is a
//! one-line edit to `audit.budget` that a reviewer cannot miss. Removed
//! allows fail the same way (the comparison is exact, not `<=`), so the
//! budget never goes stale.
//!
//! Format: one `<rule> <count>` pair per line; blank lines and `#`
//! comments ignored. Rules with zero used suppressions may be omitted.

use crate::engine::Report;
use std::collections::BTreeMap;

/// A budget mismatch, rendered for humans.
#[derive(Debug, PartialEq, Eq)]
pub struct BudgetError(pub String);

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Parses a budget file's contents.
///
/// # Errors
///
/// [`BudgetError`] on a malformed line.
pub fn parse(text: &str) -> Result<BTreeMap<String, usize>, BudgetError> {
    let mut out = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(count), None) = (it.next(), it.next(), it.next()) else {
            return Err(BudgetError(format!("budget line {}: expected `<rule> <count>`", i + 1)));
        };
        let count: usize = count
            .parse()
            .map_err(|_| BudgetError(format!("budget line {}: bad count `{count}`", i + 1)))?;
        out.insert(rule.to_string(), count);
    }
    Ok(out)
}

/// Compares a report's used-suppression counts against the budget.
///
/// # Errors
///
/// [`BudgetError`] listing every drifted rule.
pub fn check(report: &Report, budget: &BTreeMap<String, usize>) -> Result<(), BudgetError> {
    let mut drift = Vec::new();
    for (rule, &want) in budget {
        let got = report.suppressions.get(rule).copied().unwrap_or(0);
        if got != want {
            drift.push(format!("{rule}: budget {want}, found {got}"));
        }
    }
    for (rule, &got) in &report.suppressions {
        if !budget.contains_key(rule) && got != 0 {
            drift.push(format!("{rule}: budget 0 (absent), found {got}"));
        }
    }
    if drift.is_empty() {
        Ok(())
    } else {
        Err(BudgetError(format!(
            "suppression budget drift — update audit.budget if the new allows are justified:\n  {}",
            drift.join("\n  ")
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_check_roundtrip() {
        let b = parse("# comment\nno-naked-sqrt 3\n\nno-wallclock-in-core 6\n").unwrap();
        assert_eq!(b.len(), 2);
        let mut r = Report::default();
        r.suppressions.insert("no-naked-sqrt".into(), 3);
        r.suppressions.insert("no-wallclock-in-core".into(), 6);
        assert!(check(&r, &b).is_ok());
        r.suppressions.insert("no-naked-sqrt".into(), 4);
        assert!(check(&r, &b).is_err());
        // An allow for a rule the budget doesn't list at all also drifts.
        r.suppressions.insert("no-naked-sqrt".into(), 3);
        r.suppressions.insert("total-cmp".into(), 1);
        assert!(check(&r, &b).is_err());
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(parse("just-a-rule\n").is_err());
        assert!(parse("rule NaN\n").is_err());
        assert!(parse("rule 1 extra\n").is_err());
    }
}
