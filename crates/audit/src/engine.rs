//! The rule engine: source files, findings, and the suppression
//! protocol.
//!
//! # Suppressions
//!
//! A finding is silenced with an *allow comment* on the offending line or
//! on its own line directly above (stacking is fine):
//!
//! ```text
//! // db-audit: allow(no-wallclock-in-core) -- timing metadata only,
//! // never influences clustering output
//! let t0 = Instant::now();
//! ```
//!
//! The `-- reason` is mandatory: an allow without one is itself a finding
//! (`bad-allow`), as is an allow that matches no finding (`unused-allow`)
//! or names a rule that does not exist. Allows live in plain `//` (or
//! `/* */`) comments with the marker leading — doc comments cannot
//! suppress, so documentation may show the syntax freely. This is what
//! keeps the baseline at *zero unexplained suppressions*: every deviation
//! from an invariant is written down next to the code that needs it, and
//! the checked-in budget file (see `--budget`) makes the total count
//! reviewable.

use crate::lexer::Lexed;
use crate::rules::{all_rules, Rule};
use std::collections::BTreeMap;

/// One analyzed source file.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes, e.g.
    /// `crates/serve/src/service.rs`.
    pub path: String,
    /// The crate the file belongs to: the directory name under
    /// `crates/`, or `"workspace-root"` for the umbrella package's own
    /// `src/` and `tests/`.
    pub crate_name: String,
    /// True when the file lives under a `tests/`, `benches/` or
    /// `examples/` directory — the whole file is test context then.
    pub in_test_dir: bool,
    /// The lexed view.
    pub lexed: Lexed,
}

impl SourceFile {
    /// Builds a file from a workspace-relative path and its contents.
    pub fn new(path: &str, text: &str) -> Self {
        let path = path.replace('\\', "/");
        let parts: Vec<&str> = path.split('/').collect();
        let crate_name = match parts.first() {
            Some(&"crates") if parts.len() > 1 => parts[1].to_string(),
            _ => "workspace-root".to_string(),
        };
        let in_test_dir =
            parts.iter().any(|p| matches!(*p, "tests" | "benches" | "examples" | "fixtures"));
        SourceFile { path, crate_name, in_test_dir, lexed: Lexed::new(text) }
    }

    /// Whether a 1-based line is test context (test directory or inside
    /// a `#[cfg(test)]` / `#[test]` region).
    pub fn is_test_line(&self, line: usize) -> bool {
        self.in_test_dir || self.lexed.is_test_line(line)
    }

    /// Iterates the masked *production* lines: `(line number, text)`
    /// excluding test context.
    pub fn prod_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lexed.lines().filter(|(n, _)| !self.is_test_line(*n))
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `no-naked-sqrt`.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it (or how to suppress it legitimately).
    pub suggestion: String,
}

impl Finding {
    /// Renders `path:line:col [rule] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}\n    help: {}",
            self.path, self.line, self.col, self.rule, self.message, self.suggestion
        )
    }
}

/// One parsed allow comment.
#[derive(Debug, Clone)]
struct Allow {
    rule: String,
    /// The line the allow governs.
    target_line: usize,
    /// Where the comment itself sits (for diagnostics).
    at_line: usize,
    reason_present: bool,
    used: bool,
}

/// The result of auditing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Surviving findings (not suppressed), in file/line order.
    pub findings: Vec<Finding>,
    /// Per-rule count of *used* suppressions across the tree.
    pub suppressions: BTreeMap<String, usize>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

/// Marker prefix of an allow comment.
const ALLOW_MARKER: &str = "db-audit: allow(";

/// Parses the allow comments of one file. Malformed allows are returned
/// as findings immediately.
fn collect_allows(
    file: &SourceFile,
    known_rules: &[&str],
    findings: &mut Vec<Finding>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    // Line → has non-comment code, from the masked text.
    let masked_nonempty: Vec<bool> =
        file.lexed.masked.lines().map(|l| !l.trim().is_empty()).collect();

    for c in &file.lexed.comments {
        // Allows live in plain comments only, and the marker must lead:
        // doc comments (`///`, `//!`, `/**`, `/*!`) merely *talk about*
        // the syntax, they never suppress anything.
        let body = if let Some(b) = c.text.strip_prefix("//") {
            if b.starts_with('/') || b.starts_with('!') {
                continue;
            }
            b
        } else if let Some(b) = c.text.strip_prefix("/*") {
            if b.starts_with('*') || b.starts_with('!') {
                continue;
            }
            b
        } else {
            continue;
        };
        let Some(rest) = body.trim_start().strip_prefix(ALLOW_MARKER) else { continue };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                rule: "bad-allow",
                path: file.path.clone(),
                line: c.line,
                col: c.col,
                message: "malformed allow comment: missing `)`".into(),
                suggestion: "write `// db-audit: allow(<rule>) -- <reason>`".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !known_rules.contains(&rule.as_str()) {
            findings.push(Finding {
                rule: "bad-allow",
                path: file.path.clone(),
                line: c.line,
                col: c.col,
                message: format!("allow names unknown rule `{rule}`"),
                suggestion: "run `db-audit --list-rules` for the rule catalogue".into(),
            });
            continue;
        }
        let reason = rest[close + 1..].trim();
        let reason_present =
            reason.strip_prefix("--").map(str::trim).is_some_and(|r| !r.is_empty());
        if !reason_present {
            findings.push(Finding {
                rule: "bad-allow",
                path: file.path.clone(),
                line: c.line,
                col: c.col,
                message: format!("allow({rule}) has no reason"),
                suggestion: "suppressions must explain themselves: \
                             `// db-audit: allow(<rule>) -- <reason>`"
                    .into(),
            });
            continue;
        }
        // Trailing allow governs its own line; an allow on a line of its
        // own governs the next line that has code (skipping further
        // comment-only/blank lines so allows can stack or wrap).
        let own_line_has_code = masked_nonempty.get(c.line - 1).copied().unwrap_or(false);
        let target_line = if own_line_has_code {
            c.line
        } else {
            let mut l = c.line + 1;
            while l <= masked_nonempty.len() && !masked_nonempty[l - 1] {
                l += 1;
            }
            l
        };
        allows.push(Allow { rule, target_line, at_line: c.line, reason_present, used: false });
    }
    allows
}

/// Runs `rules` over `files`, applies suppressions, and returns the
/// report. When `full_rule_set` is false (a `--rule` subset is active),
/// unused allows are not reported — an allow for a rule that did not run
/// is not evidence of anything.
pub fn run(files: &[SourceFile], rules: &[&dyn Rule], full_rule_set: bool) -> Report {
    let known: Vec<&str> = all_rules().iter().map(|r| r.id()).collect();
    let mut report = Report { files_scanned: files.len(), ..Report::default() };

    for file in files {
        let mut raw = Vec::new();
        let mut allows = collect_allows(file, &known, &mut raw);
        for rule in rules {
            rule.check(file, &mut raw);
        }
        // Apply suppressions. `bad-allow` findings are never suppressible.
        for f in raw {
            if f.rule != "bad-allow" {
                if let Some(a) = allows
                    .iter_mut()
                    .find(|a| a.rule == f.rule && a.target_line == f.line && a.reason_present)
                {
                    a.used = true;
                    *report.suppressions.entry(a.rule.clone()).or_insert(0) += 1;
                    continue;
                }
            }
            report.findings.push(f);
        }
        if full_rule_set {
            for a in &allows {
                if !a.used {
                    report.findings.push(Finding {
                        rule: "unused-allow",
                        path: file.path.clone(),
                        line: a.at_line,
                        col: 1,
                        message: format!(
                            "allow({}) on line {} suppresses nothing",
                            a.rule, a.target_line
                        ),
                        suggestion: "delete the stale allow (the violation it excused is gone)"
                            .into(),
                    });
                }
            }
        }
    }
    report
        .findings
        .sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)).then(a.col.cmp(&b.col)));
    report
}

/// Convenience for tests: analyze one in-memory file with the given
/// rules (all rules when `rules` is empty); unused-allow checking is on
/// only for the full set.
pub fn analyze_source(path: &str, text: &str, rule_ids: &[&str]) -> Report {
    let files = vec![SourceFile::new(path, text)];
    let all = all_rules();
    let selected: Vec<&dyn Rule> = if rule_ids.is_empty() {
        all.iter().map(|r| &**r).collect()
    } else {
        all.iter().filter(|r| rule_ids.contains(&r.id())).map(|r| &**r).collect()
    };
    run(&files, &selected, rule_ids.is_empty())
}
