//! A small Rust lexer: just enough syntax awareness for line-oriented
//! lint rules to be trustworthy.
//!
//! The rules in this crate are token scans, and a naive token scan over
//! raw source text lies constantly: `".unwrap()"` inside a string, a
//! `partial_cmp` in a doc comment, a `'a` lifetime read as an unclosed
//! char literal. This lexer produces a *masked* view of a file in which
//! the contents of every comment and string literal are replaced by
//! spaces (newlines and delimiters are kept, so byte offsets, line
//! numbers, and columns all still line up with the original source), plus
//! side tables of the comments and string literals that were masked out —
//! comments carry the `db-audit: allow(...)` suppressions, and string
//! literals carry the metric names the `counter-naming` rule checks.
//!
//! On top of the masked text a second pass tracks brace nesting to mark
//! *test regions*: the body of any item annotated `#[cfg(test)]` /
//! `#[test]` / `#[bench]`, and any inline `mod tests { ... }`. Rules use
//! the per-line test mask to confine themselves to production code.
//!
//! Handled explicitly, because each one has burned a grep-based audit
//! before: nested block comments, raw strings with arbitrary `#` fences,
//! byte and raw-byte strings, raw identifiers (`r#fn` is not a string),
//! char literals vs lifetimes (`'a'` vs `'a`), and escaped quotes.

/// A comment stripped from the source, with its position.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// 1-based column (in bytes) of the comment's first character.
    pub col: usize,
    /// The raw comment text, including the `//` / `/*` delimiters.
    pub text: String,
}

/// A string literal stripped from the source, with its position.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// 1-based column (in bytes) of the opening quote.
    pub col: usize,
    /// The literal's content between the quotes, still in escaped form.
    pub content: String,
}

/// The lexed view of one source file.
#[derive(Debug)]
pub struct Lexed {
    /// The source with comment and string contents blanked to spaces.
    /// Same byte length as the input; newlines preserved.
    pub masked: String,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
    /// `test_mask[i]` is true when 0-based line `i` lies inside a test
    /// region (`#[cfg(test)]` / `#[test]` / `#[bench]` item body or an
    /// inline `mod tests`).
    pub test_mask: Vec<bool>,
}

impl Lexed {
    /// Lexes `src`. Never fails: unterminated constructs simply mask to
    /// the end of the file, which is the forgiving behavior a linter
    /// wants (rustc will reject the file anyway).
    pub fn new(src: &str) -> Self {
        let (masked, comments, strings) = mask(src);
        let test_mask = mark_test_regions(&masked);
        Lexed { masked, comments, strings, test_mask }
    }

    /// Iterates `(1-based line number, masked line text)`.
    pub fn lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.masked.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether a 1-based line is inside a test region.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_mask.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }
}

/// First pass: the character-level state machine producing the masked
/// text and the comment/string side tables.
fn mask(src: &str) -> (String, Vec<Comment>, Vec<StrLit>) {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();

    // (line, col) bookkeeping: both 1-based, col counts bytes.
    let mut line = 1usize;
    let mut col = 1usize;
    let mut i = 0usize;

    // Blank `out[a..b]` to spaces, preserving newlines.
    let blank = |out: &mut Vec<u8>, a: usize, b: usize| {
        for c in &mut out[a..b] {
            if *c != b'\n' {
                *c = b' ';
            }
        }
    };
    // Advance (line, col) over `src[a..b]`.
    fn advance(bytes: &[u8], a: usize, b: usize, line: &mut usize, col: &mut usize) {
        for &c in &bytes[a..b] {
            if c == b'\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
        }
    }

    while i < bytes.len() {
        let c = bytes[i];
        let rest = &bytes[i..];

        // Line comment (//, ///, //!).
        if rest.starts_with(b"//") {
            let end = memchr_newline(bytes, i);
            comments.push(Comment {
                line,
                col,
                text: String::from_utf8_lossy(&bytes[i..end]).into_owned(),
            });
            blank(&mut out, i, end);
            advance(bytes, i, end, &mut line, &mut col);
            i = end;
            continue;
        }

        // Block comment, possibly nested.
        if rest.starts_with(b"/*") {
            let (start_line, start_col) = (line, col);
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j..].starts_with(b"/*") {
                    depth += 1;
                    j += 2;
                } else if bytes[j..].starts_with(b"*/") {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                col: start_col,
                text: String::from_utf8_lossy(&bytes[i..j]).into_owned(),
            });
            blank(&mut out, i, j);
            advance(bytes, i, j, &mut line, &mut col);
            i = j;
            continue;
        }

        // Raw string: r"..." / r#"..."# / br"..." / br##"..."## — but NOT
        // a raw identifier like r#fn. Byte strings b"..." share the
        // normal-string scanner below.
        if c == b'r' || (c == b'b' && rest.len() > 1 && rest[1] == b'r') {
            let hash_start = if c == b'r' { i + 1 } else { i + 2 };
            let mut h = hash_start;
            while h < bytes.len() && bytes[h] == b'#' {
                h += 1;
            }
            if h < bytes.len()
                && bytes[h] == b'"'
                && !is_ident_byte(i.checked_sub(1).map(|p| bytes[p]))
            {
                let fence = h - hash_start; // number of #s
                let (start_line, start_col) = (line, col);
                // Find closing `"` followed by `fence` #s.
                let mut j = h + 1;
                let close = loop {
                    match bytes[j..].iter().position(|&b| b == b'"') {
                        Some(p) => {
                            let q = j + p;
                            if bytes[q + 1..].len() >= fence
                                && bytes[q + 1..q + 1 + fence].iter().all(|&b| b == b'#')
                            {
                                break q;
                            }
                            j = q + 1;
                        }
                        None => break bytes.len(), // unterminated: mask to EOF
                    }
                };
                strings.push(StrLit {
                    line: start_line,
                    col: start_col,
                    content: String::from_utf8_lossy(&bytes[h + 1..close.min(bytes.len())])
                        .into_owned(),
                });
                let end = (close + 1 + fence).min(bytes.len());
                blank(&mut out, h + 1, close.min(bytes.len()));
                advance(bytes, i, end, &mut line, &mut col);
                i = end;
                continue;
            }
            // r#ident or a plain identifier starting with r/b: fall
            // through to the identifier scanner at the bottom.
        }

        // Normal or byte string literal.
        if c == b'"' || (c == b'b' && rest.len() > 1 && rest[1] == b'"') {
            // Don't treat the b of an identifier ending in b as a prefix.
            if c == b'"' || !is_ident_byte(i.checked_sub(1).map(|p| bytes[p])) {
                let open = if c == b'"' { i } else { i + 1 };
                let (start_line, start_col) = (line, col);
                let mut j = open + 1;
                while j < bytes.len() {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                let close = j.min(bytes.len());
                strings.push(StrLit {
                    line: start_line,
                    col: start_col,
                    content: String::from_utf8_lossy(&bytes[open + 1..close]).into_owned(),
                });
                blank(&mut out, open + 1, close);
                let end = (close + 1).min(bytes.len());
                advance(bytes, i, end, &mut line, &mut col);
                i = end;
                continue;
            }
        }

        // Char literal vs lifetime. A `'` begins a char literal when it is
        // `'\...'`, `'x'` (any single char, possibly multi-byte), while
        // `'ident` with no closing quote right after is a lifetime (or a
        // loop label), left in the masked text as ordinary code.
        if c == b'\'' {
            let after = &bytes[i + 1..];
            let is_char = if after.first() == Some(&b'\\') {
                true // escape: always a char literal
            } else {
                // `'X'` where X is one (possibly multi-byte) character.
                let char_len = utf8_len(after.first().copied());
                after.get(char_len) == Some(&b'\'')
            };
            if is_char {
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'\\') {
                    // Skip the escape intro + escaped byte, then run to the
                    // closing quote (covers '\n', '\'', '\u{1F600}').
                    j += 2;
                    while j < bytes.len() && bytes[j] != b'\'' {
                        j += 1;
                    }
                } else {
                    j += utf8_len(bytes.get(j).copied());
                }
                let end = (j + 1).min(bytes.len());
                blank(&mut out, i + 1, end.saturating_sub(1));
                advance(bytes, i, end, &mut line, &mut col);
                i = end;
                continue;
            }
            // Lifetime / label: emit the `'` and continue as code.
        }

        // Ordinary code byte.
        if c == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
        i += 1;
    }

    (String::from_utf8_lossy(&out).into_owned(), comments, strings)
}

/// Whether the previous byte (if any) could continue an identifier —
/// used to tell the `r` in `burr"` apart from a raw-string prefix.
fn is_ident_byte(b: Option<u8>) -> bool {
    matches!(b, Some(c) if c == b'_' || c.is_ascii_alphanumeric())
}

/// Length in bytes of the UTF-8 character starting with `b` (1 for
/// ASCII/None, so unterminated files degrade gracefully).
fn utf8_len(b: Option<u8>) -> usize {
    match b {
        Some(c) if c >= 0xF0 => 4,
        Some(c) if c >= 0xE0 => 3,
        Some(c) if c >= 0xC0 => 2,
        _ => 1,
    }
}

fn memchr_newline(bytes: &[u8], from: usize) -> usize {
    bytes[from..].iter().position(|&b| b == b'\n').map(|p| from + p).unwrap_or(bytes.len())
}

/// Second pass: brace-nesting scan of the *masked* text that marks the
/// line ranges of test regions.
///
/// A region opens at the `{` of the first block following a
/// `#[cfg(test)]` / `#[test]` / `#[bench]` attribute or a `mod tests`
/// header, and closes when brace depth returns to the opening level. An
/// intervening `;` at the same depth cancels a pending attribute (e.g.
/// `#[cfg(test)] mod tests;` declares an out-of-line module and governs
/// no braces here).
fn mark_test_regions(masked: &str) -> Vec<bool> {
    let n_lines = masked.lines().count();
    let mut mask = vec![false; n_lines];
    let bytes = masked.as_bytes();

    let mut depth: i64 = 0;
    let mut line = 0usize; // 0-based
    let mut pending_attr = false;
    // Stack of depths at which a test region opened; any nesting inside
    // stays marked until we pop back below the outermost one.
    let mut region_open_depth: Option<i64> = None;

    let mut i = 0usize;
    while i < bytes.len() {
        let rest = &bytes[i..];
        match bytes[i] {
            b'\n' => {
                line += 1;
            }
            b'{' => {
                if pending_attr && region_open_depth.is_none() {
                    region_open_depth = Some(depth);
                }
                pending_attr = false;
                depth += 1;
            }
            b'}' => {
                depth -= 1;
                if let Some(open) = region_open_depth {
                    if depth <= open {
                        // Mark the closing line too, then end the region.
                        if line < mask.len() {
                            mask[line] = true;
                        }
                        region_open_depth = None;
                    }
                }
            }
            b';' => {
                pending_attr = false;
            }
            b'#' if rest.starts_with(b"#[") => {
                // Scan the attribute to its closing bracket (attributes
                // can nest brackets: #[cfg(all(test, feature = "x"))]).
                let mut j = i + 1;
                let mut bdepth = 0i64;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => bdepth += 1,
                        b']' => {
                            bdepth -= 1;
                            if bdepth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let attr = &masked[i..(j + 1).min(masked.len())];
                if attr.contains("cfg(test") || attr_is(attr, "test") || attr_is(attr, "bench") {
                    pending_attr = true;
                }
                // Attributes can span lines; account for the newlines.
                for &b in &bytes[i..(j + 1).min(bytes.len())] {
                    if b == b'\n' {
                        line += 1;
                        if region_open_depth.is_some() && line < mask.len() {
                            mask[line] = true;
                        }
                        // A pending test attribute's own lines belong to
                        // the region it is about to open; simplest to
                        // leave them unmarked — the *body* is the region.
                    }
                }
                i = (j + 1).min(bytes.len());
                continue;
            }
            b'm' if rest.starts_with(b"mod ") && token_boundary_before(bytes, i) => {
                // `mod tests` (any module literally named tests/test).
                let name_start = i + 4;
                let name_end = ident_end(bytes, name_start);
                let name = &masked[name_start..name_end];
                if name == "tests" || name == "test" {
                    pending_attr = true;
                }
            }
            _ => {}
        }
        if region_open_depth.is_some() && line < mask.len() {
            mask[line] = true;
        }
        i += 1;
    }
    mask
}

/// `attr` is exactly `#[name]` (whitespace tolerated).
fn attr_is(attr: &str, name: &str) -> bool {
    let inner = attr.trim_start_matches("#[").trim_end_matches(']').trim();
    inner == name
}

fn token_boundary_before(bytes: &[u8], i: usize) -> bool {
    !is_ident_byte(i.checked_sub(1).map(|p| bytes[p]))
}

fn ident_end(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && is_ident_byte(Some(bytes[i])) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_block_comments() {
        let l = Lexed::new("let a = 1; // unwrap()\n/* expect( */ let b = 2;\n");
        assert!(!l.masked.contains("unwrap"));
        assert!(!l.masked.contains("expect"));
        assert!(l.masked.contains("let a = 1;"));
        assert!(l.masked.contains("let b = 2;"));
        assert_eq!(l.comments.len(), 2);
    }

    #[test]
    fn masks_nested_block_comments() {
        let l = Lexed::new("a /* outer /* inner */ still comment */ b\n");
        assert!(l.masked.contains('a'));
        assert!(l.masked.contains('b'));
        assert!(!l.masked.contains("inner"));
        assert!(!l.masked.contains("still"));
    }

    #[test]
    fn masks_strings_but_keeps_positions() {
        let src = "let s = \"x.unwrap()\"; let t = 1;\n";
        let l = Lexed::new(src);
        assert_eq!(l.masked.len(), src.len());
        assert!(!l.masked.contains("unwrap"));
        assert!(l.masked.contains("let t = 1;"));
        assert_eq!(l.strings.len(), 1);
        assert_eq!(l.strings[0].content, "x.unwrap()");
    }

    #[test]
    fn raw_strings_and_raw_identifiers() {
        let l = Lexed::new("let a = r#\"has \"quotes\" and unwrap()\"#; let r#fn = 1;\n");
        assert!(!l.masked.contains("unwrap"));
        assert_eq!(l.strings.len(), 1);
        assert!(l.strings[0].content.contains("\"quotes\""));
        // r#fn survives as code.
        assert!(l.masked.contains("r#fn"));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let src = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let c = 'x'; }\n";
        let l = Lexed::new(src);
        // The quote char literal must not open a string.
        assert_eq!(l.strings.len(), 0);
        assert!(l.masked.contains("<'a>"));
        assert!(l.masked.contains("&'a str"));
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn prod() { work(); }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n\
                   fn prod2() {}\n";
        let l = Lexed::new(src);
        assert!(!l.is_test_line(1));
        assert!(l.is_test_line(5)); // body of t()
        assert!(!l.is_test_line(7)); // prod2
    }

    #[test]
    fn cfg_test_on_out_of_line_mod_does_not_capture_next_block() {
        let src = "#[cfg(test)]\nmod tests;\nfn prod() { x(); }\n";
        let l = Lexed::new(src);
        assert!(!l.is_test_line(3));
    }
}
