//! `db-audit` — the workspace invariant auditor.
//!
//! A zero-dependency static-analysis pass that turns the project's
//! conventions — bit-determinism across thread counts, squared-space
//! distance discipline, NaN-total orderings, panic-freedom of service
//! paths, `u32`-id cast safety, deterministic iteration, metric naming,
//! and the serve-crate lock order — into *named, machine-checked rules*
//! with span-aware diagnostics and an explicit, reasoned suppression
//! syntax.
//!
//! Layers:
//!
//! * [`lexer`] — a small Rust lexer: comments, strings, raw strings,
//!   char-vs-lifetime disambiguation, nesting-aware brace tracking, and
//!   `#[cfg(test)]` / `mod tests` / `#[test]` region detection, so rules
//!   can scan *code* (not comments or string contents) and distinguish
//!   test from production lines.
//! * [`engine`] — [`engine::SourceFile`], [`engine::Finding`], the
//!   suppression protocol (`// db-audit: allow(<rule>) -- <reason>`,
//!   reason mandatory), and the runner.
//! * [`rules`] — the rule catalogue; see its module docs for the list
//!   and the provenance of each invariant.
//! * [`walk`] — the workspace file walk (honors `target/` exclusions).
//! * [`budget`] — the checked-in suppression budget CI pins.
//!
//! The `db-audit` binary wires these together; `--json` emits a
//! machine-readable report and the exit code is nonzero on any finding.

#![warn(missing_docs)]

pub mod budget;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::path::Path;

/// Runs the given rules (all when `rule_ids` is empty) over every Rust
/// file under `root`.
///
/// # Errors
///
/// An error string for an unreadable tree or an unknown rule id.
pub fn audit_workspace(root: &Path, rule_ids: &[String]) -> Result<engine::Report, String> {
    let all = rules::all_rules();
    let selected: Vec<&dyn rules::Rule> = if rule_ids.is_empty() {
        all.iter().map(|r| &**r).collect()
    } else {
        let mut sel = Vec::new();
        for id in rule_ids {
            match all.iter().find(|r| r.id() == id) {
                Some(r) => sel.push(&**r),
                None => return Err(format!("unknown rule `{id}` (try --list-rules)")),
            }
        }
        sel
    };
    let files = walk::rust_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut sources = Vec::with_capacity(files.len());
    for (rel, path) in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        sources.push(engine::SourceFile::new(&rel, &text));
    }
    Ok(engine::run(&sources, &selected, rule_ids.is_empty()))
}

/// Minimal JSON string escaping for report output (the workspace rule:
/// no external crates, so the auditor writes its own JSON like everyone
/// else here).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a [`engine::Report`] as a JSON object.
pub fn report_json(report: &engine::Report) -> String {
    let mut s = String::from("{\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"suggestion\":\"{}\"}}",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(&f.suggestion),
        ));
    }
    s.push_str("],\"suppressions\":{");
    for (i, (rule, count)) in report.suppressions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\":{}", json_escape(rule), count));
    }
    s.push_str(&format!("}},\"files_scanned\":{}}}", report.files_scanned));
    s
}
