//! The `db-audit` binary: audit the workspace, print findings, gate CI.
//!
//! ```text
//! db-audit [--root <dir>] [--rule <id>]... [--json] [--budget <file>] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean (and budget matched, when given), `1` findings
//! or budget drift, `2` usage / I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use db_audit::rules::all_rules;
use db_audit::{audit_workspace, budget, report_json};

struct Args {
    root: PathBuf,
    rules: Vec<String>,
    json: bool,
    budget: Option<PathBuf>,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        rules: Vec::new(),
        json: false,
        budget: None,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a value")?),
            "--rule" => args.rules.push(it.next().ok_or("--rule needs a value")?),
            "--json" => args.json = true,
            "--budget" => {
                args.budget = Some(PathBuf::from(it.next().ok_or("--budget needs a value")?));
            }
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: db-audit [--root <dir>] [--rule <id>]... [--json] \
                            [--budget <file>] [--list-rules]"
                    .to_string());
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in all_rules() {
            println!("{:<22} {}", r.id(), r.summary());
        }
        let meta = [
            ("bad-allow", "suppression without a reason or naming an unknown rule"),
            ("unused-allow", "suppression that matches no finding"),
        ];
        for (id, summary) in meta {
            println!("{id:<22} {summary}");
        }
        return ExitCode::SUCCESS;
    }

    let report = match audit_workspace(&args.root, &args.rules) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("db-audit: {msg}");
            return ExitCode::from(2);
        }
    };

    let budget_result = match &args.budget {
        None => Ok(()),
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("db-audit: reading budget {}: {e}", path.display());
                return ExitCode::from(2);
            }
            Ok(text) => match budget::parse(&text) {
                Err(e) => {
                    eprintln!("db-audit: {e}");
                    return ExitCode::from(2);
                }
                Ok(b) => budget::check(&report, &b),
            },
        },
    };

    if args.json {
        println!("{}", report_json(&report));
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        let total_allows: usize = report.suppressions.values().sum();
        println!(
            "db-audit: {} finding(s), {} reasoned suppression(s), {} file(s) scanned",
            report.findings.len(),
            total_allows,
            report.files_scanned
        );
    }
    if let Err(e) = &budget_result {
        eprintln!("db-audit: {e}");
    }

    if report.findings.is_empty() && budget_result.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
