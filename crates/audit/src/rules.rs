//! The rule catalogue: each of the workspace's hard-won invariants,
//! written down as a checkable property.
//!
//! Every rule here earned its place by being violated (or nearly so) at
//! some point in the project's history:
//!
//! * [`no-unwrap-prod`] — service/supervision/pipeline code must not
//!   panic on `Result`/`Option`; PR 7/8 converted these paths to typed
//!   errors and this rule keeps them converted.
//! * [`total-cmp`] — float orderings go through `f64::total_cmp` (or the
//!   shared [`db_spatial::order`] helper); `partial_cmp` on NaN-capable
//!   values silently reorders under adversarial input (PR 2).
//! * [`no-naked-sqrt`] — the ε/k-NN pipeline compares in *squared* space
//!   and takes `sqrt` only at reporting flush sites (the PR 9 audit,
//!   made permanent).
//! * [`no-wallclock-in-core`] — determinism paths never read clocks;
//!   wall time lives in obs/supervise/serve/bench (PR 3's bit-for-bit
//!   guarantee would silently die the day a clock steered a loop).
//! * [`checked-id-cast`] — point/bubble ids are `u32`; a bare `as u32`
//!   silently truncates above [`Dataset::MAX_POINTS`], so casts go
//!   through `db_spatial::id::{checked_id, id_u32}`.
//! * [`no-hashmap-iter-order`] — crates that produce `PipelineOutput` or
//!   orderings must not iterate `HashMap`/`HashSet` (iteration order is
//!   nondeterministic); collect and sort, or keep maps lookup-only.
//! * [`counter-naming`] — metric/span names follow the registry's
//!   `area.snake_case` convention so exporters group them correctly.
//! * [`lock-order`] — in `db-serve`, `live` is never acquired while
//!   `cache` is held (the PR 8 deadlock convention), enforced by an
//!   acquisition-site scan.
//!
//! Two meta rules are always on and live in the engine, not here:
//! `bad-allow` (a suppression without a reason, or naming an unknown
//! rule) and `unused-allow` (a suppression that excuses nothing).
//!
//! # Adding a rule
//!
//! Implement [`Rule`] (scoping by crate/path is the rule's own job —
//! helpers below), append it to [`all_rules`], add a positive, a
//! negative, and an allow fixture to `tests/rules.rs`, document it in
//! `DESIGN.md` §14, and — if the initial sweep needs suppressions —
//! update the checked-in `audit.budget`.

use crate::engine::{Finding, SourceFile};

/// One lint rule.
pub trait Rule {
    /// Stable kebab-case id, used in diagnostics, `--rule`, and allows.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn summary(&self) -> &'static str;
    /// Scans one file, pushing findings.
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>);
}

/// The full rule set, in catalogue order.
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapProd),
        Box::new(TotalCmp),
        Box::new(NoNakedSqrt),
        Box::new(NoWallclockInCore),
        Box::new(CheckedIdCast),
        Box::new(NoHashmapIterOrder),
        Box::new(CounterNaming),
        Box::new(LockOrder),
    ]
}

// ---------------------------------------------------------------------
// Shared text helpers
// ---------------------------------------------------------------------

fn is_ident_char(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// 1-based columns of word-bounded occurrences of `needle` in `line`:
/// the characters adjacent to the match must not extend an identifier.
fn token_cols(line: &str, needle: &str) -> Vec<usize> {
    let mut cols = Vec::new();
    let lb = line.as_bytes();
    let nb = needle.as_bytes();
    let mut from = 0;
    while let Some(p) = line[from..].find(needle) {
        let at = from + p;
        let before_ok = at == 0 || !is_ident_char(lb[at - 1]);
        let after = at + nb.len();
        let first_is_ident = nb.first().copied().is_some_and(is_ident_char);
        let last_is_ident = nb.last().copied().is_some_and(is_ident_char);
        let before_bound = !first_is_ident || before_ok;
        let after_bound = !last_is_ident || after >= lb.len() || !is_ident_char(lb[after]);
        if before_bound && after_bound {
            cols.push(at + 1);
        }
        from = at + 1;
    }
    cols
}

/// Flags every word-bounded `needle` on the production lines of `file`.
fn flag_token(
    file: &SourceFile,
    needle: &str,
    rule: &'static str,
    message: &str,
    suggestion: &str,
    out: &mut Vec<Finding>,
) {
    for (line_no, text) in file.prod_lines() {
        for col in token_cols(text, needle) {
            out.push(Finding {
                rule,
                path: file.path.clone(),
                line: line_no,
                col,
                message: message.to_string(),
                suggestion: suggestion.to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// no-unwrap-prod
// ---------------------------------------------------------------------

/// Panic-freedom of service paths: no `.unwrap()` / `.expect(` in the
/// production code of the serving, supervision, observability-daemon,
/// and pipeline layers. (Mirrors the `clippy::unwrap_used` denies in
/// those crates, but also covers builds where clippy does not run.)
pub struct NoUnwrapProd;

impl NoUnwrapProd {
    fn in_scope(file: &SourceFile) -> bool {
        matches!(file.crate_name.as_str(), "serve" | "supervise" | "obsd")
            || file.path.starts_with("crates/core/src/pipeline/")
    }
}

impl Rule for NoUnwrapProd {
    fn id(&self) -> &'static str {
        "no-unwrap-prod"
    }
    fn summary(&self) -> &'static str {
        "no unwrap/expect in production code of serve, supervise, obsd, core::pipeline"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !Self::in_scope(file) {
            return;
        }
        let sg = "return a typed error (PipelineError / ServeError / ObsdError) or recover \
                  explicitly with unwrap_or_else";
        flag_token(file, ".unwrap()", self.id(), "unwrap in a no-panic path", sg, out);
        flag_token(file, ".expect(", self.id(), "expect in a no-panic path", sg, out);
    }
}

// ---------------------------------------------------------------------
// total-cmp
// ---------------------------------------------------------------------

/// Total float orderings only. `partial_cmp` on floats returns `None`
/// for NaN, which every `unwrap_or` / `sort_by` caller then turns into a
/// silent misordering under adversarial data. The blessed home for float
/// ordering is `db_spatial::order` (and direct `f64::total_cmp`, which
/// this rule does not flag).
pub struct TotalCmp;

/// The one file allowed to say `partial_cmp`: the shared ordering helper
/// (its `PartialOrd` impl must forward to the total order).
const ORDER_HELPER: &str = "crates/spatial/src/order.rs";

impl Rule for TotalCmp {
    fn id(&self) -> &'static str {
        "total-cmp"
    }
    fn summary(&self) -> &'static str {
        "no partial_cmp outside the shared total-order helper (db_spatial::order)"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.path == ORDER_HELPER {
            return;
        }
        flag_token(
            file,
            "partial_cmp",
            self.id(),
            "partial_cmp is NaN-unsound for float orderings",
            "use f64::total_cmp, or db_spatial::order::DistId for (distance, id) heaps",
            out,
        );
    }
}

// ---------------------------------------------------------------------
// no-naked-sqrt
// ---------------------------------------------------------------------

/// The squared-space discipline (PR 9): every ε / k-NN comparison
/// happens on squared distances; `sqrt` is taken once, at reporting
/// flush sites, and tallied under `spatial.sqrt_evals`. Inside the
/// distance pipeline a naked `.sqrt()` is either a perf bug or a unit
/// bug — both have happened.
pub struct NoNakedSqrt;

/// Files where `sqrt` is the point: the distance kernels and the metric
/// definitions (Euclidean *is* the sqrt of its surrogate).
const SQRT_FILES: &[&str] = &["crates/spatial/src/kernels.rs", "crates/spatial/src/metric.rs"];

impl NoNakedSqrt {
    fn in_scope(file: &SourceFile) -> bool {
        matches!(file.crate_name.as_str(), "spatial" | "optics" | "core" | "hierarchical")
            && !SQRT_FILES.contains(&file.path.as_str())
    }
}

impl Rule for NoNakedSqrt {
    fn id(&self) -> &'static str {
        "no-naked-sqrt"
    }
    fn summary(&self) -> &'static str {
        "sqrt only in kernels, metric definitions, and reasoned flush sites (squared-space audit)"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !Self::in_scope(file) {
            return;
        }
        flag_token(
            file,
            ".sqrt()",
            self.id(),
            "sqrt inside the squared-space distance pipeline",
            "compare in squared space and convert at the flush site; if this IS a flush site, \
             allow it with the reason",
            out,
        );
    }
}

// ---------------------------------------------------------------------
// no-wallclock-in-core
// ---------------------------------------------------------------------

/// Determinism paths must not read clocks: the bit-for-bit guarantee
/// across thread counts (PR 3) dies the moment a wall-clock read steers
/// a loop. `Instant`/`SystemTime` belong to obs, supervise, serve,
/// obsd, and bench.
pub struct NoWallclockInCore;

impl NoWallclockInCore {
    fn in_scope(file: &SourceFile) -> bool {
        matches!(
            file.crate_name.as_str(),
            "core"
                | "optics"
                | "spatial"
                | "birch"
                | "sampling"
                | "hierarchical"
                | "eval"
                | "datagen"
                | "rng"
                | "oracle"
        )
    }
}

impl Rule for NoWallclockInCore {
    fn id(&self) -> &'static str {
        "no-wallclock-in-core"
    }
    fn summary(&self) -> &'static str {
        "no Instant::now/SystemTime in determinism-path crates"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !Self::in_scope(file) {
            return;
        }
        let sg = "move the timing to db-obs spans, or — for output-only timing metadata — \
                  allow with a reason stating it never influences results";
        flag_token(
            file,
            "Instant::now",
            self.id(),
            "wall-clock read in a determinism path",
            sg,
            out,
        );
        flag_token(file, "SystemTime", self.id(), "wall-clock read in a determinism path", sg, out);
    }
}

// ---------------------------------------------------------------------
// checked-id-cast
// ---------------------------------------------------------------------

/// Point/bubble ids are `u32` and the ingest boundary caps datasets at
/// `u32::MAX` points — but a bare `as u32` anywhere else silently
/// truncates if some new path forgets the cap. Id casts go through
/// `db_spatial::id::checked_id` (fallible) or `id_u32` (debug-asserted,
/// for counts already bounded upstream).
pub struct CheckedIdCast;

impl CheckedIdCast {
    fn in_scope(file: &SourceFile) -> bool {
        matches!(file.crate_name.as_str(), "core" | "sampling" | "serve")
    }
}

impl Rule for CheckedIdCast {
    fn id(&self) -> &'static str {
        "checked-id-cast"
    }
    fn summary(&self) -> &'static str {
        "no bare `as u32` id casts in core/sampling/serve; use db_spatial::id helpers"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !Self::in_scope(file) {
            return;
        }
        flag_token(
            file,
            "as u32",
            self.id(),
            "bare `as u32` silently truncates above Dataset::MAX_POINTS",
            "use db_spatial::id::checked_id (fallible) or id_u32 (debug-asserted) for id casts",
            out,
        );
    }
}

// ---------------------------------------------------------------------
// no-hashmap-iter-order
// ---------------------------------------------------------------------

/// Crates that produce `PipelineOutput`, cluster orderings, or
/// dendrograms must not iterate a `HashMap`/`HashSet`: iteration order
/// is randomized per process, so any output assembled from it breaks
/// the bit-determinism contract. Maps may be used lookup-only
/// (`entry`/`get`), or collected and sorted before iteration.
pub struct NoHashmapIterOrder;

const ITER_METHODS: &[&str] =
    &[".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".into_iter()", ".drain("];

impl NoHashmapIterOrder {
    fn in_scope(file: &SourceFile) -> bool {
        matches!(
            file.crate_name.as_str(),
            "core" | "optics" | "birch" | "sampling" | "hierarchical"
        )
    }

    /// Extracts the identifier a `HashMap`/`HashSet` occurrence binds:
    /// `let (mut) NAME: ...HashMap<...>`, `let (mut) NAME = HashMap::`,
    /// a parameter `NAME: &HashMap<...>`, or a struct field
    /// `NAME: Option<HashMap<...>>`.
    fn binding_name(line: &str, col: usize) -> Option<String> {
        let b = line.as_bytes();
        let mut i = col - 1; // 0-based index of the occurrence start
                             // Walk back over the type/path context (`std::collections::`,
                             // `&`, `Option<`, whitespace) to the binder.
        while i > 0 {
            let c = b[i - 1];
            if is_ident_char(c) || matches!(c, b':' | b'&' | b'<' | b' ' | b'\t') {
                // Stop the walk at the binder itself: a single `:` (not
                // `::`) or an `=`.
                if c == b':' && (i < 2 || b[i - 2] != b':') && (i >= b.len() || b[i] != b':') {
                    break;
                }
                i -= 1;
            } else if c == b'=' {
                break;
            } else {
                return None;
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1; // step over the binder
                // Skip whitespace, then collect the identifier.
        while i > 0 && matches!(b[i - 1], b' ' | b'\t') {
            i -= 1;
        }
        let end = i;
        while i > 0 && is_ident_char(b[i - 1]) {
            i -= 1;
        }
        let name = &line[i..end];
        if name.is_empty() || name == "mut" {
            None
        } else {
            Some(name.to_string())
        }
    }
}

impl Rule for NoHashmapIterOrder {
    fn id(&self) -> &'static str {
        "no-hashmap-iter-order"
    }
    fn summary(&self) -> &'static str {
        "no HashMap/HashSet iteration in output-producing crates (nondeterministic order)"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if !Self::in_scope(file) {
            return;
        }
        // Pass 1: names bound to hash containers in production code.
        let mut names: Vec<String> = Vec::new();
        for (_, text) in file.prod_lines() {
            for ty in ["HashMap", "HashSet"] {
                for col in token_cols(text, ty) {
                    if let Some(name) = Self::binding_name(text, col) {
                        if !names.contains(&name) {
                            names.push(name);
                        }
                    }
                }
            }
        }
        // Pass 2: iteration over any of those names.
        for (line_no, text) in file.prod_lines() {
            for name in &names {
                // `name.iter()` etc. (also matches `self.name.iter()`).
                for m in ITER_METHODS {
                    let needle = format!("{name}{m}");
                    for col in token_cols(text, &needle) {
                        out.push(self.finding(file, line_no, col, name));
                    }
                }
                // `for x in name` / `in &name` / `in &mut name`.
                for pat in [format!("in {name}"), format!("in &{name}"), format!("in &mut {name}")]
                {
                    for col in token_cols(text, &pat) {
                        out.push(self.finding(file, line_no, col, name));
                    }
                }
            }
        }
    }
}

impl NoHashmapIterOrder {
    fn finding(&self, file: &SourceFile, line: usize, col: usize, name: &str) -> Finding {
        Finding {
            rule: self.id(),
            path: file.path.clone(),
            line,
            col,
            message: format!("iteration over hash container `{name}` has nondeterministic order"),
            suggestion: "collect into a Vec and sort (e.g. by key with total_cmp/Ord) before \
                         iterating, use a BTreeMap, or keep the map lookup-only"
                .to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// counter-naming
// ---------------------------------------------------------------------

/// Metric and span names follow the registry convention
/// `area.snake_case` (≥ 2 dot-separated segments, each
/// `[a-z][a-z0-9_]*`): exporters group by the area prefix and the
/// Prometheus mangler assumes it.
pub struct CounterNaming;

const NAME_MACROS: &[&str] = &["counter!", "gauge!", "histogram!", "span!", "span_linked!"];

fn valid_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|s| {
            let mut ch = s.chars();
            matches!(ch.next(), Some(c) if c.is_ascii_lowercase())
                && ch.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

impl Rule for CounterNaming {
    fn id(&self) -> &'static str {
        "counter-naming"
    }
    fn summary(&self) -> &'static str {
        "metric/span name literals match the `area.snake_case` registry convention"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        for (line_no, text) in file.prod_lines() {
            for mac in NAME_MACROS {
                for col in token_cols(text, mac) {
                    // First string literal after the macro on this line is
                    // the name argument; a non-literal name is not checkable.
                    let Some(lit) =
                        file.lexed.strings.iter().find(|s| s.line == line_no && s.col > col)
                    else {
                        continue;
                    };
                    if !valid_metric_name(&lit.content) {
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: line_no,
                            col: lit.col,
                            message: format!(
                                "metric/span name `{}` does not match `area.snake_case`",
                                lit.content
                            ),
                            suggestion: "name it `<area>.<metric>` with lowercase snake_case \
                                         segments, e.g. `optics.distance_calls`"
                                .to_string(),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// The PR 8 deadlock convention in `db-serve`: the `live` compression
/// lock is never acquired while the `cache` artifact lock is held
/// (`live → cache` is the only legal nesting). This is an
/// acquisition-site scan per function body — it cannot see guard drops,
/// so a false positive on a genuinely dropped guard is silenced with an
/// allow comment explaining the drop.
pub struct LockOrder;

#[derive(PartialEq, Clone, Copy)]
enum LockKind {
    Cache,
    Live,
}

impl LockOrder {
    /// Classifies the lock acquisition at byte `pos` (the `lock` token)
    /// of `body`, from the receiver text before it and the argument text
    /// after it.
    fn classify(body: &str, pos: usize, after_open: usize) -> Option<LockKind> {
        // Receiver: identifier/path chars walking backwards.
        let recv_start = body[..pos]
            .rfind(|c: char| !(c.is_alphanumeric() || "._&: ".contains(c)))
            .map(|p| p + 1)
            .unwrap_or(0);
        // Arguments: to the matching close paren.
        let bytes = body.as_bytes();
        let mut depth = 0i32;
        let mut end = after_open;
        while end < bytes.len() {
            match bytes[end] {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let ctx = &body[recv_start..end.min(body.len())];
        if ctx.contains("cache") {
            Some(LockKind::Cache)
        } else if ctx.contains("live") {
            Some(LockKind::Live)
        } else {
            None
        }
    }
}

impl Rule for LockOrder {
    fn id(&self) -> &'static str {
        "lock-order"
    }
    fn summary(&self) -> &'static str {
        "db-serve never acquires `live` while `cache` is held (deadlock convention)"
    }
    fn check(&self, file: &SourceFile, out: &mut Vec<Finding>) {
        if file.crate_name != "serve" {
            return;
        }
        let masked = &file.lexed.masked;
        let bytes = masked.as_bytes();
        // Find each `fn` and scan its body.
        let mut search = 0usize;
        while let Some(p) = masked[search..].find("fn ") {
            let fn_at = search + p;
            search = fn_at + 3;
            if fn_at > 0 && is_ident_char(bytes[fn_at - 1]) {
                continue; // part of another identifier
            }
            // Body: next `{` to its matching `}`.
            let Some(open_rel) = masked[fn_at..].find('{') else { continue };
            let open = fn_at + open_rel;
            let mut depth = 0i32;
            let mut close = open;
            while close < bytes.len() {
                match bytes[close] {
                    b'{' => depth += 1,
                    b'}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                close += 1;
            }
            let body = &masked[open..close.min(masked.len())];

            // Ordered scan of lock acquisitions inside the body.
            let mut cache_at: Option<usize> = None;
            let mut from = 0usize;
            while let Some(q) = body[from..].find("lock") {
                let at = from + q;
                from = at + 4;
                let before_ok = at == 0 || !is_ident_char(body.as_bytes()[at - 1]);
                let after = body[at + 4..].trim_start();
                if !before_ok || !(after.starts_with('(') || body[at + 4..].starts_with("()")) {
                    continue;
                }
                let open_paren = at + 4 + (body[at + 4..].find('(').unwrap_or(0));
                match Self::classify(body, at, open_paren) {
                    Some(LockKind::Cache) => cache_at = Some(at),
                    Some(LockKind::Live) if cache_at.is_some() => {
                        let line = open + at; // byte offset in masked
                        let line_no = masked[..line].matches('\n').count() + 1;
                        let col =
                            line - masked[..line].rfind('\n').map(|x| x + 1).unwrap_or(0) + 1;
                        out.push(Finding {
                            rule: self.id(),
                            path: file.path.clone(),
                            line: line_no,
                            col,
                            message: "`live` acquired after `cache` in the same function \
                                      (lock-order inversion risk)"
                                .to_string(),
                            suggestion: "acquire `live` first (live → cache is the only \
                                         legal nesting); if the cache guard is provably \
                                         dropped, allow with the reason"
                                .to_string(),
                        });
                    }
                    _ => {}
                }
            }
            search = close.min(masked.len()).max(search);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_cols_respects_word_boundaries() {
        assert_eq!(token_cols("x.unwrap() unwrap_or", ".unwrap()"), vec![2]);
        assert_eq!(token_cols("partial_cmp my_partial_cmp", "partial_cmp"), vec![1]);
        assert_eq!(token_cols("a as u32, b as u321", "as u32"), vec![3]);
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("optics.distance_calls"));
        assert!(valid_metric_name("serve.ingest.batch_points"));
        assert!(!valid_metric_name("x"));
        assert!(!valid_metric_name("Optics.calls"));
        assert!(!valid_metric_name("optics."));
        assert!(!valid_metric_name("optics.Calls"));
        assert!(!valid_metric_name(".calls"));
    }

    #[test]
    fn hashmap_binding_extraction() {
        let l = "    let mut region_of: HashMap<Vec<u16>, u32> = HashMap::new();";
        let col = token_cols(l, "HashMap")[0];
        assert_eq!(NoHashmapIterOrder::binding_name(l, col), Some("region_of".to_string()));
        let l2 = "    let mut counts = std::collections::HashMap::new();";
        let col2 = token_cols(l2, "HashMap")[0];
        assert_eq!(NoHashmapIterOrder::binding_name(l2, col2), Some("counts".to_string()));
    }
}
