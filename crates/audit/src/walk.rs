//! Workspace walk: find every `.rs` file the audit should see.
//!
//! The walk starts at the workspace root and descends recursively,
//! skipping build output (`target/`), VCS metadata, and hidden
//! directories. Paths are returned workspace-relative with forward
//! slashes so rule scoping and diagnostics are stable across machines.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github", "results", "related"];

/// Collects all `.rs` files under `root`, sorted by relative path.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk (an unreadable root is
/// an audit failure, not something to skip silently).
pub fn rust_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    walk(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            out.push((rel, path));
        }
    }
    Ok(())
}
