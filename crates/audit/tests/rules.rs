//! Fixture tests for every audit rule: each rule must *fire* on a
//! minimal violation (positive), *stay quiet* on compliant or
//! out-of-scope code (negative), and *honor a reasoned allow comment*
//! (allow). Plus a lexer torture test and the self-audit: the workspace
//! this crate lives in must be clean under its own binary.
//!
//! Fixture paths are synthetic — rule scoping keys off the
//! `crates/<name>/...` prefix, so a fixture "lives" wherever its path
//! says it does.

use db_audit::engine::{analyze_source, Report};

/// Findings for `rule` (empty slice = full set) over one fixture file.
fn findings(path: &str, src: &str, rule: &str) -> Report {
    let rules: &[&str] = if rule.is_empty() { &[] } else { std::slice::from_ref(&rule) };
    analyze_source(path, src, rules)
}

fn rule_count(r: &Report, rule: &str) -> usize {
    r.findings.iter().filter(|f| f.rule == rule).count()
}

// ------------------------------------------------------------------
// no-unwrap-prod
// ------------------------------------------------------------------

#[test]
fn no_unwrap_prod_fires() {
    let r = findings(
        "crates/serve/src/x.rs",
        "fn f() {\n    y().unwrap();\n    z().expect(\"boom\");\n}\n",
        "no-unwrap-prod",
    );
    assert_eq!(rule_count(&r, "no-unwrap-prod"), 2);
    assert_eq!(r.findings[0].line, 2);
}

#[test]
fn no_unwrap_prod_quiet_on_tests_recoveries_and_other_crates() {
    // Test region in scope → quiet.
    let r = findings(
        "crates/supervise/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y().unwrap(); }\n}\n",
        "no-unwrap-prod",
    );
    assert_eq!(r.findings.len(), 0);
    // unwrap_or_else is a recovery, not a panic.
    let r = findings(
        "crates/serve/src/x.rs",
        "fn f() { y().unwrap_or_else(|_| 0); }\n",
        "no-unwrap-prod",
    );
    assert_eq!(r.findings.len(), 0);
    // Out-of-scope crate → quiet.
    let r = findings("crates/optics/src/x.rs", "fn f() { y().unwrap(); }\n", "no-unwrap-prod");
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn no_unwrap_prod_allow() {
    let r = findings(
        "crates/serve/src/x.rs",
        "fn f() {\n    // db-audit: allow(no-unwrap-prod) -- lock poisoning is unreachable here\n    y().unwrap();\n}\n",
        "no-unwrap-prod",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("no-unwrap-prod"), Some(&1));
}

// ------------------------------------------------------------------
// total-cmp
// ------------------------------------------------------------------

#[test]
fn total_cmp_fires() {
    let r = findings(
        "crates/eval/src/x.rs",
        "fn f(a: f64, b: f64) { v.sort_by(|x, y| x.partial_cmp(y).unwrap()); }\n",
        "total-cmp",
    );
    assert_eq!(rule_count(&r, "total-cmp"), 1);
}

#[test]
fn total_cmp_quiet_in_helper_and_on_total_cmp() {
    let r = findings(
        "crates/spatial/src/order.rs",
        "impl PartialOrd for DistId { fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) } }\n",
        "total-cmp",
    );
    assert_eq!(r.findings.len(), 0);
    let r = findings("crates/eval/src/x.rs", "fn f() { a.total_cmp(&b); }\n", "total-cmp");
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn total_cmp_allow() {
    let r = findings(
        "crates/eval/src/x.rs",
        "// db-audit: allow(total-cmp) -- comparing against a non-float key type\nfn f() { a.partial_cmp(&b); }\n",
        "total-cmp",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("total-cmp"), Some(&1));
}

// ------------------------------------------------------------------
// no-naked-sqrt
// ------------------------------------------------------------------

#[test]
fn no_naked_sqrt_fires() {
    let r =
        findings("crates/optics/src/x.rs", "fn f(d2: f64) -> f64 { d2.sqrt() }\n", "no-naked-sqrt");
    assert_eq!(rule_count(&r, "no-naked-sqrt"), 1);
}

#[test]
fn no_naked_sqrt_quiet_in_kernels_and_out_of_scope() {
    let r = findings(
        "crates/spatial/src/kernels.rs",
        "fn f(d2: f64) -> f64 { d2.sqrt() }\n",
        "no-naked-sqrt",
    );
    assert_eq!(r.findings.len(), 0);
    // datagen generates data; it is not part of the distance pipeline.
    let r =
        findings("crates/datagen/src/x.rs", "fn f(x: f64) -> f64 { x.sqrt() }\n", "no-naked-sqrt");
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn no_naked_sqrt_allow() {
    let r = findings(
        "crates/core/src/x.rs",
        "// db-audit: allow(no-naked-sqrt) -- reporting flush site\nfn f(d2: f64) -> f64 { d2.sqrt() }\n",
        "no-naked-sqrt",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("no-naked-sqrt"), Some(&1));
}

// ------------------------------------------------------------------
// no-wallclock-in-core
// ------------------------------------------------------------------

#[test]
fn no_wallclock_fires() {
    let r = findings(
        "crates/birch/src/x.rs",
        "fn f() { let t = std::time::Instant::now(); }\n",
        "no-wallclock-in-core",
    );
    assert_eq!(rule_count(&r, "no-wallclock-in-core"), 1);
    let r = findings("crates/rng/src/x.rs", "use std::time::SystemTime;\n", "no-wallclock-in-core");
    assert_eq!(rule_count(&r, "no-wallclock-in-core"), 1);
}

#[test]
fn no_wallclock_quiet_in_obs_layers() {
    for path in ["crates/obs/src/x.rs", "crates/supervise/src/x.rs", "crates/bench/src/x.rs"] {
        let r = findings(path, "fn f() { let t = Instant::now(); }\n", "no-wallclock-in-core");
        assert_eq!(r.findings.len(), 0, "{path} should be out of scope");
    }
}

#[test]
fn no_wallclock_allow() {
    let r = findings(
        "crates/core/src/x.rs",
        "// db-audit: allow(no-wallclock-in-core) -- timing metadata only\nfn f() { let t = Instant::now(); }\n",
        "no-wallclock-in-core",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("no-wallclock-in-core"), Some(&1));
}

// ------------------------------------------------------------------
// checked-id-cast
// ------------------------------------------------------------------

#[test]
fn checked_id_cast_fires() {
    let r = findings(
        "crates/sampling/src/x.rs",
        "fn f(n: usize) -> u32 { n as u32 }\n",
        "checked-id-cast",
    );
    assert_eq!(rule_count(&r, "checked-id-cast"), 1);
}

#[test]
fn checked_id_cast_quiet_on_helpers_and_other_widths() {
    let r = findings(
        "crates/core/src/x.rs",
        "fn f(n: usize) -> u32 { id_u32(n) }\nfn g(n: usize) -> f64 { n as f64 }\n",
        "checked-id-cast",
    );
    assert_eq!(r.findings.len(), 0);
    // The helpers themselves live in db-spatial, outside the rule's scope.
    let r = findings(
        "crates/spatial/src/id.rs",
        "fn f(n: usize) -> u32 { n as u32 }\n",
        "checked-id-cast",
    );
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn checked_id_cast_allow() {
    let r = findings(
        "crates/serve/src/x.rs",
        "fn f(n: usize) -> u32 {\n    n as u32 // db-audit: allow(checked-id-cast) -- n is a bounded enum tag, not an id\n}\n",
        "checked-id-cast",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("checked-id-cast"), Some(&1));
}

// ------------------------------------------------------------------
// no-hashmap-iter-order
// ------------------------------------------------------------------

#[test]
fn hashmap_iter_fires() {
    let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    for (k, v) in &m { use_it(k, v); }\n    let s: Vec<_> = m.iter().collect();\n}\n";
    let r = findings("crates/core/src/x.rs", src, "no-hashmap-iter-order");
    assert_eq!(rule_count(&r, "no-hashmap-iter-order"), 2);
}

#[test]
fn hashmap_iter_quiet_on_lookup_only_and_btreemap() {
    let src = "fn f() {\n    let mut m = std::collections::HashMap::new();\n    *m.entry(k).or_insert(0) += 1;\n    let v = m.get(&k);\n}\n";
    let r = findings("crates/sampling/src/x.rs", src, "no-hashmap-iter-order");
    assert_eq!(r.findings.len(), 0);
    let src = "fn f() {\n    let mut m: BTreeMap<u32, u32> = BTreeMap::new();\n    for (k, v) in &m {}\n}\n";
    let r = findings("crates/core/src/x.rs", src, "no-hashmap-iter-order");
    assert_eq!(r.findings.len(), 0);
    // serve assembles no orderings; out of scope.
    let src = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); for x in &m {} }\n";
    let r = findings("crates/serve/src/x.rs", src, "no-hashmap-iter-order");
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn hashmap_iter_allow() {
    let src = "fn f() {\n    let mut m: HashMap<u32, u32> = HashMap::new();\n    // db-audit: allow(no-hashmap-iter-order) -- feeds a commutative sum\n    for (_, v) in &m { total += v; }\n}\n";
    let r = findings("crates/core/src/x.rs", src, "no-hashmap-iter-order");
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("no-hashmap-iter-order"), Some(&1));
}

// ------------------------------------------------------------------
// counter-naming
// ------------------------------------------------------------------

#[test]
fn counter_naming_fires() {
    let r = findings(
        "crates/birch/src/x.rs",
        "fn f() {\n    db_obs::counter!(\"inserts\").incr();\n    let _s = db_obs::span!(\"Birch.Phase1\");\n}\n",
        "counter-naming",
    );
    assert_eq!(rule_count(&r, "counter-naming"), 2);
}

#[test]
fn counter_naming_quiet_on_convention_and_non_literals() {
    let r = findings(
        "crates/birch/src/x.rs",
        "fn f() {\n    db_obs::counter!(\"birch.inserts\").incr();\n    db_obs::histogram!(\"serve.ingest.batch_points\", [1.0]).record(2.0);\n    registry_counter(name).incr();\n}\n",
        "counter-naming",
    );
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn counter_naming_allow() {
    let r = findings(
        "crates/obs/src/x.rs",
        "fn f() {\n    // db-audit: allow(counter-naming) -- legacy exporter fixture name\n    db_obs::counter!(\"legacyflat\").incr();\n}\n",
        "counter-naming",
    );
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("counter-naming"), Some(&1));
}

// ------------------------------------------------------------------
// lock-order
// ------------------------------------------------------------------

#[test]
fn lock_order_fires_on_cache_then_live() {
    let src = "impl S {\n    fn f(&self) {\n        let cache = lock(&self.shared.cache);\n        let live = lock(&self.shared.live);\n    }\n}\n";
    let r = findings("crates/serve/src/x.rs", src, "lock-order");
    assert_eq!(rule_count(&r, "lock-order"), 1);
    assert_eq!(r.findings[0].line, 4);
    // Method-call style is seen too.
    let src = "fn f(s: &Shared) {\n    let c = s.cache.lock();\n    let l = s.live.lock();\n}\n";
    let r = findings("crates/serve/src/x.rs", src, "lock-order");
    assert_eq!(rule_count(&r, "lock-order"), 1);
}

#[test]
fn lock_order_quiet_on_legal_nesting_and_separate_fns() {
    // live → cache is the legal nesting.
    let src = "fn f(s: &S) {\n    let live = lock(&s.live);\n    let cache = lock(&s.cache);\n}\n";
    let r = findings("crates/serve/src/x.rs", src, "lock-order");
    assert_eq!(r.findings.len(), 0);
    // Acquisitions in different functions are unrelated.
    let src = "fn a(s: &S) { let c = lock(&s.cache); }\nfn b(s: &S) { let l = lock(&s.live); }\n";
    let r = findings("crates/serve/src/x.rs", src, "lock-order");
    assert_eq!(r.findings.len(), 0);
    // Other crates never match.
    let src = "fn f(s: &S) { let c = lock(&s.cache); let l = lock(&s.live); }\n";
    let r = findings("crates/obsd/src/x.rs", src, "lock-order");
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn lock_order_allow() {
    let src = "fn f(s: &S) {\n    let c = lock(&s.cache);\n    drop(c);\n    // db-audit: allow(lock-order) -- cache guard dropped on the previous line\n    let l = lock(&s.live);\n}\n";
    let r = findings("crates/serve/src/x.rs", src, "lock-order");
    assert_eq!(r.findings.len(), 0);
    assert_eq!(r.suppressions.get("lock-order"), Some(&1));
}

// ------------------------------------------------------------------
// meta rules: bad-allow / unused-allow
// ------------------------------------------------------------------

#[test]
fn allow_without_reason_is_a_finding() {
    let r = findings(
        "crates/serve/src/x.rs",
        "// db-audit: allow(no-unwrap-prod)\nfn f() { y().unwrap(); }\n",
        "",
    );
    // The reasonless allow suppresses nothing: both findings surface.
    assert_eq!(rule_count(&r, "bad-allow"), 1);
    assert_eq!(rule_count(&r, "no-unwrap-prod"), 1);
}

#[test]
fn allow_naming_unknown_rule_is_a_finding() {
    let r = findings(
        "crates/serve/src/x.rs",
        "// db-audit: allow(no-such-rule) -- because\nfn f() {}\n",
        "",
    );
    assert_eq!(rule_count(&r, "bad-allow"), 1);
}

#[test]
fn unused_allow_is_a_finding_under_the_full_rule_set() {
    let r = findings(
        "crates/serve/src/x.rs",
        "// db-audit: allow(no-unwrap-prod) -- stale excuse\nfn f() { clean(); }\n",
        "",
    );
    assert_eq!(rule_count(&r, "unused-allow"), 1);
    // ...but not under a --rule subset, where other rules never ran.
    let r = findings(
        "crates/serve/src/x.rs",
        "// db-audit: allow(total-cmp) -- governs a rule not in this run\nfn f() { clean(); }\n",
        "no-unwrap-prod",
    );
    assert_eq!(r.findings.len(), 0);
}

#[test]
fn doc_comments_cannot_suppress() {
    // A doc comment showing the syntax is documentation, not an allow:
    // the finding on the next line survives.
    let r = findings(
        "crates/serve/src/x.rs",
        "/// db-audit: allow(no-unwrap-prod) -- just documenting the syntax\nfn f() { y().unwrap(); }\n",
        "no-unwrap-prod",
    );
    assert_eq!(rule_count(&r, "no-unwrap-prod"), 1);
}

// ------------------------------------------------------------------
// Lexer torture: the rules must see through every masking trap.
// ------------------------------------------------------------------

#[test]
fn lexer_torture_strings_comments_chars_cfg_test() {
    // Violation-shaped text hidden in places a rule must NOT look:
    // strings, raw strings with fences, nested block comments, doc
    // comments, char literals next to lifetimes — plus one real
    // violation in production code and one inside #[cfg(test)].
    let src = r##"
fn prod<'a>(x: &'a str) -> u32 {
    let s = "y().unwrap() and partial_cmp and Instant::now";
    let raw = r#"lock(&self.cache); lock(&self.live); "quoted" .sqrt()"#;
    let q = '"'; let nl = '\n'; let tick = '\'';
    /* outer /* nested partial_cmp */ still comment .unwrap() */
    // plain comment: .expect( as u32
    y().unwrap(); // <- the only real production violation
    0
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { z().unwrap(); w().expect("fine in tests"); }
}
"##;
    let r = findings("crates/serve/src/torture.rs", src, "");
    let unwraps = rule_count(&r, "no-unwrap-prod");
    assert_eq!(unwraps, 1, "findings: {:#?}", r.findings);
    assert_eq!(rule_count(&r, "total-cmp"), 0);
    assert_eq!(rule_count(&r, "no-wallclock-in-core"), 0);
    assert_eq!(rule_count(&r, "lock-order"), 0);
    assert_eq!(rule_count(&r, "checked-id-cast"), 0);
}

#[test]
fn lexer_torture_test_region_boundaries() {
    // Production code after a test module is production again.
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t() { a().unwrap(); }\n}\nfn prod() { b().unwrap(); }\n";
    let r = findings("crates/serve/src/x.rs", src, "no-unwrap-prod");
    assert_eq!(rule_count(&r, "no-unwrap-prod"), 1);
    assert_eq!(r.findings[0].line, 5);
}

// ------------------------------------------------------------------
// Self-audit: the real workspace is clean under the real binary.
// ------------------------------------------------------------------

#[test]
fn self_audit_workspace_is_clean_with_budget() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_db-audit"))
        .arg("--root")
        .arg(&root)
        .arg("--budget")
        .arg(root.join("audit.budget"))
        .arg("--json")
        .output()
        .expect("spawn db-audit");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "self-audit failed:\n{stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("\"findings\":[]"), "expected zero findings: {stdout}");
}
