//! Distance-kernel benchmark (ISSUE 9): scalar loop vs the batched,
//! cache-blocked kernels in `db_spatial::kernels`, per dimensionality,
//! plus the end-to-end effect on classification and a full pipeline run.
//!
//! ```text
//! cargo bench -p db-bench --bench distance_kernels [-- --out FILE]
//! ```
//!
//! The scalar baseline is a local reimplementation of the historic
//! strict left-to-right accumulation loop (the order `Metric::dist` used
//! before the kernels): its loop-carried dependency chain is exactly
//! what the kernels' fixed 4-lane reduction breaks, so the comparison
//! isolates the reduction-order change the kernels bought.
//!
//! Ends with `kernel_guard`: the d=8 one-to-many kernel must beat the
//! scalar loop by ≥1.3×. On single-CPU runners a failing ratio is
//! reported as a skip (noisy shared cores make the ratio unstable), not
//! an error; on anything bigger it aborts the bench.
//!
//! The report is written as machine-readable JSON (`*_s` leaves, the
//! `bench-diff` input format) to `BENCH_pr9.json` (or `--out`).

use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

use data_bubbles::pipeline::optics_sa_bubbles;
use db_obs::Json;
use db_optics::OpticsParams;
use db_sampling::{compress_by_sampling, nn_classify, NN_KERNEL_MAX_REPS};
use db_spatial::kernels::dists_to_block;
use db_spatial::Dataset;

const USAGE: &str = "usage: distance_kernels [--out FILE]";

/// The historic scalar distance: strict left-to-right accumulation.
#[inline(never)]
fn scalar_sq(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

fn rand_block(rng: &mut db_rng::Rng, rows: usize, dim: usize) -> Vec<f64> {
    (0..rows * dim).map(|_| rng.gen_f64(-100.0, 100.0)).collect()
}

/// Median-of-`reps` seconds of `f`.
fn median_s(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        runs.push(t0.elapsed().as_secs_f64());
    }
    runs.sort_by(f64::total_cmp);
    runs[reps / 2]
}

/// ns/distance of the scalar loop and the block kernel on one query vs
/// `rows` points of dimension `dim`, plus the scalar/kernel ratio.
fn per_dim(rng: &mut db_rng::Rng, dim: usize, rows: usize, passes: usize) -> (f64, f64, f64) {
    let q = rand_block(rng, 1, dim);
    let block = rand_block(rng, rows, dim);
    let mut out = vec![0.0f64; rows];
    let n_dists = (rows * passes) as f64;

    let scalar_s = median_s(5, || {
        let mut acc = 0.0;
        for _ in 0..passes {
            for (r, o) in block.chunks_exact(dim).zip(out.iter_mut()) {
                *o = scalar_sq(black_box(&q), black_box(r));
            }
            acc += out[rows - 1];
        }
        acc
    });
    let kernel_s = median_s(5, || {
        let mut acc = 0.0;
        for _ in 0..passes {
            dists_to_block(black_box(&q), black_box(&block), dim, &mut out);
            acc += out[rows - 1];
        }
        acc
    });
    (scalar_s * 1e9 / n_dists, kernel_s * 1e9 / n_dists, scalar_s / kernel_s)
}

fn main() -> ExitCode {
    // `cargo bench` runs with the package dir as cwd; anchor the default
    // to the workspace root so the report lands next to BENCH_pr8.json.
    let mut out_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json").to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => match args.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("--out needs a value\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            // `cargo bench` forwards harness flags; ignore them.
            "--bench" => {}
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }

    let mut rng = db_rng::Rng::seed_from_u64(9);
    let rows = 2048usize;
    let passes = 200usize;

    // Per-dimension throughput: the specialised small dims, the d=8
    // guard point, and two chunked general dims.
    println!("one-to-many, {rows} rows x {passes} passes, ns/dist (median of 5):");
    let mut dims_json = Vec::new();
    let mut guard_ratio = 0.0;
    for dim in [2usize, 3, 4, 8, 16, 32] {
        let (scalar_ns, kernel_ns, ratio) = per_dim(&mut rng, dim, rows, passes);
        println!(
            "  d={dim:>2}: scalar {scalar_ns:7.3}  kernel {kernel_ns:7.3}  speedup {ratio:5.2}x"
        );
        if dim == 8 {
            guard_ratio = ratio;
        }
        dims_json.push(Json::Obj(vec![
            ("dim".into(), Json::Int(dim as i64)),
            ("scalar_ns_per_dist".into(), Json::Num(scalar_ns)),
            ("kernel_ns_per_dist".into(), Json::Num(kernel_ns)),
            ("scalar_s".into(), Json::Num(scalar_ns * 1e-9)),
            ("kernel_s".into(), Json::Num(kernel_ns * 1e-9)),
            ("speedup".into(), Json::Num(ratio)),
        ]));
    }

    // End-to-end classification: n points against k representatives on
    // the kernel backend vs a scalar-loop emulation of the old path.
    let classify_json = {
        let (n, k, dim) = (50_000usize, NN_KERNEL_MAX_REPS, 8usize);
        let mut ds = Dataset::new(dim).expect("dim");
        let mut row = vec![0.0f64; dim];
        for _ in 0..n {
            for x in row.iter_mut() {
                *x = rng.gen_f64(-100.0, 100.0);
            }
            ds.push(&row).expect("finite");
        }
        let mut reps = Dataset::new(dim).expect("dim");
        for i in (0..k).map(|i| i * (n / k)) {
            reps.push(ds.point(i)).expect("finite");
        }
        let kernel_s = median_s(3, || {
            let assign = nn_classify(&ds, &reps);
            assign[0] as f64
        });
        let scalar_s = median_s(3, || {
            let mut acc = 0usize;
            for i in 0..ds.len() {
                let p = ds.point(i);
                let (mut best, mut best_d) = (0u32, f64::INFINITY);
                for j in 0..reps.len() {
                    let d = scalar_sq(p, reps.point(j));
                    if d < best_d {
                        best_d = d;
                        best = j as u32;
                    }
                }
                acc = acc.wrapping_add(best as usize);
            }
            acc as f64
        });
        println!(
            "classify n={n} k={k} d={dim}: scalar {scalar_s:.3}s  kernel {kernel_s:.3}s  \
             speedup {:.2}x",
            scalar_s / kernel_s
        );
        Json::Obj(vec![
            ("n".into(), Json::Int(n as i64)),
            ("k".into(), Json::Int(k as i64)),
            ("dim".into(), Json::Int(dim as i64)),
            ("scalar_s".into(), Json::Num(scalar_s)),
            ("kernel_s".into(), Json::Num(kernel_s)),
            ("speedup".into(), Json::Num(scalar_s / kernel_s)),
        ])
    };

    // End-to-end pipeline effect: one full OPTICS-SA/Bubbles run. The
    // kernels have no scalar twin left in-tree, so this is an absolute
    // number for bench-diff to track across PRs.
    let pipeline_json = {
        let (n, k) = (20_000usize, 200usize);
        let d = db_datagen::separated_blobs(
            &db_datagen::SeparatedBlobsParams { n, ..Default::default() },
            9,
        )
        .data;
        let params = OpticsParams { eps: f64::INFINITY, min_pts: 20 };
        let elapsed_s = median_s(3, || {
            let out = optics_sa_bubbles(&d, k, 9, &params).expect("pipeline");
            out.n_representatives as f64
        });
        // Classification dominated: the compression step inside is the
        // kernel consumer being tracked.
        let compress_s = median_s(3, || {
            let c = compress_by_sampling(&d, k, 9).expect("compress");
            c.stats.len() as f64
        });
        println!(
            "pipeline n={n} k={k}: optics_sa_bubbles {elapsed_s:.3}s, compress {compress_s:.3}s"
        );
        Json::Obj(vec![
            ("n".into(), Json::Int(n as i64)),
            ("k".into(), Json::Int(k as i64)),
            ("optics_sa_bubbles_s".into(), Json::Num(elapsed_s)),
            ("compress_by_sampling_s".into(), Json::Num(compress_s)),
        ])
    };

    // kernel_guard: the batched kernel must actually pay for itself.
    const GUARD_MIN_RATIO: f64 = 1.3;
    let single_cpu = std::thread::available_parallelism().map(|p| p.get() <= 1).unwrap_or(false);
    let guard_passed = guard_ratio >= GUARD_MIN_RATIO;
    let guard_status = if guard_passed {
        println!("kernel_guard passed: d=8 kernel {guard_ratio:.2}x >= {GUARD_MIN_RATIO}x scalar");
        "passed"
    } else if single_cpu {
        println!(
            "kernel_guard SKIPPED: d=8 ratio {guard_ratio:.2}x < {GUARD_MIN_RATIO}x on a \
             single-CPU runner — timings on shared single cores are too noisy to gate on"
        );
        "skipped_single_cpu"
    } else {
        eprintln!(
            "kernel_guard FAILED: d=8 kernel only {guard_ratio:.2}x scalar \
             (need {GUARD_MIN_RATIO}x)"
        );
        return ExitCode::FAILURE;
    };

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("pr9_distance_kernels".into())),
        ("rows".into(), Json::Int(rows as i64)),
        ("passes".into(), Json::Int(passes as i64)),
        ("dims".into(), Json::Arr(dims_json)),
        ("classify".into(), classify_json),
        ("pipeline".into(), pipeline_json),
        (
            "guard".into(),
            Json::Obj(vec![
                ("dim".into(), Json::Int(8)),
                ("min_ratio".into(), Json::Num(GUARD_MIN_RATIO)),
                ("ratio".into(), Json::Num(guard_ratio)),
                ("status".into(), Json::Str(guard_status.into())),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&out_path, report.render_pretty()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
