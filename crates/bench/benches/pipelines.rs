//! Criterion benches mirroring the paper's runtime figures (16–18) at
//! bench-friendly sizes. Absolute numbers differ from the figure harness
//! (smaller n), but the orderings — bubbles ≫ original, SA > CF, speed-up
//! growing with compression factor / database size — are the same.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_bench::experiments::common::{ds1_setup, family_setup};
use db_birch::BirchParams;
use db_datagen::{ds1, gaussian_family, Ds1Params, GaussianFamilyParams};
use db_optics::optics_points;
use std::hint::black_box;

const BENCH_N: usize = 10_000;

fn bench_data() -> db_datagen::LabeledDataset {
    ds1(&Ds1Params { n: BENCH_N, ..Ds1Params::default() }, 2001)
}

/// Figure 4 / 16 baseline: original OPTICS vs. the bubble pipelines.
fn optics_full_vs_bubbles(c: &mut Criterion) {
    let data = bench_data();
    let setup = ds1_setup(data.len());
    let mut g = c.benchmark_group("fig16_baseline");
    g.sample_size(10);
    g.bench_function("original_optics", |b| {
        b.iter(|| black_box(optics_points(&data.data, &setup.optics())))
    });
    g.bench_function("sa_bubbles_k100", |b| {
        b.iter(|| black_box(optics_sa_bubbles(&data.data, 100, 7, &setup.optics()).unwrap()))
    });
    g.bench_function("cf_bubbles_k100", |b| {
        b.iter(|| {
            black_box(
                optics_cf_bubbles(&data.data, 100, &BirchParams::default(), &setup.optics())
                    .unwrap(),
            )
        })
    });
    g.finish();
}

/// Figure 16: pipeline runtime vs. compression factor.
fn speedup_compression(c: &mut Criterion) {
    let data = bench_data();
    let setup = ds1_setup(data.len());
    let mut g = c.benchmark_group("fig16_compression_factor");
    g.sample_size(10);
    for factor in [20usize, 100, 500] {
        let k = (data.len() / factor).max(2);
        g.bench_with_input(BenchmarkId::new("sa_bubbles", factor), &k, |b, &k| {
            b.iter(|| black_box(optics_sa_bubbles(&data.data, k, 7, &setup.optics()).unwrap()))
        });
    }
    g.finish();
}

/// Figure 17: pipeline runtime vs. database size (fixed k).
fn speedup_size(c: &mut Criterion) {
    let data = bench_data();
    let mut g = c.benchmark_group("fig17_database_size");
    g.sample_size(10);
    for n in [2_500usize, 5_000, 10_000] {
        let sub = data.prefix(n);
        let setup = ds1_setup(n);
        g.bench_with_input(BenchmarkId::new("sa_bubbles_k100", n), &sub, |b, sub| {
            b.iter(|| black_box(optics_sa_bubbles(&sub.data, 100, 7, &setup.optics()).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("original", n), &sub, |b, sub| {
            b.iter(|| black_box(optics_points(&sub.data, &setup.optics())))
        });
    }
    g.finish();
}

/// Figure 18: pipeline runtime vs. dimensionality.
fn speedup_dimension(c: &mut Criterion) {
    let family = gaussian_family(
        &GaussianFamilyParams {
            n: BENCH_N,
            dim: 20,
            clusters: 15,
            domain: 150.0,
            ..GaussianFamilyParams::default()
        },
        2001,
    );
    let mut g = c.benchmark_group("fig18_dimension");
    g.sample_size(10);
    for dim in [2usize, 5, 10, 20] {
        let data = family.project(dim);
        let setup = family_setup(data.len(), dim);
        g.bench_with_input(BenchmarkId::new("sa_bubbles_k100", dim), &data, |b, data| {
            b.iter(|| black_box(optics_sa_bubbles(&data.data, 100, 7, &setup.optics()).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    optics_full_vs_bubbles,
    speedup_compression,
    speedup_size,
    speedup_dimension
);
criterion_main!(benches);
