//! Benches mirroring the paper's runtime figures (16–18) at bench-friendly
//! sizes. Absolute numbers differ from the figure harness (smaller n), but
//! the orderings — bubbles ≫ original, SA > CF, speed-up growing with
//! compression factor / database size — are the same.
//!
//! After each group the db-obs metrics table is printed, so the algorithm
//! counters (distance calls, nodes visited, …) accompany the timings.

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_bench::experiments::common::{ds1_setup, family_setup};
use db_bench::harness::Group;
use db_birch::BirchParams;
use db_datagen::{ds1, gaussian_family, Ds1Params, GaussianFamilyParams};
use db_optics::optics_points;

const BENCH_N: usize = 10_000;
const SAMPLES: usize = 10;

fn bench_data() -> db_datagen::LabeledDataset {
    ds1(&Ds1Params { n: BENCH_N, ..Ds1Params::default() }, 2001)
}

/// Figure 4 / 16 baseline: original OPTICS vs. the bubble pipelines.
fn optics_full_vs_bubbles() {
    let data = bench_data();
    let setup = ds1_setup(data.len());
    let g = Group::new("fig16_baseline", SAMPLES);
    g.bench("original_optics", || optics_points(&data.data, &setup.optics()));
    g.bench("sa_bubbles_k100", || optics_sa_bubbles(&data.data, 100, 7, &setup.optics()).unwrap());
    g.bench("cf_bubbles_k100", || {
        optics_cf_bubbles(&data.data, 100, &BirchParams::default(), &setup.optics()).unwrap()
    });
}

/// Figure 16: pipeline runtime vs. compression factor.
fn speedup_compression() {
    let data = bench_data();
    let setup = ds1_setup(data.len());
    let g = Group::new("fig16_compression_factor", SAMPLES);
    for factor in [20usize, 100, 500] {
        let k = (data.len() / factor).max(2);
        g.bench(&format!("sa_bubbles/{factor}"), || {
            optics_sa_bubbles(&data.data, k, 7, &setup.optics()).unwrap()
        });
    }
}

/// Figure 17: pipeline runtime vs. database size (fixed k).
fn speedup_size() {
    let data = bench_data();
    let g = Group::new("fig17_database_size", SAMPLES);
    for n in [2_500usize, 5_000, 10_000] {
        let sub = data.prefix(n);
        let setup = ds1_setup(n);
        g.bench(&format!("sa_bubbles_k100/{n}"), || {
            optics_sa_bubbles(&sub.data, 100, 7, &setup.optics()).unwrap()
        });
        g.bench(&format!("original/{n}"), || optics_points(&sub.data, &setup.optics()));
    }
}

/// Figure 18: pipeline runtime vs. dimensionality.
fn speedup_dimension() {
    let family = gaussian_family(
        &GaussianFamilyParams {
            n: BENCH_N,
            dim: 20,
            clusters: 15,
            domain: 150.0,
            ..GaussianFamilyParams::default()
        },
        2001,
    );
    let g = Group::new("fig18_dimension", SAMPLES);
    for dim in [2usize, 5, 10, 20] {
        let data = family.project(dim);
        let setup = family_setup(data.len(), dim);
        g.bench(&format!("sa_bubbles_k100/{dim}d"), || {
            optics_sa_bubbles(&data.data, 100, 7, &setup.optics()).unwrap()
        });
    }
}

fn main() {
    db_obs::reset();
    optics_full_vs_bubbles();
    speedup_compression();
    speedup_size();
    speedup_dimension();
    println!("\n== metrics ==");
    print!("{}", db_obs::render_table(&db_obs::snapshot()));
}
