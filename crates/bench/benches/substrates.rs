//! Micro-benchmarks of the substrates: bubble distance evaluation, BIRCH
//! insertion, sampling compression, spatial-index range queries, SLINK —
//! the ingredients whose costs compose into the figure runtimes.

use data_bubbles::pipeline::expand_bubbles;
use data_bubbles::{bubble_distance, BubbleSpace, DataBubble};
use db_bench::harness::Group;
use db_birch::{birch, BirchParams, CfTree};
use db_datagen::{ds1, Ds1Params};
use db_hierarchical::slink;
use db_optics::{optics, OpticsParams, OpticsSpace};
use db_sampling::compress_by_sampling;
use db_spatial::{GridIndex, KdTree, LinearScan, SpatialIndex};
use std::hint::black_box;

fn data(n: usize) -> db_datagen::LabeledDataset {
    ds1(&Ds1Params { n, ..Ds1Params::default() }, 99)
}

fn bubble_distance_bench() {
    let a = DataBubble::new(vec![0.0, 0.0], 1_000, 2.0);
    let b = DataBubble::new(vec![7.0, 3.0], 500, 1.5);
    let g = Group::new("bubble_distance", 100);
    g.bench("bubble_distance_x1000", || {
        let mut acc = 0.0;
        for _ in 0..1_000 {
            acc += bubble_distance(black_box(&a), black_box(&b), false);
        }
        acc
    });
}

fn birch_bench() {
    let d = data(5_000);
    let g = Group::new("birch", 10);
    g.bench("phase1_insert_5k", || {
        let mut t = CfTree::new(2, BirchParams::default());
        for p in d.data.iter() {
            t.insert_point(p);
        }
        t.leaf_entry_count()
    });
    g.bench("end_to_end_k100_5k", || birch(&d.data, 100, &BirchParams::default()));
}

fn sampling_bench() {
    let d = data(10_000);
    let g = Group::new("sampling", 10);
    for k in [100usize, 1_000] {
        g.bench(&format!("compress/{k}"), || compress_by_sampling(&d.data, k, 3).unwrap());
    }
}

fn index_bench() {
    let d = data(10_000);
    let eps = 2.0;
    let grid = GridIndex::build(&d.data, eps).unwrap();
    let tree = KdTree::build(&d.data);
    let lin = LinearScan::build(&d.data);
    let g = Group::new("index_range_queries", 20);
    let queries: Vec<usize> = (0..100).map(|i| i * 97 % d.len()).collect();
    g.bench("grid", || {
        let mut out = Vec::new();
        let mut total = 0usize;
        for &q in &queries {
            grid.range(&d.data, d.data.point(q), eps, &mut out);
            total += out.len();
        }
        total
    });
    g.bench("kdtree", || {
        let mut out = Vec::new();
        let mut total = 0usize;
        for &q in &queries {
            tree.range(&d.data, d.data.point(q), eps, &mut out);
            total += out.len();
        }
        total
    });
    g.bench("linear", || {
        let mut out = Vec::new();
        let mut total = 0usize;
        for &q in &queries {
            lin.range(&d.data, d.data.point(q), eps, &mut out);
            total += out.len();
        }
        total
    });
}

fn bubble_space_bench() {
    let d = data(50_000);
    let compressed = compress_by_sampling(&d.data, 500, 3).unwrap();
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let g = Group::new("bubble_space", 50);
    g.bench("neighborhood_k500", || {
        let mut out = Vec::new();
        space.neighborhood(black_box(250), f64::INFINITY, &mut out);
        out.len()
    });
}

fn expansion_bench() {
    let d = data(50_000);
    let compressed = compress_by_sampling(&d.data, 500, 3).unwrap();
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let ordering = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts: 10 });
    let members = compressed.members();
    let g = Group::new("expansion", 20);
    g.bench("expand_bubbles_50k", || expand_bubbles(&ordering, &members, &space, 10));
}

fn slink_bench() {
    let d = data(1_000);
    let g = Group::new("hierarchical", 10);
    g.bench("slink_1k", || slink(&d.data));
}

fn main() {
    db_obs::reset();
    bubble_distance_bench();
    birch_bench();
    sampling_bench();
    index_bench();
    bubble_space_bench();
    expansion_bench();
    slink_bench();
    println!("\n== metrics ==");
    print!("{}", db_obs::render_table(&db_obs::snapshot()));
}
