//! Micro-benchmarks of the substrates: bubble distance evaluation, BIRCH
//! insertion, sampling compression, spatial-index range queries, SLINK —
//! the ingredients whose costs compose into the figure runtimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use data_bubbles::{bubble_distance, DataBubble};
use db_birch::{birch, BirchParams, CfTree};
use db_datagen::{ds1, Ds1Params};
use db_hierarchical::slink;
use db_sampling::compress_by_sampling;
use db_spatial::{GridIndex, KdTree, LinearScan, SpatialIndex};
use std::hint::black_box;

fn data(n: usize) -> db_datagen::LabeledDataset {
    ds1(&Ds1Params { n, ..Ds1Params::default() }, 99)
}

fn bubble_distance_bench(c: &mut Criterion) {
    let a = DataBubble::new(vec![0.0, 0.0], 1_000, 2.0);
    let b = DataBubble::new(vec![7.0, 3.0], 500, 1.5);
    c.bench_function("bubble_distance", |bch| {
        bch.iter(|| black_box(bubble_distance(black_box(&a), black_box(&b), false)))
    });
}

fn birch_bench(c: &mut Criterion) {
    let d = data(5_000);
    let mut g = c.benchmark_group("birch");
    g.sample_size(10);
    g.bench_function("phase1_insert_5k", |b| {
        b.iter(|| {
            let mut t = CfTree::new(2, BirchParams::default());
            for p in d.data.iter() {
                t.insert_point(p);
            }
            black_box(t.leaf_entry_count())
        })
    });
    g.bench_function("end_to_end_k100_5k", |b| {
        b.iter(|| black_box(birch(&d.data, 100, &BirchParams::default())))
    });
    g.finish();
}

fn sampling_bench(c: &mut Criterion) {
    let d = data(10_000);
    let mut g = c.benchmark_group("sampling");
    g.sample_size(10);
    for k in [100usize, 1_000] {
        g.bench_with_input(BenchmarkId::new("compress", k), &k, |b, &k| {
            b.iter(|| black_box(compress_by_sampling(&d.data, k, 3).unwrap()))
        });
    }
    g.finish();
}

fn index_bench(c: &mut Criterion) {
    let d = data(10_000);
    let eps = 2.0;
    let grid = GridIndex::build(&d.data, eps).unwrap();
    let tree = KdTree::build(&d.data);
    let lin = LinearScan::build(&d.data);
    let mut g = c.benchmark_group("index_range_queries");
    let queries: Vec<usize> = (0..100).map(|i| i * 97 % d.len()).collect();
    g.bench_function("grid", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for &q in &queries {
                grid.range(&d.data, d.data.point(q), eps, &mut out);
                black_box(out.len());
            }
        })
    });
    g.bench_function("kdtree", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for &q in &queries {
                tree.range(&d.data, d.data.point(q), eps, &mut out);
                black_box(out.len());
            }
        })
    });
    g.bench_function("linear", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            for &q in &queries {
                lin.range(&d.data, d.data.point(q), eps, &mut out);
                black_box(out.len());
            }
        })
    });
    g.finish();
}

fn bubble_space_bench(c: &mut Criterion) {
    use data_bubbles::{BubbleSpace, DataBubble};
    use db_optics::OpticsSpace;
    let d = data(50_000);
    let compressed = compress_by_sampling(&d.data, 500, 3).unwrap();
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let mut g = c.benchmark_group("bubble_space");
    g.bench_function("neighborhood_k500", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            space.neighborhood(black_box(250), f64::INFINITY, &mut out);
            black_box(out.len())
        })
    });
    g.finish();
}

fn expansion_bench(c: &mut Criterion) {
    use data_bubbles::pipeline::expand_bubbles;
    use data_bubbles::{BubbleSpace, DataBubble};
    use db_optics::{optics, OpticsParams};
    let d = data(50_000);
    let compressed = compress_by_sampling(&d.data, 500, 3).unwrap();
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let ordering = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts: 10 });
    let members = compressed.members();
    let mut g = c.benchmark_group("expansion");
    g.sample_size(20);
    g.bench_function("expand_bubbles_50k", |b| {
        b.iter(|| black_box(expand_bubbles(&ordering, &members, &space, 10)))
    });
    g.finish();
}

fn slink_bench(c: &mut Criterion) {
    let d = data(1_000);
    let mut g = c.benchmark_group("hierarchical");
    g.sample_size(10);
    g.bench_function("slink_1k", |b| b.iter(|| black_box(slink(&d.data))));
    g.finish();
}

criterion_group!(
    benches,
    bubble_distance_bench,
    birch_bench,
    sampling_bench,
    index_bench,
    bubble_space_bench,
    expansion_bench,
    slink_bench
);
criterion_main!(benches);
