//! ASCII rendering of reachability plots, so the text reports show the same
//! "dents" the paper's figures show.

/// Renders a reachability plot as an ASCII panel of `width` columns and
/// `height` rows. Positions are bucketed into columns (mean of the finite
/// values per bucket); ∞ values render as full-height `|` spikes. The
/// vertical axis is linear from 0 to the clamp value (95th percentile of
/// the finite values, so one huge jump does not flatten everything).
pub fn render_plot(values: &[f64], width: usize, height: usize) -> String {
    assert!(width >= 1 && height >= 1, "panel must be at least 1x1");
    if values.is_empty() {
        return String::from("(empty plot)\n");
    }
    // Clamp level: 95th percentile of finite values (min 1e-9 to avoid /0).
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let clamp = if finite.is_empty() {
        1.0
    } else {
        finite.sort_by(f64::total_cmp);
        let p95 = finite[((finite.len() - 1) as f64 * 0.95).round() as usize];
        p95.max(1e-9)
    };

    // Column values: mean finite value, or +inf if the bucket contains an
    // undefined spike and no finite values.
    let width = width.min(values.len());
    let mut cols: Vec<f64> = Vec::with_capacity(width);
    for c in 0..width {
        let lo = c * values.len() / width;
        let hi = ((c + 1) * values.len() / width).max(lo + 1);
        let bucket = &values[lo..hi.min(values.len())];
        let mut sum = 0.0;
        let mut cnt = 0usize;
        let mut spike = false;
        for &v in bucket {
            if v.is_finite() {
                sum += v;
                cnt += 1;
            } else {
                spike = true;
            }
        }
        if cnt > 0 {
            // A single ∞ inside an otherwise-finite bucket still marks a
            // walk start; represent by the max so the jump stays visible.
            let mean = sum / cnt as f64;
            cols.push(if spike { clamp } else { mean });
        } else if spike {
            cols.push(f64::INFINITY);
        } else {
            cols.push(0.0);
        }
    }

    let mut out = String::with_capacity((width + 1) * height + 32);
    for row in 0..height {
        // Row 0 is the top; the bottom row's level is 0, so every finite
        // value draws a baseline mark.
        let level = (height - 1 - row) as f64 / height as f64 * clamp;
        for &v in &cols {
            if v.is_infinite() {
                out.push('|');
            } else if v >= level {
                out.push('#');
            } else {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("scale: 0..{clamp:.3} ({} positions)\n", values.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dents_are_visible() {
        let mut v = vec![5.0; 20];
        v.extend(vec![0.2; 20]);
        v.extend(vec![5.0; 20]);
        let panel = render_plot(&v, 30, 6);
        let lines: Vec<&str> = panel.lines().collect();
        assert_eq!(lines.len(), 7); // 6 rows + scale line
                                    // Top row: high plateaus filled, dent empty in the middle.
        let top = lines[0];
        assert!(top.starts_with('#'));
        assert!(top.contains(' '));
        assert!(top.ends_with('#'));
        // Bottom row: everything (including the dent) is above level 0+.
        let bottom = lines[5];
        assert!(!bottom.contains(' '));
    }

    #[test]
    fn infinity_renders_as_spike() {
        let v = vec![f64::INFINITY, f64::INFINITY, f64::INFINITY];
        let panel = render_plot(&v, 3, 3);
        assert!(panel.lines().next().unwrap().contains('|'));
    }

    #[test]
    fn empty_plot_is_handled() {
        assert!(render_plot(&[], 10, 3).contains("empty"));
    }

    #[test]
    fn width_larger_than_data_is_clamped() {
        let panel = render_plot(&[1.0, 2.0], 80, 2);
        let first = panel.lines().next().unwrap();
        assert!(first.len() <= 2);
    }
}
