//! Compares two benchmark report JSON files and fails on regressions.
//!
//! ```text
//! bench-diff <old.json> <new.json> [--tolerance F] [--floor-s F]
//! ```
//!
//! Every numeric field whose key ends in `_s` is treated as a seconds
//! timing; `new` regresses when it exceeds `old * (1 + tolerance) +
//! floor_s` (defaults 0.5 and 0.005 — see `db_bench::diff`). Exit codes:
//! 0 = no regressions, 1 = regressions found, 2 = usage or I/O error.

use std::process::ExitCode;

use db_bench::diff::{compare, load_report, DiffOptions};

const USAGE: &str = "usage: bench-diff <old.json> <new.json> [--tolerance F] [--floor-s F]";

fn main() -> ExitCode {
    let mut opts = DiffOptions::default();
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 0.0 => opts.tolerance = v,
                _ => {
                    eprintln!("--tolerance needs a non-negative number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--floor-s" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 0.0 => opts.floor_s = v,
                _ => {
                    eprintln!("--floor-s needs a non-negative number\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => files.push(other.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let (old, new) = match (load_report(old_path), load_report(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };

    let report = compare(&old, &new, &opts);
    println!(
        "bench-diff: {} timings compared (tolerance {:.0}%, floor {:.3}s)",
        report.compared.len(),
        opts.tolerance * 100.0,
        opts.floor_s
    );
    for s in &report.structural {
        println!("  note: {s}");
    }
    for d in &report.improvements {
        println!("  improved: {}  {:.4}s -> {:.4}s ({:.2}x)", d.path, d.old_s, d.new_s, d.ratio());
    }
    for d in &report.regressions {
        println!("  REGRESSED: {}  {:.4}s -> {:.4}s ({:.2}x)", d.path, d.old_s, d.new_s, d.ratio());
    }
    if report.compared.is_empty() {
        println!("  warning: no timings found to compare");
    }
    if report.passed() {
        println!("bench-diff: PASS");
        ExitCode::SUCCESS
    } else {
        println!("bench-diff: FAIL ({} regression(s))", report.regressions.len());
        ExitCode::FAILURE
    }
}
