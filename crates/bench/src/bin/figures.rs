//! Regenerates the paper's evaluation figures.
//!
//! ```text
//! figures [--scale quick|default|paper] [--out DIR] [--seed N] [--threads N]
//!         [--trace-out FILE] [--serve ADDR] [--serve-linger SECS] <figure>...|all
//! ```
//!
//! Reports are written to `<out>/<figure>.txt` (+ `.json` series) and
//! echoed to stdout. With the (default) `metrics` feature each figure also
//! prints the db-obs metrics table and writes `<out>/<figure>.metrics.jsonl`;
//! metrics are reset between figures so each file covers one figure only.
//!
//! `--trace-out` records event-level traces (Chrome trace JSON, open in
//! Perfetto / `chrome://tracing`); `--serve` exposes live `/metrics`,
//! `/trace` and `/healthz` while the figures run (see `db-obsd`).

use std::path::PathBuf;
use std::process::ExitCode;

use db_bench::config::{RunConfig, Scale};
use db_bench::telemetry::TelemetryOptions;
use db_bench::{run_figure, ALL_FIGURES};

fn usage() -> String {
    format!(
        "usage: figures [--scale quick|default|paper] [--out DIR] [--seed N] [--threads N] \
         [--trace-out FILE] [--serve ADDR] [--serve-linger SECS] <figure>...|all\n\
         figures: {}",
        ALL_FIGURES.join(", ")
    )
}

fn main() -> ExitCode {
    let mut cfg = RunConfig::default();
    let mut telemetry_opts = TelemetryOptions::default();
    let mut targets: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match telemetry_opts.consume_arg(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}\n{}", usage());
                return ExitCode::FAILURE;
            }
        }
        match arg.as_str() {
            "--scale" => {
                let Some(v) = args.next().and_then(|v| Scale::parse(&v)) else {
                    eprintln!("--scale needs one of quick|default|paper\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.scale = v;
            }
            "--out" => {
                let Some(v) = args.next() else {
                    eprintln!("--out needs a directory\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.out_dir = PathBuf::from(v);
            }
            "--seed" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--seed needs an integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.seed = v;
            }
            "--threads" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threads needs a positive integer\n{}", usage());
                    return ExitCode::FAILURE;
                };
                cfg.threads = Some(v);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_FIGURES.iter().map(|s| s.to_string()).collect();
    }

    // A busy port (or any bind failure) is an expected operational error:
    // report it cleanly instead of panicking.
    let telemetry = match telemetry_opts.start() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("figures: {e}");
            return ExitCode::FAILURE;
        }
    };

    for t in &targets {
        println!("\n================ {t} ================");
        let started = std::time::Instant::now();
        db_obs::reset();
        if let Err(e) = run_figure(t, &cfg) {
            eprintln!("{t} failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("[{t} done in {:.1}s]", started.elapsed().as_secs_f64());
        let snap = db_obs::snapshot();
        if !snap.is_empty() {
            println!("\n-- metrics ({t}) --");
            print!("{}", db_obs::render_table(&snap));
            let path = cfg.out_dir.join(format!("{t}.metrics.jsonl"));
            if let Err(e) = std::fs::write(&path, db_obs::json_lines(&snap)) {
                eprintln!("could not write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = telemetry.finish() {
        eprintln!("figures: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
