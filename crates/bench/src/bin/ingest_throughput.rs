//! Ingest-throughput benchmark for the streaming service (ISSUE 8).
//!
//! ```text
//! ingest_throughput [--n N] [--stream N] [--k K] [--seed S] [--out FILE]
//! ```
//!
//! Measures, at several batch sizes, how fast points are absorbed into a
//! live `IncrementalCompression` (a) directly and (b) through the
//! service's `POST /ingest` HTTP path, plus the latency of a full
//! recluster of the post-absorb compression. The report is written as
//! machine-readable JSON to `BENCH_pr8.json` (or `--out`) with `*_s`
//! leaves, the input format of `bench-diff`.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use data_bubbles::pipeline::{recluster_from_compression, Compressor, PipelineConfig, Recovery};
use db_obs::Json;
use db_optics::OpticsParams;
use db_sampling::{compress_by_sampling, IncrementalCompression};
use db_serve::{BubbleService, ServeServer, ServiceConfig};
use db_spatial::Dataset;

const USAGE: &str = "usage: ingest_throughput [--n N] [--stream N] [--k K] [--seed S] [--out FILE]";

fn blobs(n: usize, seed: u64) -> Dataset {
    let params = db_datagen::SeparatedBlobsParams { n, ..Default::default() };
    db_datagen::separated_blobs(&params, seed).data
}

fn chunk_dataset(ds: &Dataset, batch: usize) -> Vec<Dataset> {
    let rows: Vec<&[f64]> = ds.iter().collect();
    rows.chunks(batch)
        .map(|chunk| {
            let mut part = Dataset::new(ds.dim()).expect("dim");
            for row in chunk {
                part.push(row).expect("finite");
            }
            part
        })
        .collect()
}

fn absorb_run(base: &IncrementalCompression, batches: &[Dataset], n: usize) -> (f64, Duration) {
    let mut inc = base.clone();
    let t0 = Instant::now();
    for b in batches {
        inc.try_absorb_all(b).expect("absorb");
    }
    let elapsed = t0.elapsed();
    assert_eq!(inc.n_objects(), base.n_objects() + n);
    (n as f64 / elapsed.as_secs_f64().max(1e-12), elapsed)
}

fn post_ingest(addr: std::net::SocketAddr, body: &str) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream
        .write_all(
            format!(
                "POST /ingest HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    assert!(out.starts_with("HTTP/1.1 200"), "ingest failed: {}", &out[..out.len().min(200)]);
}

fn ingest_json(batch: &Dataset) -> String {
    let rows: Vec<String> = batch
        .iter()
        .map(|p| {
            let coords: Vec<String> = p.iter().map(|c| format!("{c:?}")).collect();
            format!("[{}]", coords.join(","))
        })
        .collect();
    format!("{{\"points\":[{}]}}", rows.join(","))
}

fn main() -> ExitCode {
    let mut n = 10_000usize;
    let mut stream_n = 10_000usize;
    let mut k = 200usize;
    let mut seed = 2001u64;
    let mut out_path = String::from("BENCH_pr8.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        let parsed = match arg.as_str() {
            "--n" => value("--n").and_then(|v| v.parse().map(|x| n = x).map_err(|e| e.to_string())),
            "--stream" => value("--stream")
                .and_then(|v| v.parse().map(|x| stream_n = x).map_err(|e| e.to_string())),
            "--k" => value("--k").and_then(|v| v.parse().map(|x| k = x).map_err(|e| e.to_string())),
            "--seed" => {
                value("--seed").and_then(|v| v.parse().map(|x| seed = x).map_err(|e| e.to_string()))
            }
            "--out" => value("--out").map(|v| out_path = v),
            other => Err(format!("unknown argument {other}\n{USAGE}")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }

    let base = blobs(n, seed);
    let stream_points = blobs(stream_n, seed.wrapping_add(1));
    let compressed = compress_by_sampling(&base, k, seed).expect("compress");
    let live = IncrementalCompression::from_sample(&compressed);
    let optics = OpticsParams { eps: f64::INFINITY, min_pts: 40 };

    let mut runs = Vec::new();

    // Direct absorb throughput by batch size.
    for batch in [1usize, 64, 1024] {
        let batches = chunk_dataset(&stream_points, batch);
        let (pps, elapsed) = absorb_run(&live, &batches, stream_n);
        println!("absorb   batch={batch:>5}: {pps:>12.0} points/s");
        runs.push(Json::Obj(vec![
            ("mode".into(), Json::Str("absorb".into())),
            ("batch_size".into(), Json::Int(batch as i64)),
            ("elapsed_s".into(), Json::Num(elapsed.as_secs_f64())),
            ("points_per_s".into(), Json::Num(pps)),
        ]));
    }

    // HTTP ingest throughput (staleness triggers disabled so the measure
    // is pure ingest, not recluster interference).
    {
        let mut cfg = ServiceConfig::new(optics, 4.0);
        cfg.max_absorbed = usize::MAX;
        cfg.max_mass_fraction = f64::INFINITY;
        let svc = Arc::new(BubbleService::new(live.clone(), cfg).expect("service"));
        let mut server = ServeServer::start("127.0.0.1:0", Arc::clone(&svc)).expect("bind");
        let addr = server.addr();
        let batches = chunk_dataset(&stream_points, 1024);
        let bodies: Vec<String> = batches.iter().map(ingest_json).collect();
        let t0 = Instant::now();
        for body in &bodies {
            post_ingest(addr, body);
        }
        let elapsed = t0.elapsed();
        let pps = stream_n as f64 / elapsed.as_secs_f64().max(1e-12);
        println!("http     batch= 1024: {pps:>12.0} points/s");
        runs.push(Json::Obj(vec![
            ("mode".into(), Json::Str("http_ingest".into())),
            ("batch_size".into(), Json::Int(1024)),
            ("elapsed_s".into(), Json::Num(elapsed.as_secs_f64())),
            ("points_per_s".into(), Json::Num(pps)),
        ]));
        server.shutdown();
    }

    // Recluster latency on the post-absorb compression.
    let recluster = {
        let mut inc = live.clone();
        inc.try_absorb_all(&stream_points).expect("absorb");
        let cfg = PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Bubbles, optics);
        let t0 = Instant::now();
        let out = recluster_from_compression(&inc, &cfg).expect("recluster");
        let elapsed = t0.elapsed();
        println!(
            "recluster: {:.3}s (clustering {:.3}s, recovery {:.3}s)",
            elapsed.as_secs_f64(),
            out.timings.clustering.as_secs_f64(),
            out.timings.recovery.as_secs_f64()
        );
        Json::Obj(vec![
            ("elapsed_s".into(), Json::Num(elapsed.as_secs_f64())),
            ("clustering_s".into(), Json::Num(out.timings.clustering.as_secs_f64())),
            ("recovery_s".into(), Json::Num(out.timings.recovery.as_secs_f64())),
            ("n_representatives".into(), Json::Int(out.n_representatives as i64)),
        ])
    };

    let report = Json::Obj(vec![
        ("bench".into(), Json::Str("pr8_ingest_throughput".into())),
        ("n_base".into(), Json::Int(n as i64)),
        ("n_stream".into(), Json::Int(stream_n as i64)),
        ("k".into(), Json::Int(k as i64)),
        ("seed".into(), Json::Int(seed as i64)),
        ("runs".into(), Json::Arr(runs)),
        ("recluster".into(), recluster),
    ]);
    if let Err(e) = std::fs::write(&out_path, report.render_pretty()) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
