//! Thread-scaling benchmark over the paper-scale pipelines.
//!
//! ```text
//! paper_pipelines [--scale quick|default|paper] [--factor N] [--seed N]
//!                 [--out FILE] [--trace-out FILE] [--serve ADDR] [--serve-linger SECS]
//! ```
//!
//! Runs `OPTICS-SA-Bubbles` (the paper's headline pipeline) on DS1 at the
//! chosen scale and compression factor with 1, 2 and 4 worker threads and
//! with the thread count left to available parallelism, verifying that
//! every run produces the identical output, and writes the measured phase
//! timings as machine-readable JSON to `BENCH_pr3.json` (or `--out`) in
//! the working directory. `OPTICS-CF-Bubbles` is run once as a cross-check
//! that the BIRCH branch also benefits from the threaded classification.
//!
//! The report is the input format of `bench-diff`; `--trace-out` and
//! `--serve` add event tracing and live telemetry (see `db-obsd`).

use std::num::NonZeroUsize;
use std::process::ExitCode;

use data_bubbles::pipeline::{run_pipeline, Compressor, PipelineConfig, PipelineOutput, Recovery};
use db_bench::config::{RunConfig, Scale};
use db_bench::experiments::common::ds1_setup;
use db_bench::telemetry::TelemetryOptions;
use db_obs::Json;

const USAGE: &str = "usage: paper_pipelines [--scale quick|default|paper] [--factor N] \
                     [--seed N] [--out FILE] [--trace-out FILE] [--serve ADDR] \
                     [--serve-linger SECS]";

fn run(
    data: &db_datagen::LabeledDataset,
    cfg: &PipelineConfig,
    threads: Option<NonZeroUsize>,
) -> PipelineOutput {
    let mut cfg = cfg.clone();
    cfg.threads = threads;
    run_pipeline(&data.data, &cfg).expect("pipeline run failed")
}

fn timing_row(threads: Option<NonZeroUsize>, out: &PipelineOutput) -> Json {
    Json::Obj(vec![
        ("threads".into(), threads.map_or(Json::Null, |t| Json::Int(t.get() as i64))),
        ("compression_s".into(), Json::Num(out.timings.compression.as_secs_f64())),
        ("clustering_s".into(), Json::Num(out.timings.clustering.as_secs_f64())),
        ("recovery_s".into(), Json::Num(out.timings.recovery.as_secs_f64())),
        ("total_s".into(), Json::Num(out.timings.total().as_secs_f64())),
        ("n_representatives".into(), Json::Int(out.n_representatives as i64)),
    ])
}

fn main() -> ExitCode {
    let mut scale = Scale::Default;
    let mut factor = 100usize;
    let mut seed = 2001u64;
    let mut out_path = String::from("BENCH_pr3.json");
    let mut telemetry_opts = TelemetryOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match telemetry_opts.consume_arg(&arg, &mut args) {
            Ok(true) => continue,
            Ok(false) => {}
            Err(e) => {
                eprintln!("{e}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
        match arg.as_str() {
            "--scale" => match args.next().and_then(|v| Scale::parse(&v)) {
                Some(v) => scale = v,
                None => {
                    eprintln!("--scale needs one of quick|default|paper");
                    return ExitCode::FAILURE;
                }
            },
            "--factor" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => factor = v,
                _ => {
                    eprintln!("--factor needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed needs an integer");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match args.next() {
                Some(v) => out_path = v,
                None => {
                    eprintln!("--out needs a file path");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let telemetry = match telemetry_opts.start() {
        Ok(t) => t,
        Err(e) => {
            eprintln!("paper_pipelines: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = RunConfig { scale, seed, ..Default::default() };
    db_obs::log_info!(target: "bench", "generating DS1 @ {}...", scale.ds1_n());
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let k = (data.len() / factor).max(20);
    let available = std::thread::available_parallelism().map_or(1, NonZeroUsize::get);
    println!("DS1 n={} k={k} (factor {factor}), available parallelism = {available}", data.len());

    let sa_cfg = PipelineConfig::new(
        k,
        Compressor::Sample { seed: cfg.seed },
        Recovery::Bubbles,
        setup.bubble_optics(),
    );

    let mut rows = Vec::new();
    let mut baseline: Option<PipelineOutput> = None;
    let mut speedup4 = None;
    for threads in [NonZeroUsize::new(1), NonZeroUsize::new(2), NonZeroUsize::new(4), None] {
        let out = run(&data, &sa_cfg, threads);
        let label = threads.map_or("max".into(), |t| t.to_string());
        println!(
            "SA-Bubbles threads={label:>3}: compression {:.3}s  clustering {:.3}s  recovery {:.3}s  total {:.3}s",
            out.timings.compression.as_secs_f64(),
            out.timings.clustering.as_secs_f64(),
            out.timings.recovery.as_secs_f64(),
            out.timings.total().as_secs_f64(),
        );
        rows.push(timing_row(threads, &out));
        match &baseline {
            None => baseline = Some(out),
            Some(base) => {
                // The threaded paths must be bit-for-bit identical to the
                // single-threaded run — this is the determinism contract,
                // enforced here on the real benchmark workload too.
                let identical = base.rep_ordering == out.rep_ordering
                    && base.expanded == out.expanded
                    && base.n_representatives == out.n_representatives;
                assert!(identical, "threads={label}: output differs from the 1-thread run");
                if threads == NonZeroUsize::new(4) {
                    let combined = |o: &PipelineOutput| {
                        o.timings.compression.as_secs_f64() + o.timings.clustering.as_secs_f64()
                    };
                    speedup4 = Some(combined(base) / combined(&out));
                }
            }
        }
    }
    let speedup4 = speedup4.expect("4-thread run present");
    println!("combined compression+clustering speedup at 4 threads: {speedup4:.2}x");

    // CF cross-check: one run through the BIRCH branch with full threading.
    let cf_cfg = PipelineConfig::new(
        k,
        Compressor::Birch(db_birch::BirchParams::default()),
        Recovery::Bubbles,
        setup.bubble_optics(),
    );
    let cf = run(&data, &cf_cfg, None);
    println!(
        "CF-Bubbles threads=max: total {:.3}s (k_actual = {})",
        cf.timings.total().as_secs_f64(),
        cf.n_representatives
    );

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("pr3_threaded_pipelines".into())),
        (
            "dataset".into(),
            Json::Obj(vec![
                ("name".into(), Json::Str("DS1".into())),
                ("n".into(), Json::Int(data.len() as i64)),
                ("dim".into(), Json::Int(data.data.dim() as i64)),
            ]),
        ),
        ("k".into(), Json::Int(k as i64)),
        ("compression_factor".into(), Json::Int(factor as i64)),
        ("seed".into(), Json::Int(cfg.seed as i64)),
        ("available_parallelism".into(), Json::Int(available as i64)),
        ("pipeline".into(), Json::Str("OPTICS-SA-Bubbles".into())),
        ("runs".into(), Json::Arr(rows)),
        ("identical_outputs".into(), Json::Bool(true)),
        ("speedup_4_threads_compression_clustering".into(), Json::Num(speedup4)),
        (
            "cf_bubbles_crosscheck".into(),
            Json::Obj(vec![
                ("threads".into(), Json::Null),
                ("total_s".into(), Json::Num(cf.timings.total().as_secs_f64())),
                ("n_representatives".into(), Json::Int(cf.n_representatives as i64)),
            ]),
        ),
    ]);
    let path = out_path.as_str();
    if let Err(e) = std::fs::write(path, doc.render_pretty() + "\n") {
        eprintln!("could not write {path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {path}");
    if let Err(e) = telemetry.finish() {
        eprintln!("paper_pipelines: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
