fn main() {
    use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
    use db_bench::config::{RunConfig, Scale};
    use db_bench::experiments::common::ds1_setup;
    let cfg = RunConfig { scale: Scale::Paper, ..Default::default() };
    db_obs::log_info!(target: "bench", "generating DS1 @ 1M...");
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    for factor in [100usize, 1000, 5000] {
        let k = (data.len() / factor).max(20);
        let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics()).unwrap();
        let cf = optics_cf_bubbles(
            &data.data,
            k,
            &db_birch::BirchParams::default(),
            &setup.bubble_optics(),
        )
        .unwrap();
        println!(
            "factor {factor}: k={k} SA={:.2}s CF={:.2}s (CF k_actual={})",
            sa.timings.total().as_secs_f64(),
            cf.timings.total().as_secs_f64(),
            cf.n_representatives
        );
    }
}
