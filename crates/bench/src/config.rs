//! Workload scales and shared experiment configuration.

use std::num::NonZeroUsize;
use std::path::PathBuf;

use db_datagen::{
    corel_like, ds1, ds2, gaussian_family, CorelParams, Ds1Params, Ds2Params, GaussianFamilyParams,
    LabeledDataset,
};

/// How large the workloads are.
///
/// The paper ran on 1M-point databases; reproducing those sizes is
/// supported (`Paper`) but a full figure sweep then takes hours. `Default`
/// scales everything down 10× — keeping every *compression factor*, cluster
/// count and dimension identical, so the figures keep their shape — and
/// `Quick` another 5× for smoke tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test scale (DS1 = 20k points).
    Quick,
    /// Default scale (DS1 = 100k points).
    Default,
    /// The paper's original sizes (DS1 = 1M points).
    Paper,
}

impl Scale {
    /// Parses `quick` / `default` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// DS1 size (paper: 1,000,000).
    pub fn ds1_n(self) -> usize {
        match self {
            Scale::Quick => 20_000,
            Scale::Default => 100_000,
            Scale::Paper => 1_000_000,
        }
    }

    /// DS2 size (paper: 100,000).
    pub fn ds2_n(self) -> usize {
        match self {
            Scale::Quick => 5_000,
            Scale::Default => 20_000,
            Scale::Paper => 100_000,
        }
    }

    /// Size of the dimension-scaling Gaussian family (paper: 1,000,000).
    pub fn family_n(self) -> usize {
        match self {
            Scale::Quick => 10_000,
            Scale::Default => 50_000,
            Scale::Paper => 1_000_000,
        }
    }

    /// Size of the Corel substitute (the real data set has 68,040 rows).
    pub fn corel_n(self) -> usize {
        match self {
            Scale::Quick => 10_000,
            Scale::Default => 68_040,
            Scale::Paper => 68_040,
        }
    }

    /// Largest dimensionality at which the *original* OPTICS reference run
    /// is attempted (the paper could not run the original algorithm at 20
    /// dimensions either, §9.1).
    pub fn max_reference_dim(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Default => 10,
            Scale::Paper => 10,
        }
    }
}

/// Configuration shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Workload scale.
    pub scale: Scale,
    /// Output directory for the report files.
    pub out_dir: PathBuf,
    /// Base RNG seed (generators fork from it deterministically).
    pub seed: u64,
    /// Worker threads for the parallel pipeline paths (`None` = available
    /// parallelism). Results are identical for every setting; only the
    /// wall-clock changes.
    pub threads: Option<NonZeroUsize>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self { scale: Scale::Default, out_dir: PathBuf::from("results"), seed: 2001, threads: None }
    }
}

impl RunConfig {
    /// DS1 at the configured scale.
    pub fn make_ds1(&self) -> LabeledDataset {
        ds1(&Ds1Params { n: self.scale.ds1_n(), ..Ds1Params::default() }, self.seed)
    }

    /// DS2 at the configured scale.
    pub fn make_ds2(&self) -> LabeledDataset {
        ds2(&Ds2Params { n: self.scale.ds2_n(), ..Ds2Params::default() }, self.seed ^ 0xD52)
    }

    /// The dimension-scaling family, generated at `dim` (project down for
    /// lower-dimensional variants).
    pub fn make_family(&self, dim: usize) -> LabeledDataset {
        gaussian_family(
            &GaussianFamilyParams {
                n: self.scale.family_n(),
                dim,
                clusters: 15,
                domain: 150.0,
                ..GaussianFamilyParams::default()
            },
            self.seed ^ 0xFA,
        )
    }

    /// The Corel color-moments substitute.
    pub fn make_corel(&self) -> LabeledDataset {
        corel_like(
            &CorelParams { n: self.scale.corel_n(), ..CorelParams::default() },
            self.seed ^ 0xC0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn sizes_increase_with_scale() {
        assert!(Scale::Quick.ds1_n() < Scale::Default.ds1_n());
        assert!(Scale::Default.ds1_n() < Scale::Paper.ds1_n());
        assert!(Scale::Quick.ds2_n() < Scale::Paper.ds2_n());
        assert!(Scale::Quick.family_n() < Scale::Paper.family_n());
    }

    #[test]
    fn workloads_are_constructed_at_quick_scale() {
        let cfg = RunConfig { scale: Scale::Quick, ..RunConfig::default() };
        assert_eq!(cfg.make_ds1().len(), 20_000);
        assert_eq!(cfg.make_ds2().len(), 5_000);
        let fam = cfg.make_family(5);
        assert_eq!(fam.data.dim(), 5);
        assert_eq!(fam.n_clusters(), 15);
        assert_eq!(cfg.make_corel().data.dim(), 9);
    }
}
