//! Comparison of two benchmark report JSON documents (`BENCH_*.json`).
//!
//! [`compare`] walks both documents in parallel and checks every numeric
//! field whose key ends in `_s` (a seconds timing) for regressions: `new`
//! is a regression when it exceeds `old * (1 + tolerance) + floor_s`. The
//! additive floor keeps micro-timings (a few milliseconds, dominated by
//! scheduler noise) from tripping the relative check. Non-timing fields
//! are ignored for pass/fail but structural drift (a timing present in
//! one document and missing in the other) is reported.
//!
//! The `bench-diff` binary wraps this for CI:
//!
//! ```text
//! bench-diff old.json new.json [--tolerance 0.5] [--floor-s 0.005]
//! ```

use std::path::{Path, PathBuf};

use db_obs::{Json, JsonParseError};

/// Why a `BENCH_*.json` report could not be loaded. Typed so the
/// `bench-diff` binary can exit with a usage/I-O code (2) that is
/// distinct from a regression verdict (1), and so neither side panics on
/// a missing or malformed file.
#[derive(Debug)]
pub enum ReportLoadError {
    /// The file could not be read (missing, permissions, ...).
    Read {
        /// The path that was requested.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The file was read but is not valid JSON.
    Parse {
        /// The path that was requested.
        path: PathBuf,
        /// The parse failure, with position info.
        source: JsonParseError,
    },
}

impl std::fmt::Display for ReportLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportLoadError::Read { path, source } => {
                write!(f, "cannot read {}: {source}", path.display())
            }
            ReportLoadError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for ReportLoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReportLoadError::Read { source, .. } => Some(source),
            ReportLoadError::Parse { source, .. } => Some(source),
        }
    }
}

/// Loads a benchmark report JSON file.
///
/// # Errors
///
/// [`ReportLoadError`] when the file is unreadable or malformed; never
/// panics.
pub fn load_report(path: impl AsRef<Path>) -> Result<Json, ReportLoadError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|source| ReportLoadError::Read { path: path.to_path_buf(), source })?;
    Json::parse(&text).map_err(|source| ReportLoadError::Parse { path: path.to_path_buf(), source })
}

/// Knobs for [`compare`].
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed relative slowdown, e.g. `0.5` = new may be up to 1.5× old.
    pub tolerance: f64,
    /// Additive slack in seconds, absorbing fixed noise on tiny timings.
    pub floor_s: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        // Generous by design: CI machines are noisy and shared, and the
        // guard is for order-of-magnitude regressions (an accidental
        // O(k²) reintroduction), not single-digit percent drift.
        DiffOptions { tolerance: 0.5, floor_s: 0.005 }
    }
}

/// One compared timing.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingDelta {
    /// Dotted/indexed path into the document, e.g. `runs[2].total_s`.
    pub path: String,
    /// Value in the old document, seconds.
    pub old_s: f64,
    /// Value in the new document, seconds.
    pub new_s: f64,
}

impl TimingDelta {
    /// `new / old` (infinite when old is zero and new is not).
    pub fn ratio(&self) -> f64 {
        if self.old_s == 0.0 {
            if self.new_s == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new_s / self.old_s
        }
    }
}

/// The outcome of comparing two benchmark documents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// Timings that got slower than the tolerance allows.
    pub regressions: Vec<TimingDelta>,
    /// Timings that got faster than the tolerance band (informational).
    pub improvements: Vec<TimingDelta>,
    /// Every timing compared (including unremarkable ones).
    pub compared: Vec<TimingDelta>,
    /// Timing paths present in only one document.
    pub structural: Vec<String>,
}

impl DiffReport {
    /// True when no timing regressed (structural drift does not fail the
    /// comparison — a new report may legitimately grow fields).
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Compares two benchmark JSON documents. See the module docs for the
/// regression criterion.
pub fn compare(old: &Json, new: &Json, opts: &DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    walk(old, new, String::new(), opts, &mut report);
    report
}

fn is_timing_key(key: &str) -> bool {
    key.ends_with("_s")
}

fn walk(old: &Json, new: &Json, path: String, opts: &DiffOptions, report: &mut DiffReport) {
    match (old, new) {
        (Json::Obj(of), Json::Obj(nf)) => {
            for (key, ov) in of {
                let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                match nf.iter().find(|(k, _)| k == key) {
                    Some((_, nv)) => walk(ov, nv, sub, opts, report),
                    None => note_missing(ov, &sub, "new", report),
                }
            }
            for (key, nv) in nf {
                if of.iter().all(|(k, _)| k != key) {
                    let sub = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                    note_missing(nv, &sub, "old", report);
                }
            }
        }
        (Json::Arr(oi), Json::Arr(ni)) => {
            for (i, (ov, nv)) in oi.iter().zip(ni).enumerate() {
                walk(ov, nv, format!("{path}[{i}]"), opts, report);
            }
            if oi.len() != ni.len() {
                report.structural.push(format!(
                    "{path}: length {} in old vs {} in new",
                    oi.len(),
                    ni.len()
                ));
                for (i, ov) in oi.iter().enumerate().skip(ni.len()) {
                    note_missing(ov, &format!("{path}[{i}]"), "new", report);
                }
                for (i, nv) in ni.iter().enumerate().skip(oi.len()) {
                    note_missing(nv, &format!("{path}[{i}]"), "old", report);
                }
            }
        }
        _ => {
            let leaf_key = path.rsplit('.').next().unwrap_or(&path);
            if !is_timing_key(leaf_key) {
                return;
            }
            match (old.as_f64(), new.as_f64()) {
                (Some(old_s), Some(new_s)) => {
                    let delta = TimingDelta { path, old_s, new_s };
                    if new_s > old_s * (1.0 + opts.tolerance) + opts.floor_s {
                        report.regressions.push(delta.clone());
                    } else if new_s < old_s / (1.0 + opts.tolerance) - opts.floor_s {
                        report.improvements.push(delta.clone());
                    }
                    report.compared.push(delta);
                }
                _ => report.structural.push(format!("{path}: not numeric in both documents")),
            }
        }
    }
}

/// Records a timing that exists in only one document (non-timing leaves
/// and whole subtrees without timings are ignored).
fn note_missing(subtree: &Json, path: &str, missing_from: &str, report: &mut DiffReport) {
    match subtree {
        Json::Obj(fields) => {
            for (key, v) in fields {
                note_missing(v, &format!("{path}.{key}"), missing_from, report);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                note_missing(v, &format!("{path}[{i}]"), missing_from, report);
            }
        }
        _ => {
            let leaf_key = path.rsplit('.').next().unwrap_or(path);
            if is_timing_key(leaf_key) {
                report.structural.push(format!("{path}: missing from {missing_from} document"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(total: f64, phases: &[f64]) -> Json {
        Json::Obj(vec![
            ("bench".into(), Json::Str("t".into())),
            ("k".into(), Json::Int(100)),
            (
                "runs".into(),
                Json::Arr(
                    phases
                        .iter()
                        .map(|&p| {
                            Json::Obj(vec![
                                ("compression_s".into(), Json::Num(p)),
                                ("n_representatives".into(), Json::Int(50)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total_s".into(), Json::Num(total)),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let d = doc(1.0, &[0.4, 0.6]);
        let r = compare(&d, &d, &DiffOptions::default());
        assert!(r.passed());
        assert!(r.improvements.is_empty());
        assert_eq!(r.compared.len(), 3);
        assert!(r.structural.is_empty());
    }

    #[test]
    fn two_x_slowdown_fails() {
        let old = doc(1.0, &[0.4, 0.6]);
        let new = doc(2.0, &[0.4, 0.6]);
        let r = compare(&old, &new, &DiffOptions::default());
        assert!(!r.passed());
        assert_eq!(r.regressions.len(), 1);
        assert_eq!(r.regressions[0].path, "total_s");
        assert_eq!(r.regressions[0].ratio(), 2.0);
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let old = doc(1.0, &[0.4, 0.6]);
        let new = doc(1.4, &[0.55, 0.6]);
        assert!(compare(&old, &new, &DiffOptions::default()).passed());
    }

    #[test]
    fn floor_absorbs_micro_timing_noise() {
        // 3ms -> 7ms is a 2.3x ratio but under the 5ms additive floor.
        let old = doc(0.003, &[]);
        let new = doc(0.007, &[]);
        assert!(compare(&old, &new, &DiffOptions::default()).passed());
        // The same ratio at real magnitudes fails.
        let old = doc(3.0, &[]);
        let new = doc(7.0, &[]);
        assert!(!compare(&old, &new, &DiffOptions::default()).passed());
    }

    #[test]
    fn improvements_are_informational() {
        let old = doc(2.0, &[1.0]);
        let new = doc(0.5, &[1.0]);
        let r = compare(&old, &new, &DiffOptions::default());
        assert!(r.passed());
        assert_eq!(r.improvements.len(), 1);
        assert_eq!(r.improvements[0].path, "total_s");
    }

    #[test]
    fn non_timing_fields_never_fail() {
        let mut old = doc(1.0, &[0.5]);
        // Change k (an Int, not a timing) in the new document.
        let new = doc(1.0, &[0.5]);
        if let Json::Obj(fields) = &mut old {
            fields[1].1 = Json::Int(999);
        }
        assert!(compare(&old, &new, &DiffOptions::default()).passed());
    }

    #[test]
    fn structural_drift_is_reported_not_fatal() {
        let old = doc(1.0, &[0.4, 0.6]);
        let new = doc(1.0, &[0.4]);
        let r = compare(&old, &new, &DiffOptions::default());
        assert!(r.passed());
        assert!(r.structural.iter().any(|s| s.contains("runs[1].compression_s")));
        assert!(r.structural.iter().any(|s| s.contains("length 2 in old vs 1 in new")));
    }

    #[test]
    fn zero_to_nonzero_has_infinite_ratio() {
        let d = TimingDelta { path: "x_s".into(), old_s: 0.0, new_s: 1.0 };
        assert!(d.ratio().is_infinite());
        let d = TimingDelta { path: "x_s".into(), old_s: 0.0, new_s: 0.0 };
        assert_eq!(d.ratio(), 1.0);
    }
}
