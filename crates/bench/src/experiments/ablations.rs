//! Ablations beyond the paper, isolating the design choices DESIGN.md
//! calls out:
//!
//! 1. **Bubble distance (Def. 6) vs. plain rep-to-rep distance** — why the
//!    structural distortion disappears;
//! 2. **Virtual reachability (Def. 9) vs. §5-style weighted expansion** on
//!    the same bubble ordering;
//! 3. **Spatial index choice** for the full-OPTICS reference run.

use std::io;
use std::time::Instant;

use data_bubbles::pipeline::{expand_bubbles, expand_weighted};
use data_bubbles::{BubbleSpace, DataBubble};
use db_optics::{optics, optics_points, OpticsParams, PointSpace};
use db_sampling::compress_by_sampling;
use db_spatial::{AnyIndex, GridIndex, KdTree, LinearScan};

use crate::config::RunConfig;
use crate::experiments::common::{dents, ds1_setup, expanded_quality};
use crate::report::Report;

struct AblationRow {
    ablation: &'static str,
    variant: &'static str,
    ari: f64,
    dents: usize,
}

db_obs::impl_to_json!(AblationRow { ablation, variant, ari, dents });

struct IndexRow {
    index: &'static str,
    runtime_s: f64,
}

db_obs::impl_to_json!(IndexRow { index, runtime_s });

/// Runs all ablations.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("ablations", &cfg.out_dir)?;
    rep.line("Ablations: bubble distance, virtual reachability, index choice");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let k = (data.len() / 1_000).max(10);
    let mut rows: Vec<AblationRow> = Vec::new();

    // Shared compression for ablations 1 and 2.
    let compressed = compress_by_sampling(&data.data, k, cfg.seed)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let members = compressed.members();
    let bubbles: Vec<DataBubble> = compressed.stats.iter().map(DataBubble::from_cf).collect();

    // --- Ablation 1: Definition 6 vs. plain representative distance. ----
    rep.section("ablation 1: bubble distance (Def. 6) vs. rep-to-rep distance");
    let space = BubbleSpace::new(bubbles.clone());
    let ordering = optics(&space, &setup.bubble_optics());
    let full = expand_bubbles(&ordering, &members, &space, setup.min_pts);
    let q_full = expanded_quality(&full, &data, setup.cut);
    let d_full = dents(&full.reachabilities(), &setup);
    rep.line(format!("Def. 6 distance:      ARI = {:.3}, dents = {d_full}", q_full.ari));
    rows.push(AblationRow {
        ablation: "distance",
        variant: "def6",
        ari: q_full.ari,
        dents: d_full,
    });

    // Zero-extent bubbles degrade Def. 6 to the plain distance between the
    // representatives and Lemma 1 to nndist ≡ 0, isolating the distance
    // definition (weights and expansion structure stay identical).
    let flat: Vec<DataBubble> =
        bubbles.iter().map(|b| DataBubble::new(b.rep().to_vec(), b.n(), 0.0)).collect();
    let flat_space = BubbleSpace::new(flat);
    let flat_ordering = optics(&flat_space, &setup.bubble_optics());
    let flat_expanded = expand_bubbles(&flat_ordering, &members, &flat_space, setup.min_pts);
    let q_flat = expanded_quality(&flat_expanded, &data, setup.cut);
    let d_flat = dents(&flat_expanded.reachabilities(), &setup);
    rep.line(format!("rep-to-rep distance:  ARI = {:.3}, dents = {d_flat}", q_flat.ari));
    rows.push(AblationRow {
        ablation: "distance",
        variant: "rep-to-rep",
        ari: q_flat.ari,
        dents: d_flat,
    });

    // --- Ablation 2: virtual reachability vs. weighted expansion. -------
    rep.section("ablation 2: expansion — virtual reachability (Def. 9) vs. §5 weighted");
    let weighted = expand_weighted(&ordering, &members);
    let q_weighted = expanded_quality(&weighted, &data, setup.cut);
    let d_weighted = dents(&weighted.reachabilities(), &setup);
    rep.line(format!("virtual reachability: ARI = {:.3}, dents = {d_full}", q_full.ari));
    rep.line(format!("weighted filler:      ARI = {:.3}, dents = {d_weighted}", q_weighted.ari));
    rows.push(AblationRow {
        ablation: "expansion",
        variant: "virtual-reachability",
        ari: q_full.ari,
        dents: d_full,
    });
    rows.push(AblationRow {
        ablation: "expansion",
        variant: "weighted-filler",
        ari: q_weighted.ari,
        dents: d_weighted,
    });

    // --- Ablation 3: index choice for the reference run. ----------------
    rep.section("ablation 3: spatial index for the full-OPTICS reference");
    // Cap the size so the linear scan stays feasible.
    let n_idx = data.len().min(20_000);
    let subset = data.prefix(n_idx);
    let sub_setup = ds1_setup(n_idx);
    let mut index_rows = Vec::new();
    let variants: [(&'static str, AnyIndex); 3] = [
        ("grid", AnyIndex::Grid(GridIndex::build(&subset.data, sub_setup.eps).expect("grid ok"))),
        ("kd-tree", AnyIndex::KdTree(KdTree::build(&subset.data))),
        ("linear", AnyIndex::Linear(LinearScan::build(&subset.data))),
    ];
    for (name, index) in variants {
        let t = Instant::now();
        let space = PointSpace::with_index(&subset.data, index);
        let o = optics(&space, &OpticsParams { eps: sub_setup.eps, min_pts: sub_setup.min_pts });
        let dt = t.elapsed();
        assert_eq!(o.len(), n_idx);
        rep.line(format!("{name:>8}: {:.3}s (n = {n_idx})", dt.as_secs_f64()));
        index_rows.push(IndexRow { index: name, runtime_s: dt.as_secs_f64() });
    }
    // Sanity: same walk irrespective of the index.
    {
        let a = optics_points(&subset.data, &sub_setup.optics());
        let space =
            PointSpace::with_index(&subset.data, AnyIndex::KdTree(KdTree::build(&subset.data)));
        let b = optics(&space, &sub_setup.optics());
        let same = a.entries.iter().zip(&b.entries).all(|(x, y)| {
            x.id == y.id && (x.reachability - y.reachability).abs() < 1e-9
                || (x.reachability.is_infinite() && y.reachability.is_infinite() && x.id == y.id)
        });
        rep.line(format!("walks identical across indexes: {same}"));
    }

    struct All {
        quality: Vec<AblationRow>,
        index: Vec<IndexRow>,
    }

    db_obs::impl_to_json!(All { quality, index });
    rep.finish(Some(&All { quality: rows, index: index_rows }))
}
