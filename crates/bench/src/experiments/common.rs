//! Shared helpers: per-dataset OPTICS parameters, the full-OPTICS reference
//! run, and quality metrics over expanded orderings.

use std::time::{Duration, Instant};

use data_bubbles::pipeline::ExpandedOrdering;
use db_datagen::LabeledDataset;
use db_eval::{adjusted_rand_index, count_dents};
use db_optics::{extract_dbscan, optics_points, ClusterOrdering, OpticsParams};

/// OPTICS parameters plus the flat-extraction cut level for one workload.
///
/// All distance-valued settings are derived from the data density, so they
/// stay meaningful across [`crate::config::Scale`]s: k-NN distances in a
/// 2-d region of `n` points scale with `sqrt(min_pts / n)`.
#[derive(Debug, Clone, Copy)]
pub struct Setup {
    /// OPTICS generating distance ε.
    pub eps: f64,
    /// OPTICS MinPts (counts original objects, also for bubbles).
    pub min_pts: usize,
    /// Cut level ε′ for flat cluster extraction from the plots.
    pub cut: f64,
}

impl Setup {
    /// Parameters for the full-data reference run (finite ε so the spatial
    /// index pays off).
    pub fn optics(&self) -> OpticsParams {
        OpticsParams { eps: self.eps, min_pts: self.min_pts }
    }

    /// Parameters for OPTICS over *Data Bubbles*: MinPts counts original
    /// objects (Def. 7) so it carries over unchanged; ε is unbounded
    /// because the bubble space is exhaustively scanned anyway (paper §8:
    /// the step "runs in O(k·k)").
    pub fn bubble_optics(&self) -> OpticsParams {
        OpticsParams { eps: f64::INFINITY, min_pts: self.min_pts }
    }

    /// Parameters for OPTICS over representative *points* (the naive and
    /// weighted variants): there MinPts counts representatives, so it must
    /// shrink with the compression — a sample of `k` points cannot support
    /// the full-data MinPts.
    pub fn rep_optics(&self, k: usize) -> OpticsParams {
        OpticsParams { eps: f64::INFINITY, min_pts: self.min_pts.min((k / 50).max(2)) }
    }
}

/// Density-scaled MinPts: 1 per 10,000 objects, at least 10.
fn scaled_min_pts(n: usize) -> usize {
    (n / 10_000).max(10)
}

/// Setup for DS1 (2-d, domain 100², ~9% noise of density `0.09·n/10⁴`).
/// The cut is calibrated to sit between the densest clusters' and the
/// noise floor's MinPts-distances.
pub fn ds1_setup(n: usize) -> Setup {
    let min_pts = scaled_min_pts(n);
    let cut = 120.0 * ((min_pts as f64) / (n as f64)).sqrt();
    Setup { eps: 3.0 * cut, min_pts, cut }
}

/// Setup for DS2 (five σ=2 Gaussians, inter-center gaps ≥ 30).
pub fn ds2_setup(n: usize) -> Setup {
    let min_pts = scaled_min_pts(n);
    let cut = 100.0 * ((min_pts as f64) / (n as f64)).sqrt();
    Setup { eps: 3.0 * cut, min_pts, cut }
}

/// Setup for the dimension-scaling Gaussian family. Within-cluster
/// MinPts-distances grow with `σ·sqrt(2d)` (Gaussian shell geometry), so
/// the cut scales the same way.
pub fn family_setup(n: usize, dim: usize) -> Setup {
    let min_pts = scaled_min_pts(n);
    let sigma_max = 3.0;
    let cut = 1.1 * sigma_max * (2.0 * dim as f64).sqrt();
    let _ = n;
    Setup { eps: 2.0 * cut, min_pts, cut }
}

/// Setup for the Corel substitute (9-d unit cube, background 10-NN
/// distance ≈ 0.39; the tiny clusters are ≥ 0.4 away from any background
/// point).
pub fn corel_setup(_n: usize) -> Setup {
    Setup { eps: 0.6, min_pts: 10, cut: 0.25 }
}

/// Number of representatives for a compression factor, floored at 20 so
/// the smallest runs stay non-degenerate (the paper's smallest k is 100).
pub fn k_for(n: usize, factor: usize) -> usize {
    (n / factor).max(20).min(n)
}

/// A data-driven extraction cut for *representative-scale* plots (naive and
/// weighted variants): 4× the median finite reachability. Within-cluster
/// values dominate any plot that retains structure, so jumps exceed the
/// cut; when the structure is destroyed (high compression) everything falls
/// on one side and a single cluster remains — exactly the paper's reading
/// of those figures.
pub fn adaptive_cut(values: &[f64]) -> f64 {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return f64::INFINITY;
    }
    finite.sort_by(f64::total_cmp);
    4.0 * finite[finite.len() / 2]
}

/// One full-OPTICS reference run, timed.
pub fn reference_run(data: &LabeledDataset, setup: &Setup) -> (ClusterOrdering, Duration) {
    let t = Instant::now();
    let ordering = optics_points(&data.data, &setup.optics());
    (ordering, t.elapsed())
}

/// Quality of a clustering against the generator's ground truth.
#[derive(Debug, Clone, Copy)]
pub struct Quality {
    /// Adjusted Rand index vs. the ground-truth labels.
    pub ari: f64,
    /// Number of clusters found by flat extraction.
    pub clusters_found: usize,
    /// Number of ground-truth clusters.
    pub clusters_true: usize,
}

db_obs::impl_to_json!(Quality { ari, clusters_found, clusters_true });

/// Quality of a *reference* ordering (per object id = walk id).
pub fn reference_quality(ordering: &ClusterOrdering, data: &LabeledDataset, cut: f64) -> Quality {
    let labels = extract_dbscan(ordering, cut, data.len());
    quality_from_labels(&labels, data)
}

/// Quality of an expanded pipeline ordering.
pub fn expanded_quality(expanded: &ExpandedOrdering, data: &LabeledDataset, cut: f64) -> Quality {
    let labels = expanded.extract_dbscan(cut);
    quality_from_labels(&labels, data)
}

fn quality_from_labels(labels: &[i32], data: &LabeledDataset) -> Quality {
    // Count only "visible" clusters (≥ 0.2% of the objects, at least 5):
    // the flat extraction emits micro-clusters at density borders which no
    // reader of the figure would count.
    let mut sizes = std::collections::HashMap::new();
    for &l in labels {
        if l >= 0 {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
    }
    let visible = (labels.len() / 500).max(5);
    Quality {
        ari: adjusted_rand_index(&data.labels, labels),
        clusters_found: sizes.values().filter(|&&s| s >= visible).count(),
        clusters_true: data.n_clusters(),
    }
}

/// Counts the dents of a plot at the cut level. A dent must span at least
/// MinPts positions and at least 0.2% of the plot — the latter keeps the
/// count comparable across scales (it mirrors "visible in the figure").
pub fn dents(values: &[f64], setup: &Setup) -> usize {
    count_dents(values, setup.cut, setup.min_pts.max(values.len() / 500))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_pts_scales_with_n() {
        assert_eq!(ds1_setup(20_000).min_pts, 10);
        assert_eq!(ds1_setup(100_000).min_pts, 10);
        assert_eq!(ds1_setup(1_000_000).min_pts, 100);
    }

    #[test]
    fn cut_is_scale_invariant_for_ds1() {
        // n and min_pts both ×10 ⇒ identical cut.
        let a = ds1_setup(100_000);
        let b = ds1_setup(1_000_000);
        assert!((a.cut * (10.0f64).sqrt() / (10.0f64).sqrt() - b.cut).abs() < 1e-9);
    }

    #[test]
    fn family_cut_grows_with_dimension() {
        assert!(family_setup(50_000, 20).cut > family_setup(50_000, 2).cut);
    }

    #[test]
    fn k_for_floors_and_clamps() {
        assert_eq!(k_for(100_000, 100), 1_000);
        assert_eq!(k_for(20_000, 5_000), 20); // floored
        assert_eq!(k_for(10, 1), 10); // clamped at n
    }

    #[test]
    fn adaptive_cut_separates_jumps() {
        let mut v = vec![0.5; 90];
        v.extend(vec![50.0; 10]);
        let cut = adaptive_cut(&v);
        assert!(cut > 0.5 && cut < 50.0, "cut {cut}");
        assert!(adaptive_cut(&[f64::INFINITY]).is_infinite());
    }

    #[test]
    fn rep_optics_scales_min_pts_down() {
        let s = ds1_setup(100_000);
        assert_eq!(s.rep_optics(1_000).min_pts, s.min_pts); // large k keeps MinPts
        assert_eq!(s.rep_optics(100).min_pts, 2);
        assert_eq!(s.rep_optics(4).min_pts, 2);
        assert!(s.rep_optics(100).eps.is_infinite());
        assert!(s.bubble_optics().eps.is_infinite());
        assert_eq!(s.bubble_optics().min_pts, s.min_pts);
    }

    #[test]
    fn eps_exceeds_cut() {
        for s in [ds1_setup(1000), ds2_setup(1000), family_setup(1000, 5), corel_setup(1000)] {
            assert!(s.eps > s.cut);
            assert!(s.min_pts >= 1);
        }
    }

    #[test]
    fn quality_from_perfect_labels() {
        use db_spatial::Dataset;
        // Two clusters of 5 points each (the "visible" minimum).
        let mut ds = Dataset::new(1).unwrap();
        let mut labels = Vec::new();
        for i in 0..10 {
            ds.push(&[if i < 5 { 0.0 } else { 5.0 } + i as f64 * 0.01]).unwrap();
            labels.push(i32::from(i >= 5));
        }
        let data = LabeledDataset::new(ds, labels.clone());
        let q = quality_from_labels(&labels, &data);
        assert!((q.ari - 1.0).abs() < 1e-9);
        assert_eq!(q.clusters_found, 2);
        assert_eq!(q.clusters_true, 2);
    }

    #[test]
    fn quality_ignores_micro_clusters() {
        use db_spatial::Dataset;
        // 100 objects in one big cluster plus a 2-point micro-cluster:
        // only the big one is "visible".
        let mut ds = Dataset::new(1).unwrap();
        let mut labels = Vec::new();
        for i in 0..102 {
            ds.push(&[i as f64]).unwrap();
            labels.push(if i < 100 { 0 } else { 1 });
        }
        let data = LabeledDataset::new(ds, labels.clone());
        let q = quality_from_labels(&labels, &data);
        assert_eq!(q.clusters_found, 1);
        assert_eq!(q.clusters_true, 2);
    }
}
