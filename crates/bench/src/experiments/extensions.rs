//! Extension experiments beyond the paper's figures:
//!
//! * `ext_compressors` — all four compression substrates of §2 (random
//!   sampling, BIRCH, Bradley–Fayyad–Reina, grid squashing) feeding the
//!   same Data-Bubble pipeline, compared on quality, representative count
//!   and runtime;
//! * `ext_hierarchy` — ξ-cluster trees of DS1: the nested cluster
//!   structure of the reference plot vs. the bubble plot.

use std::io;

use data_bubbles::pipeline::{run_pipeline, Compressor, PipelineConfig, Recovery};
use db_birch::BirchParams;
use db_optics::{extract_xi, ClusterTree};
use db_sampling::BfrParams;

use crate::config::RunConfig;
use crate::experiments::common::{ds1_setup, expanded_quality, k_for, reference_run};
use crate::report::Report;

struct CompressorRow {
    compressor: &'static str,
    representatives: usize,
    ari: f64,
    clusters_found: usize,
    runtime_s: f64,
}

db_obs::impl_to_json!(CompressorRow {
    compressor,
    representatives,
    ari,
    clusters_found,
    runtime_s
});

/// Compares the four compression substrates under the bubble pipeline.
pub fn run_compressors(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("ext_compressors", &cfg.out_dir)?;
    rep.line("Extension: compression substrates of §2 under the Data-Bubble pipeline (DS1)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let k = k_for(data.len(), 1_000);
    rep.line(format!("n = {}, target k = {k}", data.len()));
    rep.line(format!(
        "{:>14} {:>8} {:>8} {:>10} {:>10}",
        "compressor", "reps", "ARI", "clusters", "runtime"
    ));

    let variants: Vec<(&'static str, Compressor)> = vec![
        ("sampling", Compressor::Sample { seed: cfg.seed }),
        ("birch", Compressor::Birch(BirchParams::default())),
        (
            "bfr",
            Compressor::Bfr(BfrParams {
                primary_clusters: k / 4,
                ds_threshold: 2.0,
                cs_max_std: setup.cut,
                ..BfrParams::default()
            }),
        ),
        ("grid-squash", Compressor::GridSquash { bins_per_dim: 32 }),
    ];

    let mut rows = Vec::new();
    for (name, compressor) in variants {
        let mut pcfg = PipelineConfig::new(k, compressor, Recovery::Bubbles, setup.bubble_optics());
        pcfg.threads = cfg.threads;
        let out = run_pipeline(&data.data, &pcfg)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let expanded = out.expanded.as_ref().expect("bubble pipelines expand");
        let q = expanded_quality(expanded, &data, setup.cut);
        rep.line(format!(
            "{:>14} {:>8} {:>8.3} {:>7}/{:<2} {:>9.3}s",
            name,
            out.n_representatives,
            q.ari,
            q.clusters_found,
            q.clusters_true,
            out.timings.total().as_secs_f64()
        ));
        rows.push(CompressorRow {
            compressor: name,
            representatives: out.n_representatives,
            ari: q.ari,
            clusters_found: q.clusters_found,
            runtime_s: out.timings.total().as_secs_f64(),
        });
    }
    rep.section("reading");
    rep.line("all four substrates produce (n, LS, ss) statistics the bubble machinery");
    rep.line("consumes unchanged; sampling controls k exactly, the others only indirectly.");
    rep.finish(Some(&rows))
}

struct HierarchyRow {
    method: &'static str,
    clusters: usize,
    depth: usize,
    leaves: usize,
}

db_obs::impl_to_json!(HierarchyRow { method, clusters, depth, leaves });

/// Compares the ξ-cluster hierarchy of the reference and bubble plots.
pub fn run_hierarchy(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("ext_hierarchy", &cfg.out_dir)?;
    rep.line("Extension: nested xi-cluster structure of DS1 (reference vs bubbles)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let min_size = data.len() / 100;
    let xi = 0.15;

    // For a granularity-fair comparison, aggregate the point-level
    // reference plot into ~1,000 buckets (the resolution of the bubble
    // ordering below) before steep-area extraction: ξ-steepness is a
    // relative per-position criterion and needs comparable step widths.
    let (reference, _) = reference_run(&data, &setup);
    let buckets = 1_000.min(data.len());
    let raw = reference.reachabilities();
    let bucketed: Vec<f64> = (0..buckets)
        .map(|b| {
            let lo = b * raw.len() / buckets;
            let hi = ((b + 1) * raw.len() / buckets).max(lo + 1);
            let slice = &raw[lo..hi.min(raw.len())];
            let finite: Vec<f64> = slice.iter().copied().filter(|v| v.is_finite()).collect();
            if finite.is_empty() {
                f64::INFINITY
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            }
        })
        .collect();
    let bucket_ordering = db_optics::ClusterOrdering {
        entries: bucketed
            .iter()
            .enumerate()
            .map(|(i, &r)| db_optics::OrderingEntry {
                id: i,
                reachability: r,
                core_distance: r,
                weight: (data.len() / buckets) as u64,
            })
            .collect(),
        eps: reference.eps,
        min_pts: 3,
    };
    let bucket_min = (min_size * buckets / data.len()).max(2);
    let ref_clusters = extract_xi(&bucket_ordering, xi, bucket_min);
    let ref_tree = ClusterTree::build(&ref_clusters).simplify(0.1);
    rep.section(&format!(
        "reference (xi = {xi}, bucketed to {buckets} positions, 1 position ≈ {} objects)",
        data.len() / buckets
    ));
    rep.block(ref_tree.render());
    rep.line(format!(
        "clusters = {}, depth = {}, leaves = {}",
        ref_tree.len(),
        ref_tree.depth(),
        ref_tree.n_leaves()
    ));

    let mut pcfg = PipelineConfig::new(
        k_for(data.len(), 100),
        Compressor::Sample { seed: cfg.seed },
        Recovery::Bubbles,
        setup.bubble_optics(),
    );
    pcfg.threads = cfg.threads;
    let out = run_pipeline(&data.data, &pcfg)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    // Extract the hierarchy from the *bubble ordering* itself (each
    // position stands for ~factor original objects); the expanded plot is
    // piecewise constant and would fragment into plateau artifacts.
    let k_actual = out.n_representatives;
    let bub_min_size = (min_size * k_actual / data.len()).max(2);
    let bub_clusters = extract_xi(&out.rep_ordering, xi, bub_min_size);
    let bub_tree = ClusterTree::build(&bub_clusters).simplify(0.1);
    rep.section(&format!(
        "SA-Bubbles (factor 100; intervals in bubble positions, 1 position ≈ {} objects)",
        data.len() / k_actual
    ));
    rep.block(bub_tree.render());
    rep.line(format!(
        "clusters = {}, depth = {}, leaves = {}",
        bub_tree.len(),
        bub_tree.depth(),
        bub_tree.n_leaves()
    ));
    rep.section("reading");
    rep.line("DS1's generator nests dense children inside three of its four top-level");
    rep.line("clusters: both representations must show a nested tree (depth >= 2). The");
    rep.line("exact cluster counts differ with the extraction sensitivity; the shapes");
    rep.line("should correspond.");

    let rows = [
        HierarchyRow {
            method: "reference",
            clusters: ref_tree.len(),
            depth: ref_tree.depth(),
            leaves: ref_tree.n_leaves(),
        },
        HierarchyRow {
            method: "sa-bubbles",
            clusters: bub_tree.len(),
            depth: bub_tree.depth(),
            leaves: bub_tree.n_leaves(),
        },
    ];
    rep.finish(Some(&rows))
}
