//! Figures 14 and 15: the **Data Bubble** pipelines — all three problems
//! solved. DS1 at three compression factors (Fig. 14) and DS2 (Fig. 15).
//! Quality is reported both against the ground truth and against the
//! full-data reference run (the paper's notion of "quality preserving").

use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;
use db_datagen::LabeledDataset;
use db_optics::extract_dbscan;

use crate::config::RunConfig;
use crate::experiments::common::{ds1_setup, ds2_setup, k_for, reference_run, Setup};
use crate::experiments::fig9_10::{report_expanded, Row};
use crate::report::Report;

fn run_bubbles(
    rep: &mut Report,
    data: &LabeledDataset,
    setup: &Setup,
    factors: &[usize],
    seed: u64,
) -> io::Result<Vec<Row>> {
    // One reference run for the quality-preservation comparison.
    let (reference, ref_time) = reference_run(data, setup);
    let ref_labels = extract_dbscan(&reference, setup.cut, data.len());
    rep.line(format!(
        "reference OPTICS: runtime = {:.3}s, cut = {:.3}",
        ref_time.as_secs_f64(),
        setup.cut
    ));

    let mut rows = Vec::new();
    let n = data.len();
    for &factor in factors {
        let k = k_for(n, factor);
        rep.section(&format!("compression factor {factor} (k = {k})"));
        let sa = optics_sa_bubbles(&data.data, k, seed, &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_expanded(
            rep,
            &mut rows,
            "OPTICS-SA-Bubbles",
            &sa,
            data,
            setup,
            factor,
            Some(setup.cut),
            Some(&ref_labels),
        );
        let cf = optics_cf_bubbles(&data.data, k, &BirchParams::default(), &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_expanded(
            rep,
            &mut rows,
            "OPTICS-CF-Bubbles",
            &cf,
            data,
            setup,
            factor,
            Some(setup.cut),
            Some(&ref_labels),
        );
    }
    Ok(rows)
}

/// Figure 14: bubble variants on DS1.
pub fn run_fig14(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig14", &cfg.out_dir)?;
    rep.line("Figure 14: OPTICS-SA/CF-Bubbles on DS1 (all three problems solved)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let rows =
        run_bubbles(&mut rep, &data, &setup, &crate::experiments::fig6_7::FIG6_FACTORS, cfg.seed)?;
    rep.section("expectation (paper)");
    rep.line("very good quality for large and medium k; at the smallest k the CF variant");
    rep.line("degrades because BIRCH's threshold heuristic overshoots (fewer CFs than asked).");
    rep.finish(Some(&rows))
}

/// Figure 15: bubble variants on DS2 at factor 1,000.
pub fn run_fig15(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig15", &cfg.out_dir)?;
    rep.line("Figure 15: bubble variants on DS2 (excellent quality)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds2();
    let setup = ds2_setup(data.len());
    let rows = run_bubbles(&mut rep, &data, &setup, &[1_000], cfg.seed)?;
    rep.section("expectation (paper)");
    rep.line("both algorithms produce excellent results: 5 clusters, correct sizes.");
    rep.finish(Some(&rows))
}
