//! Figure 16: runtime and speed-up factors vs. compression factor on DS1
//! (paper: factors 100, 200, 1,000, 5,000; speed-ups up to 1,510 for SA
//! and 205 for CF, SA 5–7.4× faster than CF).

use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;

use crate::config::RunConfig;
use crate::experiments::common::{ds1_setup, reference_run};
use crate::report::{secs, Report};

/// Compression factors of the figure.
pub const FACTORS: [usize; 4] = [100, 200, 1_000, 5_000];

struct Row {
    factor: usize,
    k: usize,
    sa_runtime_s: f64,
    sa_speedup: f64,
    cf_runtime_s: f64,
    cf_speedup: f64,
    cf_k_actual: usize,
}

db_obs::impl_to_json!(Row {
    factor,
    k,
    sa_runtime_s,
    sa_speedup,
    cf_runtime_s,
    cf_speedup,
    cf_k_actual
});

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig16", &cfg.out_dir)?;
    rep.line("Figure 16: runtime and speed-up vs. compression factor (DS1, Bubbles pipelines)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());

    rep.section("reference: original OPTICS");
    let (_, ref_time) = reference_run(&data, &setup);
    rep.line(format!("n = {}, runtime = {}", data.len(), secs(ref_time)));

    rep.section("bubble pipelines");
    rep.line(format!(
        "{:>8} {:>8} {:>12} {:>10} {:>12} {:>10} {:>10}",
        "factor", "k", "SA time", "SA speedup", "CF time", "CF speedup", "CF k-actual"
    ));
    let mut rows = Vec::new();
    for factor in FACTORS {
        let k = (data.len() / factor).max(2);
        let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let cf = optics_cf_bubbles(&data.data, k, &BirchParams::default(), &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let sa_t = sa.timings.total().as_secs_f64();
        let cf_t = cf.timings.total().as_secs_f64();
        let row = Row {
            factor,
            k,
            sa_runtime_s: sa_t,
            sa_speedup: ref_time.as_secs_f64() / sa_t,
            cf_runtime_s: cf_t,
            cf_speedup: ref_time.as_secs_f64() / cf_t,
            cf_k_actual: cf.n_representatives,
        };
        rep.line(format!(
            "{:>8} {:>8} {:>11.3}s {:>10.1} {:>11.3}s {:>10.1} {:>10}",
            row.factor,
            row.k,
            row.sa_runtime_s,
            row.sa_speedup,
            row.cf_runtime_s,
            row.cf_speedup,
            row.cf_k_actual
        ));
        rows.push(row);
    }
    rep.section("expectation (paper)");
    rep.line("speed-up grows with the compression factor; OPTICS-SA-Bubbles is faster than");
    rep.line("OPTICS-CF-Bubbles by a roughly constant factor.");
    rep.finish(Some(&rows))
}
