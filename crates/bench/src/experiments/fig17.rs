//! Figure 17: runtime and speed-up vs. database size (random subsets of
//! DS1, compression to a fixed number of representatives). The paper's key
//! observation: the speed-up factor *grows* with the database size — the
//! method scales hierarchical cluster ordering by more than a constant.

use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;

use crate::config::RunConfig;
use crate::experiments::common::{ds1_setup, reference_run};
use crate::report::{secs, Report};

/// Fractions of DS1 used as subset sizes.
pub const FRACTIONS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

struct Row {
    n: usize,
    k: usize,
    reference_s: f64,
    sa_runtime_s: f64,
    sa_speedup: f64,
    cf_runtime_s: f64,
    cf_speedup: f64,
}

db_obs::impl_to_json!(Row {
    n,
    k,
    reference_s,
    sa_runtime_s,
    sa_speedup,
    cf_runtime_s,
    cf_speedup
});

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig17", &cfg.out_dir)?;
    rep.line("Figure 17: runtime and speed-up vs. database size (DS1 subsets, fixed k)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let full = cfg.make_ds1();
    // Fixed number of representatives, as in the paper (1,000 of 1M).
    let k = (cfg.scale.ds1_n() / 100).max(10);
    rep.line(format!("fixed k = {k}"));
    rep.line(format!(
        "{:>10} {:>12} {:>12} {:>10} {:>12} {:>10}",
        "n", "reference", "SA time", "SA speedup", "CF time", "CF speedup"
    ));

    let mut rows = Vec::new();
    for frac in FRACTIONS {
        let n = ((full.len() as f64) * frac) as usize;
        let data = full.prefix(n);
        let setup = ds1_setup(n);
        let (_, ref_time) = reference_run(&data, &setup);
        let sa = optics_sa_bubbles(&data.data, k.min(n), cfg.seed, &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let cf = optics_cf_bubbles(
            &data.data,
            k.min(n),
            &BirchParams::default(),
            &setup.bubble_optics(),
        )
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let row = Row {
            n,
            k: k.min(n),
            reference_s: ref_time.as_secs_f64(),
            sa_runtime_s: sa.timings.total().as_secs_f64(),
            sa_speedup: ref_time.as_secs_f64() / sa.timings.total().as_secs_f64(),
            cf_runtime_s: cf.timings.total().as_secs_f64(),
            cf_speedup: ref_time.as_secs_f64() / cf.timings.total().as_secs_f64(),
        };
        rep.line(format!(
            "{:>10} {:>12} {:>11.3}s {:>10.1} {:>11.3}s {:>10.1}",
            row.n,
            secs(std::time::Duration::from_secs_f64(row.reference_s)),
            row.sa_runtime_s,
            row.sa_speedup,
            row.cf_runtime_s,
            row.cf_speedup
        ));
        rows.push(row);
    }
    rep.section("expectation (paper)");
    rep.line("all methods scale ~linearly in n, and the speed-up factor grows with n");
    rep.line("(constant k); SA outperforms CF by a roughly constant factor.");
    rep.finish(Some(&rows))
}
