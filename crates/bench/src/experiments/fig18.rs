//! Figure 18: runtime and speed-up vs. dimensionality (15 random Gaussian
//! clusters; the lower-dimensional data sets are projections of the
//! higher-dimensional one, as in the paper). The paper could not run the
//! original algorithm at 20 dimensions; we likewise skip the reference run
//! beyond [`crate::config::Scale::max_reference_dim`] and report bubbles
//! only. BIRCH generates fewer CFs as the dimension grows (threshold
//! heuristic) — reported in the `CF k-actual` column.

use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;

use crate::config::RunConfig;
use crate::experiments::common::{family_setup, reference_run};
use crate::report::Report;

/// The dimensions of the figure.
pub const DIMS: [usize; 4] = [2, 5, 10, 20];

struct Row {
    dim: usize,
    reference_s: Option<f64>,
    sa_runtime_s: f64,
    sa_speedup: Option<f64>,
    cf_runtime_s: f64,
    cf_speedup: Option<f64>,
    cf_k_actual: usize,
}

db_obs::impl_to_json!(Row {
    dim,
    reference_s,
    sa_runtime_s,
    sa_speedup,
    cf_runtime_s,
    cf_speedup,
    cf_k_actual
});

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig18", &cfg.out_dir)?;
    rep.line("Figure 18: runtime and speed-up vs. dimension (15 Gaussian clusters)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let max_dim = *DIMS.last().expect("non-empty");
    let family = cfg.make_family(max_dim);
    let k = (family.len() / 100).max(10);
    rep.line(format!("n = {}, k = {k}", family.len()));
    rep.line(format!(
        "{:>5} {:>12} {:>12} {:>10} {:>12} {:>10} {:>11}",
        "dim", "reference", "SA time", "SA speedup", "CF time", "CF speedup", "CF k-actual"
    ));

    let mut rows = Vec::new();
    for dim in DIMS {
        let data = family.project(dim);
        let setup = family_setup(data.len(), dim);
        let reference = if dim <= cfg.scale.max_reference_dim() {
            let (_, t) = reference_run(&data, &setup);
            Some(t.as_secs_f64())
        } else {
            None
        };
        let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let cf = optics_cf_bubbles(&data.data, k, &BirchParams::default(), &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let sa_t = sa.timings.total().as_secs_f64();
        let cf_t = cf.timings.total().as_secs_f64();
        let row = Row {
            dim,
            reference_s: reference,
            sa_runtime_s: sa_t,
            sa_speedup: reference.map(|r| r / sa_t),
            cf_runtime_s: cf_t,
            cf_speedup: reference.map(|r| r / cf_t),
            cf_k_actual: cf.n_representatives,
        };
        let fmt_opt = |o: Option<f64>| o.map_or("n/a".to_string(), |v| format!("{v:.1}"));
        rep.line(format!(
            "{:>5} {:>12} {:>11.3}s {:>10} {:>11.3}s {:>10} {:>11}",
            row.dim,
            row.reference_s.map_or("skipped".to_string(), |v| format!("{v:.3}s")),
            row.sa_runtime_s,
            fmt_opt(row.sa_speedup),
            row.cf_runtime_s,
            fmt_opt(row.cf_speedup),
            row.cf_k_actual
        ));
        rows.push(row);
    }
    rep.section("expectation (paper)");
    rep.line("SA scales linearly with the dimension; the CF pipeline's linear factor is");
    rep.line("offset by the decreasing number of CFs BIRCH generates in higher dimensions");
    rep.line("(429 → 160 from 2-d to 20-d in the paper). The reference run is skipped at");
    rep.line("high dimension, as in the paper (out of memory there, out of time here).");
    rep.finish(Some(&rows))
}
