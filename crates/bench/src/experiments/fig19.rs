//! Figure 19: confusion matrix between original OPTICS and
//! OPTICS-SA-Bubbles on the 5-dimensional Gaussian-family database — the
//! clusters found on the compressed data correspond one-to-one to the
//! original clusters.

use std::io;

use data_bubbles::pipeline::optics_sa_bubbles;
use db_eval::{adjusted_rand_index, ConfusionMatrix};
use db_optics::extract_dbscan;

use crate::config::RunConfig;
use crate::experiments::common::{family_setup, reference_run};
use crate::report::Report;

struct Summary {
    dim: usize,
    n: usize,
    k: usize,
    diagonal_fraction: f64,
    ari_vs_reference: f64,
    ari_reference_vs_truth: f64,
    ari_bubbles_vs_truth: f64,
}

db_obs::impl_to_json!(Summary {
    dim,
    n,
    k,
    diagonal_fraction,
    ari_vs_reference,
    ari_reference_vs_truth,
    ari_bubbles_vs_truth
});

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig19", &cfg.out_dir)?;
    rep.line("Figure 19: confusion matrix OPTICS vs OPTICS-SA-Bubbles (5-d, 15 clusters)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_family(5);
    let setup = family_setup(data.len(), 5);
    let k = (data.len() / 25).max(100); // paper: 2,000 reps of 1M

    let (reference, _) = reference_run(&data, &setup);
    let ref_labels = extract_dbscan(&reference, setup.cut, data.len());

    let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let bubble_labels = sa.expanded.as_ref().unwrap().extract_dbscan(setup.cut);

    let mut m = ConfusionMatrix::from_labels(&ref_labels, &bubble_labels);
    m.reorder_rows_greedy();
    rep.section(&format!("confusion matrix (columns: OPTICS, rows: SA-Bubbles; k = {k})"));
    rep.block(m.to_string());

    let summary = Summary {
        dim: 5,
        n: data.len(),
        k,
        diagonal_fraction: m.diagonal_fraction(),
        ari_vs_reference: adjusted_rand_index(&ref_labels, &bubble_labels),
        ari_reference_vs_truth: adjusted_rand_index(&data.labels, &ref_labels),
        ari_bubbles_vs_truth: adjusted_rand_index(&data.labels, &bubble_labels),
    };
    rep.line(format!(
        "diagonal fraction = {:.4}  ARI(bubbles, reference) = {:.4}",
        summary.diagonal_fraction, summary.ari_vs_reference
    ));
    rep.line(format!(
        "ARI vs ground truth: reference = {:.4}, bubbles = {:.4}",
        summary.ari_reference_vs_truth, summary.ari_bubbles_vs_truth
    ));
    rep.section("expectation (paper)");
    rep.line("all 15 clusters correspond exactly; original noise objects are distributed");
    rep.line("over the clusters (the bubbles absorb nearby noise).");
    rep.finish(Some(&summary))
}
