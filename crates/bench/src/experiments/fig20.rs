//! Figure 20: quality w.r.t. the dimension of the database — reachability
//! plots of the original algorithm (where feasible) and of both bubble
//! variants for d ∈ {2, 5, 10, 20}; all 15 clusters must be found with the
//! correct sizes.

use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;

use crate::ascii::render_plot;
use crate::config::RunConfig;
use crate::experiments::common::{
    dents, expanded_quality, family_setup, reference_quality, reference_run,
};
use crate::experiments::fig18::DIMS;
use crate::report::Report;

struct Row {
    dim: usize,
    method: &'static str,
    ari: f64,
    clusters_found: usize,
    dents: usize,
}

db_obs::impl_to_json!(Row { dim, method, ari, clusters_found, dents });

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig20", &cfg.out_dir)?;
    rep.line("Figure 20: quality vs. dimension (15 Gaussian clusters; plots + ARI)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let max_dim = *DIMS.last().expect("non-empty");
    let family = cfg.make_family(max_dim);
    let k = (family.len() / 100).max(10);
    let mut rows = Vec::new();

    for dim in DIMS {
        let data = family.project(dim);
        let setup = family_setup(data.len(), dim);
        rep.section(&format!("dimension {dim} (cut = {:.2})", setup.cut));

        if dim <= cfg.scale.max_reference_dim() {
            let (reference, _) = reference_run(&data, &setup);
            let values = reference.reachabilities();
            let q = reference_quality(&reference, &data, setup.cut);
            rep.line(format!(
                "original: ARI = {:.3}, clusters = {}/{}",
                q.ari, q.clusters_found, q.clusters_true
            ));
            rep.block(render_plot(&values, 100, 8));
            rows.push(Row {
                dim,
                method: "original",
                ari: q.ari,
                clusters_found: q.clusters_found,
                dents: dents(&values, &setup),
            });
        } else {
            rep.line("original: skipped (as in the paper at high dimension)");
        }

        let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let sa_x = sa.expanded.as_ref().unwrap();
        let q = expanded_quality(sa_x, &data, setup.cut);
        let values = sa_x.reachabilities();
        rep.line(format!(
            "SA-Bubbles: ARI = {:.3}, clusters = {}/{}",
            q.ari, q.clusters_found, q.clusters_true
        ));
        rep.block(render_plot(&values, 100, 8));
        rows.push(Row {
            dim,
            method: "SA-Bubbles",
            ari: q.ari,
            clusters_found: q.clusters_found,
            dents: dents(&values, &setup),
        });

        let cf = optics_cf_bubbles(&data.data, k, &BirchParams::default(), &setup.bubble_optics())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let cf_x = cf.expanded.as_ref().unwrap();
        let q = expanded_quality(cf_x, &data, setup.cut);
        let values = cf_x.reachabilities();
        rep.line(format!(
            "CF-Bubbles: ARI = {:.3}, clusters = {}/{} (k actual = {})",
            q.ari, q.clusters_found, q.clusters_true, cf.n_representatives
        ));
        rep.block(render_plot(&values, 100, 8));
        rows.push(Row {
            dim,
            method: "CF-Bubbles",
            ari: q.ari,
            clusters_found: q.clusters_found,
            dents: dents(&values, &setup),
        });
    }
    rep.section("expectation (paper)");
    rep.line("both variants find all 15 clusters with correct sizes at every dimension;");
    rep.line("SA additionally reproduces the Gaussian within-cluster shape, CF less so.");
    rep.finish(Some(&rows))
}
