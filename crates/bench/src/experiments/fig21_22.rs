//! Figures 21 and 22: the real-world experiment — the Corel color-moments
//! data set (replaced by a statistically matched synthetic substitute, see
//! DESIGN.md §4): a large body of near-uniform density with two tiny dense
//! clusters. SA-Bubbles must recover both tiny clusters; the CF pipeline
//! tends to lose them. Figure 22 validates via a confusion matrix over the
//! tiny clusters.

use std::collections::HashMap;
use std::io;

use data_bubbles::pipeline::{optics_cf_bubbles, optics_sa_bubbles};
use db_birch::BirchParams;
use db_datagen::LabeledDataset;
use db_eval::ConfusionMatrix;
use db_optics::extract_dbscan;

use crate::ascii::render_plot;
use crate::config::RunConfig;
use crate::experiments::common::{corel_setup, reference_run};
use crate::report::{secs, Report};

struct Fig21Row {
    method: &'static str,
    runtime_s: f64,
    speedup: Option<f64>,
    k_actual: usize,
    tiny_clusters_recovered: usize,
}

db_obs::impl_to_json!(Fig21Row { method, runtime_s, speedup, k_actual, tiny_clusters_recovered });

/// How many of the ground-truth tiny clusters are recovered by `labels`:
/// a tiny cluster counts as recovered when ≥ 80% of its members share one
/// extracted cluster label that contains ≤ 3× the tiny cluster's size.
fn tiny_clusters_recovered(labels: &[i32], data: &LabeledDataset) -> usize {
    let mut extracted_sizes: HashMap<i32, usize> = HashMap::new();
    for &l in labels {
        if l >= 0 {
            *extracted_sizes.entry(l).or_insert(0) += 1;
        }
    }
    let mut recovered = 0usize;
    for truth in 0..data.n_clusters() as i32 {
        let members: Vec<usize> = (0..data.len()).filter(|&i| data.labels[i] == truth).collect();
        if members.is_empty() {
            continue;
        }
        let mut votes: HashMap<i32, usize> = HashMap::new();
        for &i in &members {
            if labels[i] >= 0 {
                *votes.entry(labels[i]).or_insert(0) += 1;
            }
        }
        if let Some((&label, &count)) = votes.iter().max_by_key(|&(_, &c)| c) {
            let coverage = count as f64 / members.len() as f64;
            let purity_bound = extracted_sizes[&label] <= members.len() * 3;
            if coverage >= 0.8 && purity_bound {
                recovered += 1;
            }
        }
    }
    recovered
}

fn k_for(data: &LabeledDataset) -> usize {
    // Paper: 1,000 representatives of 68,040 (compression factor 68).
    (data.len() / 68).max(10)
}

/// Figure 21: runtimes and plots on the Corel substitute.
pub fn run_fig21(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig21", &cfg.out_dir)?;
    rep.line("Figure 21: Corel color-moments substitute (68,040 x 9-d; two tiny clusters)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_corel();
    let setup = corel_setup(data.len());
    let k = k_for(&data);
    rep.line(format!(
        "n = {}, k = {k}, eps = {}, MinPts = {}",
        data.len(),
        setup.eps,
        setup.min_pts
    ));

    let mut rows = Vec::new();

    rep.section("original OPTICS");
    let (reference, ref_time) = reference_run(&data, &setup);
    let ref_labels = extract_dbscan(&reference, setup.cut, data.len());
    let ref_rec = tiny_clusters_recovered(&ref_labels, &data);
    rep.line(format!("runtime = {}, tiny clusters recovered = {ref_rec}/2", secs(ref_time)));
    rep.block(render_plot(&reference.reachabilities(), 100, 10));
    rows.push(Fig21Row {
        method: "original",
        runtime_s: ref_time.as_secs_f64(),
        speedup: None,
        k_actual: data.len(),
        tiny_clusters_recovered: ref_rec,
    });

    rep.section("OPTICS-CF-Bubbles");
    let cf = optics_cf_bubbles(&data.data, k, &BirchParams::default(), &setup.bubble_optics())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let cf_x = cf.expanded.as_ref().unwrap();
    let cf_labels = cf_x.extract_dbscan(setup.cut);
    let cf_rec = tiny_clusters_recovered(&cf_labels, &data);
    rep.line(format!(
        "runtime = {}, speed-up = {:.0}, k actual = {}, tiny clusters recovered = {cf_rec}/2",
        secs(cf.timings.total()),
        ref_time.as_secs_f64() / cf.timings.total().as_secs_f64(),
        cf.n_representatives
    ));
    rep.block(render_plot(&cf_x.reachabilities(), 100, 10));
    rows.push(Fig21Row {
        method: "CF-Bubbles",
        runtime_s: cf.timings.total().as_secs_f64(),
        speedup: Some(ref_time.as_secs_f64() / cf.timings.total().as_secs_f64()),
        k_actual: cf.n_representatives,
        tiny_clusters_recovered: cf_rec,
    });

    rep.section("OPTICS-SA-Bubbles");
    let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let sa_x = sa.expanded.as_ref().unwrap();
    let sa_labels = sa_x.extract_dbscan(setup.cut);
    let sa_rec = tiny_clusters_recovered(&sa_labels, &data);
    rep.line(format!(
        "runtime = {}, speed-up = {:.0}, tiny clusters recovered = {sa_rec}/2",
        secs(sa.timings.total()),
        ref_time.as_secs_f64() / sa.timings.total().as_secs_f64(),
    ));
    rep.block(render_plot(&sa_x.reachabilities(), 100, 10));
    rows.push(Fig21Row {
        method: "SA-Bubbles",
        runtime_s: sa.timings.total().as_secs_f64(),
        speedup: Some(ref_time.as_secs_f64() / sa.timings.total().as_secs_f64()),
        k_actual: sa.n_representatives,
        tiny_clusters_recovered: sa_rec,
    });

    rep.section("expectation (paper)");
    rep.line("the data has no significant structure apart from two tiny clusters;");
    rep.line("SA-Bubbles recovers both, CF-Bubbles approximates the general structure but");
    rep.line("loses the tiny clusters (BIRCH merges them into coarse CFs).");
    rep.finish(Some(&rows))
}

/// Figure 22: confusion matrix over the two tiny clusters (original vs
/// SA-Bubbles), restricted — as in the paper — to the cluster objects.
pub fn run_fig22(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig22", &cfg.out_dir)?;
    rep.line("Figure 22: confusion matrix over the two tiny Corel clusters");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_corel();
    let setup = corel_setup(data.len());
    let k = k_for(&data);

    // The paper extracts the two clusters manually from the plots; we
    // restrict to extracted clusters in the ground-truth size bracket
    // (tiny/2 .. 3*tiny), which drops both the dominant background and its
    // micro-pockets.
    let tiny = data.cluster_sizes().iter().copied().max().unwrap_or(1);
    let (reference, _) = reference_run(&data, &setup);
    let ref_labels = restrict_to_small_clusters(
        &extract_dbscan(&reference, setup.cut, data.len()),
        tiny / 2,
        tiny * 3,
    );
    let sa = optics_sa_bubbles(&data.data, k, cfg.seed, &setup.bubble_optics())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let sa_labels = restrict_to_small_clusters(
        &sa.expanded.as_ref().unwrap().extract_dbscan(setup.cut),
        tiny / 2,
        tiny * 3,
    );

    let mut m = ConfusionMatrix::from_labels(&ref_labels, &sa_labels);
    m.reorder_rows_greedy();
    rep.section("confusion matrix (columns: OPTICS, rows: OPTICS-SA-Bubbles)");
    rep.block(m.to_string());
    rep.line(format!("diagonal fraction = {:.4}", m.diagonal_fraction()));
    rep.section("expectation (paper)");
    rep.line("the clusters are well preserved: no objects switch from one cluster to the");
    rep.line("other; only border objects move between cluster and noise.");

    struct Summary {
        diagonal_fraction: f64,
    }

    db_obs::impl_to_json!(Summary { diagonal_fraction });
    rep.finish(Some(&Summary { diagonal_fraction: m.diagonal_fraction() }))
}

/// Keeps only labels of clusters whose size lies in `[min_size, max_size]`
/// (the tiny clusters); everything else becomes noise. This mirrors the
/// paper's manual extraction of the two clusters from the plots.
fn restrict_to_small_clusters(labels: &[i32], min_size: usize, max_size: usize) -> Vec<i32> {
    let mut sizes: HashMap<i32, usize> = HashMap::new();
    for &l in labels {
        if l >= 0 {
            *sizes.entry(l).or_insert(0) += 1;
        }
    }
    labels
        .iter()
        .map(|&l| if l >= 0 && (min_size..=max_size).contains(&sizes[&l]) { l } else { -1 })
        .collect()
}
