//! Figure 4: DS1 and DS2 with their original-OPTICS reachability plots and
//! runtimes (the reference every other figure compares against).

use std::io;

use crate::ascii::render_plot;
use crate::config::RunConfig;
use crate::experiments::common::{dents, ds1_setup, ds2_setup, reference_quality, reference_run};
use crate::report::{secs, Report};

struct Row {
    dataset: &'static str,
    n: usize,
    runtime_s: f64,
    dents: usize,
    clusters_true: usize,
    ari: f64,
}

db_obs::impl_to_json!(Row { dataset, n, runtime_s, dents, clusters_true, ari });

/// Runs the figure.
pub fn run(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig4", &cfg.out_dir)?;
    rep.line("Figure 4: original OPTICS on DS1 and DS2 (reference plots + runtimes)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let mut rows = Vec::new();

    for (name, data, setup) in [
        ("DS1", cfg.make_ds1(), ds1_setup(cfg.scale.ds1_n())),
        ("DS2", cfg.make_ds2(), ds2_setup(cfg.scale.ds2_n())),
    ] {
        rep.section(&format!(
            "{name}: n = {}, eps = {:.3}, MinPts = {}, cut = {:.3}",
            data.len(),
            setup.eps,
            setup.min_pts,
            setup.cut
        ));
        let (ordering, runtime) = reference_run(&data, &setup);
        let values = ordering.reachabilities();
        rep.block(render_plot(&values, 100, 12));
        let q = reference_quality(&ordering, &data, setup.cut);
        let d = dents(&values, &setup);
        rep.line(format!(
            "runtime = {}  dents = {d}  clusters(extracted/true) = {}/{}  ARI = {:.3}",
            secs(runtime),
            q.clusters_found,
            q.clusters_true,
            q.ari
        ));
        rows.push(Row {
            dataset: name,
            n: data.len(),
            runtime_s: runtime.as_secs_f64(),
            dents: d,
            clusters_true: q.clusters_true,
            ari: q.ari,
        });
    }
    rep.finish(Some(&rows))
}
