//! Figures 6 and 7: the *naive* application of OPTICS to random samples and
//! to CF centers — demonstrating structural distortion (Fig. 6, DS1 at
//! three compression factors) and size distortion (Fig. 7, DS2).

use std::io;

use data_bubbles::pipeline::{optics_cf_naive, optics_sa_naive, PipelineOutput};
use db_birch::BirchParams;
use db_datagen::LabeledDataset;
use db_eval::count_dents;

use crate::ascii::render_plot;
use crate::config::RunConfig;
use crate::experiments::common::{adaptive_cut, ds1_setup, ds2_setup, k_for, Setup};
use crate::report::{secs, Report};

/// The compression factors of Fig. 6 (paper: 10,000 / 1,000 / 200
/// representatives of 1M = factors 100 / 1,000 / 5,000).
pub const FIG6_FACTORS: [usize; 3] = [100, 1_000, 5_000];

struct Row {
    method: &'static str,
    factor: usize,
    k_requested: usize,
    k_actual: usize,
    dents: usize,
    runtime_s: f64,
}

db_obs::impl_to_json!(Row { method, factor, k_requested, k_actual, dents, runtime_s });

fn report_naive(
    rep: &mut Report,
    rows: &mut Vec<Row>,
    method: &'static str,
    out: &PipelineOutput,
    setup: &Setup,
    factor: usize,
    k: usize,
) {
    let values = out.rep_ordering.reachabilities();
    rep.line(format!(
        "{method}: k requested = {k}, k actual = {}, pipeline runtime = {}",
        out.n_representatives,
        secs(out.timings.total())
    ));
    rep.block(render_plot(&values, 100, 10));
    // The naive plots are on the representative scale; use the data-driven
    // cut and require dents to span at least a rep-space MinPts run.
    let min_len = setup.rep_optics(out.n_representatives).min_pts.max(2);
    let d = count_dents(&values, adaptive_cut(&values), min_len);
    rep.line(format!("dents at adaptive cut = {d}"));
    rows.push(Row {
        method,
        factor,
        k_requested: k,
        k_actual: out.n_representatives,
        dents: d,
        runtime_s: out.timings.total().as_secs_f64(),
    });
}

fn run_dataset(
    rep: &mut Report,
    data: &LabeledDataset,
    setup: &Setup,
    factors: &[usize],
    seed: u64,
) -> io::Result<Vec<Row>> {
    let mut rows = Vec::new();
    let n = data.len();
    for &factor in factors {
        let k = k_for(n, factor);
        rep.section(&format!("compression factor {factor} (k = {k})"));
        let sa = optics_sa_naive(&data.data, k, seed, &setup.rep_optics(k))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_naive(rep, &mut rows, "OPTICS-SA-naive", &sa, setup, factor, k);
        let cf = optics_cf_naive(&data.data, k, &BirchParams::default(), &setup.rep_optics(k))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_naive(rep, &mut rows, "OPTICS-CF-naive", &cf, setup, factor, k);
    }
    Ok(rows)
}

/// Figure 6: naive variants on DS1, three compression factors.
pub fn run_fig6(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig6", &cfg.out_dir)?;
    rep.line("Figure 6: OPTICS-SA-naive / OPTICS-CF-naive on DS1 (structural distortion)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let rows = run_dataset(&mut rep, &data, &setup, &FIG6_FACTORS, cfg.seed)?;
    rep.section("expectation (paper)");
    rep.line("quality (dent count vs. the ~10 true components) degrades as the factor grows;");
    rep.line("CF plots are worse than SA plots at every factor.");
    rep.finish(Some(&rows))
}

/// Figure 7: naive variants on DS2 at factor 1,000 (paper: 100 reps of
/// 100k) — size distortion.
pub fn run_fig7(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig7", &cfg.out_dir)?;
    rep.line("Figure 7: naive variants on DS2 (size distortion; 5 equal clusters)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds2();
    let setup = ds2_setup(data.len());
    let rows = run_dataset(&mut rep, &data, &setup, &[1_000], cfg.seed)?;
    rep.section("expectation (paper)");
    rep.line("5 clusters survive for SA (CF may lose one), but their plotted sizes are");
    rep.line("distorted: each cluster is ~k/5 positions instead of n/5.");
    rep.finish(Some(&rows))
}
