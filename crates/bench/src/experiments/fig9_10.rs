//! Figures 9 and 10: the *weighted* variants (§5 post-processing). Size
//! distortion and lost objects are fixed — every original object appears
//! with the right multiplicity — but the structural distortion remains
//! (Fig. 9); on the well-separated DS2 the result is already good (Fig. 10).

use std::io;

use data_bubbles::pipeline::{optics_cf_weighted, optics_sa_weighted, PipelineOutput};
use db_birch::BirchParams;
use db_datagen::LabeledDataset;
use db_eval::adjusted_rand_index;

use crate::ascii::render_plot;
use crate::config::RunConfig;
use crate::experiments::common::{
    adaptive_cut, ds1_setup, ds2_setup, expanded_quality, k_for, Setup,
};
use crate::report::{secs, Report};

pub(crate) struct Row {
    pub method: &'static str,
    pub factor: usize,
    pub k_actual: usize,
    pub ari: f64,
    pub ari_vs_reference: Option<f64>,
    pub clusters_found: usize,
    pub clusters_true: usize,
    pub dents: usize,
    pub runtime_s: f64,
}

db_obs::impl_to_json!(Row {
    method,
    factor,
    k_actual,
    ari,
    ari_vs_reference,
    clusters_found,
    clusters_true,
    dents,
    runtime_s
});

/// Reports one expanded (weighted or bubble) pipeline result.
///
/// `cut`: `Some(level)` extracts at a fixed point-scale level (bubble
/// variants — their virtual reachabilities live on the original distance
/// scale); `None` uses the data-driven [`adaptive_cut`] (weighted variants,
/// whose plots carry representative-scale values).
#[allow(clippy::too_many_arguments)]
pub(crate) fn report_expanded(
    rep: &mut Report,
    rows: &mut Vec<Row>,
    method: &'static str,
    out: &PipelineOutput,
    data: &LabeledDataset,
    setup: &Setup,
    factor: usize,
    cut: Option<f64>,
    ref_labels: Option<&[i32]>,
) {
    let expanded = out.expanded.as_ref().expect("weighted/bubble pipelines expand");
    let values = expanded.reachabilities();
    let cut = cut.unwrap_or_else(|| adaptive_cut(&values));
    rep.line(format!(
        "{method}: k actual = {}, pipeline runtime = {}, cut = {:.3}",
        out.n_representatives,
        secs(out.timings.total()),
        cut
    ));
    rep.block(render_plot(&values, 100, 10));
    let q = expanded_quality(expanded, data, cut);
    let d = db_eval::count_dents(&values, cut, setup.min_pts);
    let ari_vs_reference = ref_labels.map(|r| {
        let labels = expanded.extract_dbscan(cut);
        adjusted_rand_index(r, &labels)
    });
    match ari_vs_reference {
        Some(vs_ref) => rep.line(format!(
            "ARI vs truth = {:.3}  ARI vs reference = {:.3}  clusters = {}/{}  dents = {d}",
            q.ari, vs_ref, q.clusters_found, q.clusters_true
        )),
        None => rep.line(format!(
            "ARI vs truth = {:.3}  clusters = {}/{}  dents = {d}",
            q.ari, q.clusters_found, q.clusters_true
        )),
    }
    rows.push(Row {
        method,
        factor,
        k_actual: out.n_representatives,
        ari: q.ari,
        ari_vs_reference,
        clusters_found: q.clusters_found,
        clusters_true: q.clusters_true,
        dents: d,
        runtime_s: out.timings.total().as_secs_f64(),
    });
}

fn run_weighted(
    rep: &mut Report,
    data: &LabeledDataset,
    setup: &Setup,
    factors: &[usize],
    seed: u64,
) -> io::Result<Vec<Row>> {
    let mut rows = Vec::new();
    let n = data.len();
    for &factor in factors {
        let k = k_for(n, factor);
        rep.section(&format!("compression factor {factor} (k = {k})"));
        let sa = optics_sa_weighted(&data.data, k, seed, &setup.rep_optics(k))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_expanded(rep, &mut rows, "OPTICS-SA-weighted", &sa, data, setup, factor, None, None);
        let cf = optics_cf_weighted(&data.data, k, &BirchParams::default(), &setup.rep_optics(k))
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        report_expanded(rep, &mut rows, "OPTICS-CF-weighted", &cf, data, setup, factor, None, None);
    }
    Ok(rows)
}

/// Figure 9: weighted variants on DS1, three compression factors.
pub fn run_fig9(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig9", &cfg.out_dir)?;
    rep.line("Figure 9: OPTICS-SA/CF-weighted on DS1 (structural distortion persists)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds1();
    let setup = ds1_setup(data.len());
    let rows =
        run_weighted(&mut rep, &data, &setup, &crate::experiments::fig6_7::FIG6_FACTORS, cfg.seed)?;
    rep.section("expectation (paper)");
    rep.line("all objects reappear (sizes fixed) but plots still look like the naive ones at");
    rep.line("high factors: the weighted reachabilities cannot recover the lost structure.");
    rep.finish(Some(&rows))
}

/// Figure 10: weighted variants on DS2 at factor 1,000.
pub fn run_fig10(cfg: &RunConfig) -> io::Result<()> {
    let mut rep = Report::new("fig10", &cfg.out_dir)?;
    rep.line("Figure 10: weighted variants on DS2 (size distortion solved)");
    rep.line(format!("scale = {:?}", cfg.scale));
    let data = cfg.make_ds2();
    let setup = ds2_setup(data.len());
    let rows = run_weighted(&mut rep, &data, &setup, &[1_000], cfg.seed)?;
    // Cluster-size recovery: the paper's point is that the five clusters
    // now have the *correct sizes* in the expanded plot.
    rep.section("cluster sizes (truth: 5 × 20%)");
    let k = k_for(data.len(), 1_000);
    let sa = optics_sa_weighted(&data.data, k, cfg.seed, &setup.rep_optics(k))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
    let expanded = sa.expanded.as_ref().unwrap();
    let cut = adaptive_cut(&expanded.reachabilities());
    let labels = expanded.extract_dbscan(cut);
    let mut sizes = std::collections::HashMap::new();
    for &l in &labels {
        if l >= 0 {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
    }
    let mut sizes: Vec<usize> = sizes.into_values().collect();
    sizes.sort_unstable();
    rep.line(format!(
        "SA-weighted extracted sizes: {:?} (fractions {:?})",
        sizes,
        sizes.iter().map(|&s| format!("{:.2}", s as f64 / data.len() as f64)).collect::<Vec<_>>()
    ));
    rep.finish(Some(&rows))
}
