//! One module per figure of the paper's evaluation, plus ablations.

pub mod ablations;
pub mod common;
pub mod extensions;
pub mod fig14_15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21_22;
pub mod fig4;
pub mod fig6_7;
pub mod fig9_10;
