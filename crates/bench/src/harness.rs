//! A small timing harness for the `benches/` targets (which run with
//! `harness = false`): warm up, sample `n` runs, report min / median /
//! mean wall-clock per iteration as a text table.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One benchmark group: a titled table of timed closures.
#[derive(Debug)]
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// Starts a group; `samples` runs are timed per benchmark (after one
    /// warm-up run).
    pub fn new(name: &str, samples: usize) -> Self {
        assert!(samples >= 1);
        println!("\n== {name} ==");
        println!("{:<28} {:>12} {:>12} {:>12}", "benchmark", "min", "median", "mean");
        Self { name: name.to_string(), samples }
    }

    /// Times `f` and prints one table row. The closure's return value is
    /// passed through `black_box` so the work is not optimized away.
    pub fn bench<T>(&self, label: &str, mut f: impl FnMut() -> T) {
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        black_box(f()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<28} {:>12} {:>12} {:>12}",
            label,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(mean)
        );
    }

    /// The group name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Formats a duration with an adaptive unit.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_duration_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }

    #[test]
    fn bench_runs_closure() {
        let g = Group::new("test", 3);
        let mut count = 0;
        g.bench("noop", || count += 1);
        assert_eq!(count, 4); // 1 warm-up + 3 samples
        assert_eq!(g.name(), "test");
    }
}
