//! The experiment harness of the Data Bubbles reproduction.
//!
//! The paper's evaluation consists of Figures 4, 6, 7, 9, 10 and 14–22
//! (there are no numbered tables). For each figure this crate provides a
//! runner that regenerates the figure's rows/series — reachability plots
//! are rendered as ASCII sparkline panels, runtime figures as text tables —
//! and writes them under `results/`.
//!
//! Run everything with
//!
//! ```text
//! cargo run --release -p db-bench --bin figures -- all
//! ```
//!
//! or a single figure with `-- fig16`, at a different scale with
//! `-- --scale quick all` (see [`config::Scale`]). Benches mirroring the
//! runtime figures live in `benches/` (run with `cargo bench -p db-bench`).

#![warn(missing_docs)]

pub mod ascii;
pub mod config;
pub mod diff;
pub mod experiments;
pub mod harness;
pub mod report;
pub mod telemetry;

use std::io;

use config::RunConfig;

/// All figure ids known to the harness, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig4",
    "fig6",
    "fig7",
    "fig9",
    "fig10",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "ablations",
    "ext_compressors",
    "ext_hierarchy",
];

/// Runs one figure by id. Returns an error for unknown ids.
pub fn run_figure(id: &str, cfg: &RunConfig) -> io::Result<()> {
    match id {
        "fig4" => experiments::fig4::run(cfg),
        "fig6" => experiments::fig6_7::run_fig6(cfg),
        "fig7" => experiments::fig6_7::run_fig7(cfg),
        "fig9" => experiments::fig9_10::run_fig9(cfg),
        "fig10" => experiments::fig9_10::run_fig10(cfg),
        "fig14" => experiments::fig14_15::run_fig14(cfg),
        "fig15" => experiments::fig14_15::run_fig15(cfg),
        "fig16" => experiments::fig16::run(cfg),
        "fig17" => experiments::fig17::run(cfg),
        "fig18" => experiments::fig18::run(cfg),
        "fig19" => experiments::fig19::run(cfg),
        "fig20" => experiments::fig20::run(cfg),
        "fig21" => experiments::fig21_22::run_fig21(cfg),
        "fig22" => experiments::fig21_22::run_fig22(cfg),
        "ablations" => experiments::ablations::run(cfg),
        "ext_compressors" => experiments::extensions::run_compressors(cfg),
        "ext_hierarchy" => experiments::extensions::run_hierarchy(cfg),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("unknown figure id '{other}'; known: {}", ALL_FIGURES.join(", ")),
        )),
    }
}
