//! Report files: each figure writes a plain-text report (tables + ASCII
//! plots) plus an optional machine-readable JSON series under the output
//! directory.

use std::fs;
use std::io::{self, Write};
use std::path::PathBuf;

use db_obs::ToJson;

/// A report under construction for one figure.
#[derive(Debug)]
pub struct Report {
    id: String,
    out_dir: PathBuf,
    text: String,
}

impl Report {
    /// Starts a report for figure `id`, creating the output directory.
    pub fn new(id: &str, out_dir: &std::path::Path) -> io::Result<Self> {
        fs::create_dir_all(out_dir)?;
        Ok(Self { id: id.to_string(), out_dir: out_dir.to_path_buf(), text: String::new() })
    }

    /// Appends a line (also echoed to stdout so runs are observable).
    pub fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        println!("{s}");
        self.text.push_str(s);
        self.text.push('\n');
    }

    /// Appends a preformatted block (echoed to stdout).
    pub fn block(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        print!("{s}");
        if !s.ends_with('\n') {
            println!();
        }
        self.text.push_str(s);
        if !s.ends_with('\n') {
            self.text.push('\n');
        }
    }

    /// Appends a section header.
    pub fn section(&mut self, title: &str) {
        self.line(String::new());
        self.line(format!("== {title} =="));
    }

    /// Writes `<id>.txt` and, when `series` is given, `<id>.json`.
    pub fn finish<S: ToJson>(self, series: Option<&S>) -> io::Result<()> {
        let txt_path = self.out_dir.join(format!("{}.txt", self.id));
        let mut f = fs::File::create(&txt_path)?;
        f.write_all(self.text.as_bytes())?;
        if let Some(series) = series {
            let json_path = self.out_dir.join(format!("{}.json", self.id));
            fs::write(json_path, series.to_json().render_pretty())?;
        }
        Ok(())
    }
}

/// Formats a `Duration` as fractional seconds.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Row {
        x: u32,
    }

    db_obs::impl_to_json!(Row { x });

    #[test]
    fn report_round_trip() {
        let dir = std::env::temp_dir().join(format!("db-bench-test-{}", std::process::id()));
        let mut r = Report::new("figtest", &dir).unwrap();
        r.section("hello");
        r.line("value = 1");
        r.block("###\n   \n");
        r.finish(Some(&vec![Row { x: 1 }])).unwrap();
        let txt = std::fs::read_to_string(dir.join("figtest.txt")).unwrap();
        assert!(txt.contains("== hello =="));
        assert!(txt.contains("value = 1"));
        assert!(txt.contains("###"));
        let json = std::fs::read_to_string(dir.join("figtest.json")).unwrap();
        assert!(json.contains("\"x\": 1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
