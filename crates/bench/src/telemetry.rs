//! Shared `--trace-out` / `--serve` support for the benchmark binaries.
//!
//! Both `figures` and `paper_pipelines` accept
//!
//! ```text
//! --trace-out <path>      write the run's trace as Chrome trace JSON
//! --serve <addr>          serve /metrics, /trace, /healthz while running
//! --serve-linger <secs>   keep serving this long after the work finishes
//! ```
//!
//! `--trace-out` turns event recording on for the process (equivalent to
//! `DB_TRACE=1`, which also works); `--serve` starts a
//! [`db_obsd::TelemetryServer`] before the workload and shuts it down
//! after the optional linger window, so CI smoke tests can scrape a
//! finished run deterministically.

use std::path::PathBuf;
use std::time::Duration;

use db_obsd::TelemetryServer;

/// Telemetry options parsed from the command line.
#[derive(Debug, Default, Clone)]
pub struct TelemetryOptions {
    /// Where to write the Chrome trace JSON, if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Listen address for the live endpoint, e.g. `127.0.0.1:9184`.
    pub serve: Option<String>,
    /// How long to keep serving after the workload completes.
    pub linger: Duration,
}

impl TelemetryOptions {
    /// Tries to consume one telemetry flag. Returns `Ok(true)` when `arg`
    /// was one (its value, if any, is taken from `args`), `Ok(false)` when
    /// it is not a telemetry flag, and `Err` with a usage message when a
    /// required value is missing or malformed.
    pub fn consume_arg(
        &mut self,
        arg: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, String> {
        match arg {
            "--trace-out" => {
                let v = args.next().ok_or("--trace-out needs a file path")?;
                self.trace_out = Some(PathBuf::from(v));
                Ok(true)
            }
            "--serve" => {
                let v = args.next().ok_or("--serve needs an address, e.g. 127.0.0.1:9184")?;
                self.serve = Some(v);
                Ok(true)
            }
            "--serve-linger" => {
                let v = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--serve-linger needs a whole number of seconds")?;
                self.linger = Duration::from_secs(v);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Starts whatever the options ask for. Call before the workload; pass
    /// the result to [`Telemetry::finish`] afterwards.
    ///
    /// # Errors
    ///
    /// A human-readable message when the serve address cannot be bound
    /// (e.g. the port is in use) — callers should print it and exit
    /// nonzero rather than panic.
    pub fn start(&self) -> Result<Telemetry, String> {
        let server = match &self.serve {
            Some(addr) => {
                let server = TelemetryServer::start(addr).map_err(|e| e.to_string())?;
                eprintln!(
                    "telemetry: serving /metrics /trace /healthz on http://{}",
                    server.addr()
                );
                Some(server)
            }
            None => None,
        };
        if self.trace_out.is_some() {
            db_obs::trace::set_enabled(true);
        }
        Ok(Telemetry { server, trace_out: self.trace_out.clone(), linger: self.linger })
    }
}

/// Live telemetry state for one benchmark process.
#[derive(Debug)]
pub struct Telemetry {
    server: Option<TelemetryServer>,
    trace_out: Option<PathBuf>,
    linger: Duration,
}

impl Telemetry {
    /// Writes the trace file (when requested), serves out the linger
    /// window, and shuts the server down.
    ///
    /// # Errors
    ///
    /// A human-readable message when the trace file cannot be written.
    pub fn finish(mut self) -> Result<(), String> {
        if let Some(path) = &self.trace_out {
            let json = db_obs::trace_json(&db_obs::trace::events());
            std::fs::write(path, &json)
                .map_err(|e| format!("could not write {}: {e}", path.display()))?;
            eprintln!("telemetry: wrote {} ({} bytes)", path.display(), json.len());
        }
        if let Some(server) = &mut self.server {
            if !self.linger.is_zero() {
                eprintln!("telemetry: lingering {:?} before shutdown", self.linger);
                std::thread::sleep(self.linger);
            }
            server.shutdown();
        }
        Ok(())
    }
}
