//! Shared `--trace-out` / `--serve` support for the benchmark binaries.
//!
//! Both `figures` and `paper_pipelines` accept
//!
//! ```text
//! --trace-out <path>      write the run's trace as Chrome trace JSON
//! --serve <addr>          serve /metrics, /trace, /healthz while running
//! --serve-linger <secs>   keep serving this long after the work finishes
//! ```
//!
//! `--trace-out` turns event recording on for the process (equivalent to
//! `DB_TRACE=1`, which also works); `--serve` starts a
//! [`db_obsd::TelemetryServer`] before the workload and shuts it down
//! after the optional linger window, so CI smoke tests can scrape a
//! finished run deterministically.

use std::fmt;
use std::path::PathBuf;
use std::time::Duration;

use db_obsd::{ObsdError, TelemetryServer};

/// Everything the telemetry plumbing can fail on — flag parsing, binding
/// the serve address, writing the trace file. Typed so the benchmark
/// binaries exit nonzero with a clear message instead of panicking.
#[derive(Debug)]
pub enum TelemetryError {
    /// A flag that requires a value appeared last on the command line.
    MissingValue {
        /// The flag, e.g. `--serve`.
        flag: &'static str,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// A flag's value did not parse.
    BadValue {
        /// The flag, e.g. `--serve-linger`.
        flag: &'static str,
        /// The value as given.
        value: String,
        /// What a valid value looks like.
        expected: &'static str,
    },
    /// The live endpoint could not start (e.g. address already in use).
    Serve(ObsdError),
    /// The `--trace-out` file could not be written.
    TraceWrite {
        /// The requested output path.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::MissingValue { flag, expected } => {
                write!(f, "{flag} needs {expected}")
            }
            TelemetryError::BadValue { flag, value, expected } => {
                write!(f, "{flag} got {value:?} but needs {expected}")
            }
            TelemetryError::Serve(e) => write!(f, "{e}"),
            TelemetryError::TraceWrite { path, source } => {
                write!(f, "could not write {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for TelemetryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TelemetryError::Serve(e) => Some(e),
            TelemetryError::TraceWrite { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Telemetry options parsed from the command line.
#[derive(Debug, Default, Clone)]
pub struct TelemetryOptions {
    /// Where to write the Chrome trace JSON, if anywhere.
    pub trace_out: Option<PathBuf>,
    /// Listen address for the live endpoint, e.g. `127.0.0.1:9184`.
    pub serve: Option<String>,
    /// How long to keep serving after the workload completes.
    pub linger: Duration,
}

impl TelemetryOptions {
    /// Tries to consume one telemetry flag. Returns `Ok(true)` when `arg`
    /// was one (its value, if any, is taken from `args`), `Ok(false)` when
    /// it is not a telemetry flag, and a typed [`TelemetryError`] when a
    /// required value is missing or malformed.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::MissingValue`] / [`TelemetryError::BadValue`].
    pub fn consume_arg(
        &mut self,
        arg: &str,
        args: &mut impl Iterator<Item = String>,
    ) -> Result<bool, TelemetryError> {
        match arg {
            "--trace-out" => {
                let v = args.next().ok_or(TelemetryError::MissingValue {
                    flag: "--trace-out",
                    expected: "a file path",
                })?;
                self.trace_out = Some(PathBuf::from(v));
                Ok(true)
            }
            "--serve" => {
                let v = args.next().ok_or(TelemetryError::MissingValue {
                    flag: "--serve",
                    expected: "an address, e.g. 127.0.0.1:9184",
                })?;
                self.serve = Some(v);
                Ok(true)
            }
            "--serve-linger" => {
                let raw = args.next().ok_or(TelemetryError::MissingValue {
                    flag: "--serve-linger",
                    expected: "a whole number of seconds",
                })?;
                let v = raw.parse::<u64>().map_err(|_| TelemetryError::BadValue {
                    flag: "--serve-linger",
                    value: raw,
                    expected: "a whole number of seconds",
                })?;
                self.linger = Duration::from_secs(v);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// Starts whatever the options ask for. Call before the workload; pass
    /// the result to [`Telemetry::finish`] afterwards.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::Serve`] when the serve address cannot be bound
    /// (e.g. the port is in use) — callers should print it and exit
    /// nonzero rather than panic.
    pub fn start(&self) -> Result<Telemetry, TelemetryError> {
        let server = match &self.serve {
            Some(addr) => {
                let server = TelemetryServer::start(addr).map_err(TelemetryError::Serve)?;
                eprintln!(
                    "telemetry: serving /metrics /trace /healthz on http://{}",
                    server.addr()
                );
                Some(server)
            }
            None => None,
        };
        if self.trace_out.is_some() {
            db_obs::trace::set_enabled(true);
        }
        Ok(Telemetry { server, trace_out: self.trace_out.clone(), linger: self.linger })
    }
}

/// Live telemetry state for one benchmark process.
#[derive(Debug)]
pub struct Telemetry {
    server: Option<TelemetryServer>,
    trace_out: Option<PathBuf>,
    linger: Duration,
}

impl Telemetry {
    /// Writes the trace file (when requested), serves out the linger
    /// window, and shuts the server down.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::TraceWrite`] when the trace file cannot be
    /// written.
    pub fn finish(mut self) -> Result<(), TelemetryError> {
        if let Some(path) = &self.trace_out {
            let json = db_obs::trace_json(&db_obs::trace::events());
            std::fs::write(path, &json)
                .map_err(|source| TelemetryError::TraceWrite { path: path.clone(), source })?;
            eprintln!("telemetry: wrote {} ({} bytes)", path.display(), json.len());
        }
        if let Some(server) = &mut self.server {
            if !self.linger.is_zero() {
                eprintln!("telemetry: lingering {:?} before shutdown", self.linger);
                std::thread::sleep(self.linger);
            }
            server.shutdown();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consume(cli: &[&str]) -> Result<TelemetryOptions, TelemetryError> {
        let mut opts = TelemetryOptions::default();
        let mut args = cli.iter().map(|s| (*s).to_string());
        while let Some(arg) = args.next() {
            opts.consume_arg(&arg, &mut args)?;
        }
        Ok(opts)
    }

    #[test]
    fn parses_all_flags() {
        let opts =
            consume(&["--trace-out", "t.json", "--serve", "127.0.0.1:0", "--serve-linger", "3"])
                .expect("valid flags");
        assert_eq!(opts.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
        assert_eq!(opts.serve.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(opts.linger, Duration::from_secs(3));
    }

    #[test]
    fn non_telemetry_flags_are_left_alone() {
        let mut opts = TelemetryOptions::default();
        let mut args = std::iter::empty();
        assert!(matches!(opts.consume_arg("--scale", &mut args), Ok(false)));
    }

    #[test]
    fn missing_values_are_typed_errors() {
        for flag in ["--trace-out", "--serve", "--serve-linger"] {
            match consume(&[flag]) {
                Err(TelemetryError::MissingValue { flag: f, .. }) => assert_eq!(f, flag),
                other => panic!("{flag}: expected MissingValue, got {other:?}"),
            }
        }
    }

    #[test]
    fn malformed_linger_is_a_typed_error_that_names_the_value() {
        match consume(&["--serve-linger", "soon"]) {
            Err(e @ TelemetryError::BadValue { flag, .. }) => {
                assert_eq!(flag, "--serve-linger");
                let msg = e.to_string();
                assert!(msg.contains("soon"), "message should quote the value: {msg}");
            }
            other => panic!("expected BadValue, got {other:?}"),
        }
    }

    #[test]
    fn unbindable_serve_address_is_a_typed_error() {
        let opts = consume(&["--serve", "256.256.256.256:1"]).expect("parses fine");
        match opts.start() {
            Err(TelemetryError::Serve(_)) => {}
            other => panic!("expected Serve error, got {other:?}"),
        }
    }

    #[test]
    fn unwritable_trace_path_is_a_typed_error() {
        let opts = TelemetryOptions {
            trace_out: Some(PathBuf::from("/nonexistent-dir/trace.json")),
            ..TelemetryOptions::default()
        };
        let telemetry = opts.start().expect("no server requested");
        match telemetry.finish() {
            Err(TelemetryError::TraceWrite { path, .. }) => {
                assert_eq!(path, PathBuf::from("/nonexistent-dir/trace.json"));
            }
            other => panic!("expected TraceWrite error, got {other:?}"),
        }
    }
}
