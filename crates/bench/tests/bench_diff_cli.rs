//! End-to-end exit-code contract of the `bench-diff` binary: 0 = pass,
//! 1 = regressions, 2 = usage or load error — for *either* side of the
//! diff, and never a panic.

use std::path::PathBuf;
use std::process::Command;

fn bench_diff() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-diff"))
}

/// Writes `content` to a unique temp file and returns its path.
fn temp_json(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("bench_diff_cli_{}_{name}", std::process::id()));
    std::fs::write(&path, content).expect("write temp report");
    path
}

const OK_REPORT: &str = r#"{"bench":"t","total_s":1.0,"runs":[{"compression_s":0.4}]}"#;
const SLOW_REPORT: &str = r#"{"bench":"t","total_s":9.0,"runs":[{"compression_s":0.4}]}"#;

#[test]
fn identical_reports_exit_zero() {
    let old = temp_json("same_old.json", OK_REPORT);
    let new = temp_json("same_new.json", OK_REPORT);
    let out = bench_diff().args([&old, &new]).output().expect("run bench-diff");
    assert!(out.status.success(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn regression_exits_one() {
    let old = temp_json("reg_old.json", OK_REPORT);
    let new = temp_json("reg_new.json", SLOW_REPORT);
    let out = bench_diff().args([&old, &new]).output().expect("run bench-diff");
    assert_eq!(out.status.code(), Some(1), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "should name the regression: {stdout}");
    let _ = std::fs::remove_file(old);
    let _ = std::fs::remove_file(new);
}

#[test]
fn missing_old_file_exits_two() {
    let new = temp_json("missing_old_new.json", OK_REPORT);
    let out = bench_diff()
        .args(["/nonexistent/BENCH_old.json"])
        .arg(&new)
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("cannot read"), "should say what failed: {stderr}");
    assert!(stderr.contains("BENCH_old.json"), "should name the file: {stderr}");
    let _ = std::fs::remove_file(new);
}

#[test]
fn missing_new_file_exits_two() {
    let old = temp_json("missing_new_old.json", OK_REPORT);
    let out = bench_diff()
        .arg(&old)
        .args(["/nonexistent/BENCH_new.json"])
        .output()
        .expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("BENCH_new.json"));
    let _ = std::fs::remove_file(old);
}

#[test]
fn malformed_json_exits_two_on_either_side() {
    let good = temp_json("malformed_good.json", OK_REPORT);
    let bad = temp_json("malformed_bad.json", "{\"total_s\": oops");
    for (old, new) in [(&bad, &good), (&good, &bad)] {
        let out = bench_diff().args([old, new]).output().expect("run bench-diff");
        assert_eq!(out.status.code(), Some(2), "malformed side must exit 2");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("malformed_bad.json"), "should name the bad file: {stderr}");
    }
    let _ = std::fs::remove_file(good);
    let _ = std::fs::remove_file(bad);
}

#[test]
fn usage_errors_exit_two() {
    // No files at all.
    let out = bench_diff().output().expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    // A flag missing its value.
    let out = bench_diff().args(["--tolerance"]).output().expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2));

    // A malformed flag value.
    let out =
        bench_diff().args(["--tolerance", "lots", "a", "b"]).output().expect("run bench-diff");
    assert_eq!(out.status.code(), Some(2));
}
