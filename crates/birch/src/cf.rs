//! Clustering Features (sufficient statistics) — Definition 1 of the Data
//! Bubbles paper, originally from BIRCH — in the numerically stable
//! mean/sum-of-squared-deviations representation of BETULA (Lang &
//! Schubert, "BETULA: Numerically Stable CF-Trees for BIRCH Clustering").
//!
//! The classic `(n, LS, ss)` triple computes radius and diameter through
//! differences of large, nearly equal quantities (`ss − ‖LS‖²/n`), which
//! suffers *catastrophic cancellation* for clusters far from the origin or
//! with tiny variance: the radicand goes negative and the naive clamp to
//! zero silently collapses extents and nndists. Storing the incrementally
//! maintained **mean** and the **sum of squared deviations from the mean**
//! (`ssd = Σ‖Xᵢ − mean‖²`) instead makes every derived quantity
//! shift-invariant: translating all points by 1e8 changes `radius`,
//! `diameter`, and `merged_diameter` by at most the input quantization
//! error. The classic `LS`/`ss` views remain available as derived
//! accessors for serialization compatibility.
//!
//! Residual clamps (which can still occur in the lossy
//! [`Cf::from_parts`] conversion from the unstable triple, or from last-ulp
//! noise in merges) are counted on the `cf.clamp_events` observability
//! counter so instability is observable rather than silent.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Errors of fallible CF construction and updates ([`Cf::try_empty`] and
/// friends). Produced when *untrusted* data reaches a CF; the panicking
/// constructors remain as thin wrappers for validated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CfError {
    /// The dimensionality was zero.
    ZeroDimension,
    /// A point or CF of a different dimensionality was combined.
    DimensionMismatch {
        /// Dimensionality of the CF.
        expected: usize,
        /// Dimensionality of the offending point/CF.
        got: usize,
    },
    /// A coordinate was NaN or ±∞.
    NonFiniteCoordinate {
        /// Index of the offending coordinate.
        coord: usize,
    },
    /// A scalar statistic (`ss`) was NaN or ±∞.
    NonFiniteStatistic,
}

impl fmt::Display for CfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CfError::ZeroDimension => write!(f, "dimensionality must be positive"),
            CfError::DimensionMismatch { expected, got } => {
                write!(f, "dimensionality mismatch: expected {expected}, got {got}")
            }
            CfError::NonFiniteCoordinate { coord } => {
                write!(f, "coordinate {coord} is not finite")
            }
            CfError::NonFiniteStatistic => write!(f, "square sum is not finite"),
        }
    }
}

impl std::error::Error for CfError {}

/// A Clustering Feature summarizing a set of `d`-dimensional points: the
/// count `n`, the component-wise **mean**, and the scalar sum of squared
/// deviations `ssd = Σ‖Xᵢ − mean‖²`.
///
/// This carries the same information as BIRCH's `CF = (n, LS, ss)` (both
/// are recoverable via [`Cf::ls`] / [`Cf::ss`]) but is numerically stable;
/// see the module documentation.
///
/// CFs satisfy the additivity condition: `CF(S₁ ∪ S₂) = CF(S₁) + CF(S₂)`
/// for disjoint sets, implemented via [`Add`]/[`AddAssign`] with the
/// pairwise merge formula of Chan, Golub & LeVeque.
#[derive(Debug, Clone, PartialEq)]
pub struct Cf {
    n: u64,
    mean: Vec<f64>,
    ssd: f64,
}

/// Clamps a radicand that must be non-negative, counting residual
/// negative values (numerical noise) on the `cf.clamp_events` counter.
#[inline]
fn clamp_radicand(x: f64) -> f64 {
    if x < 0.0 {
        db_obs::counter!("cf.clamp_events").incr();
        0.0
    } else {
        x
    }
}

impl Cf {
    /// The CF of the empty set in `dim` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`CfError::ZeroDimension`] if `dim == 0`.
    pub fn try_empty(dim: usize) -> Result<Self, CfError> {
        if dim == 0 {
            return Err(CfError::ZeroDimension);
        }
        Ok(Self { n: 0, mean: vec![0.0; dim], ssd: 0.0 })
    }

    /// The CF of the empty set in `dim` dimensions (validated input only).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { n: 0, mean: vec![0.0; dim], ssd: 0.0 }
    }

    /// The CF of a single point.
    ///
    /// # Errors
    ///
    /// Returns an error if `point` is empty or contains a non-finite
    /// coordinate.
    pub fn try_from_point(point: &[f64]) -> Result<Self, CfError> {
        let mut cf = Self::try_empty(point.len())?;
        cf.try_add_point(point)?;
        Ok(cf)
    }

    /// The CF of a single point (validated input only).
    ///
    /// # Panics
    ///
    /// Panics if `point` is empty or contains a non-finite coordinate.
    pub fn from_point(point: &[f64]) -> Self {
        match Self::try_from_point(point) {
            Ok(cf) => cf,
            Err(CfError::ZeroDimension) => panic!("dimensionality must be positive"),
            Err(e) => panic!("invalid point: {e}"),
        }
    }

    /// Reconstructs a CF from the classic raw components `(n, LS, ss)`
    /// (e.g. deserialized state).
    ///
    /// This conversion inherits the cancellation of the unstable triple:
    /// the derived `ssd = ss − ‖LS‖²/n` may dip below zero for
    /// far-from-origin data, in which case it is clamped to zero (and
    /// counted on `cf.clamp_events`). Prefer keeping CFs in their stable
    /// form end to end.
    ///
    /// # Errors
    ///
    /// Returns an error if `ls` is empty or any component is non-finite.
    pub fn try_from_parts(n: u64, ls: Vec<f64>, ss: f64) -> Result<Self, CfError> {
        if ls.is_empty() {
            return Err(CfError::ZeroDimension);
        }
        if let Some(coord) = ls.iter().position(|x| !x.is_finite()) {
            return Err(CfError::NonFiniteCoordinate { coord });
        }
        if !ss.is_finite() {
            return Err(CfError::NonFiniteStatistic);
        }
        if n == 0 {
            return Ok(Self { n: 0, mean: vec![0.0; ls.len()], ssd: 0.0 });
        }
        let nf = n as f64;
        let mean: Vec<f64> = ls.iter().map(|&l| l / nf).collect();
        let mean_norm_sq: f64 = mean.iter().map(|&m| m * m).sum();
        let ssd = clamp_radicand(ss - nf * mean_norm_sq);
        Ok(Self { n, mean, ssd })
    }

    /// Reconstructs a CF from classic raw components (validated input
    /// only). See [`Cf::try_from_parts`].
    ///
    /// # Panics
    ///
    /// Panics if `ls` is empty or any component is non-finite.
    pub fn from_parts(n: u64, ls: Vec<f64>, ss: f64) -> Self {
        match Self::try_from_parts(n, ls, ss) {
            Ok(cf) => cf,
            Err(CfError::ZeroDimension) => panic!("dimensionality must be positive"),
            Err(e) => panic!("invalid CF components: {e}"),
        }
    }

    /// Adds one point (the incremental update of BIRCH's insertion),
    /// using Welford's update for the mean and squared deviations.
    ///
    /// # Errors
    ///
    /// Returns an error when the dimensionality differs or a coordinate is
    /// non-finite; the CF is unchanged on error.
    pub fn try_add_point(&mut self, point: &[f64]) -> Result<(), CfError> {
        if point.len() != self.mean.len() {
            return Err(CfError::DimensionMismatch { expected: self.mean.len(), got: point.len() });
        }
        if let Some(coord) = point.iter().position(|x| !x.is_finite()) {
            return Err(CfError::NonFiniteCoordinate { coord });
        }
        self.n += 1;
        let inv = 1.0 / self.n as f64;
        let mut ssd_inc = 0.0;
        for (m, &x) in self.mean.iter_mut().zip(point) {
            let delta = x - *m;
            *m += delta * inv;
            ssd_inc += delta * (x - *m);
        }
        self.ssd += ssd_inc;
        Ok(())
    }

    /// Adds one point (validated input only).
    ///
    /// # Panics
    ///
    /// Panics if the point dimensionality differs or a coordinate is
    /// non-finite.
    pub fn add_point(&mut self, point: &[f64]) {
        match self.try_add_point(point) {
            Ok(()) => {}
            Err(CfError::DimensionMismatch { .. }) => panic!("dimensionality mismatch"),
            Err(e) => panic!("invalid point: {e}"),
        }
    }

    /// Merges another CF into this one (CF additivity), using the pairwise
    /// update of Chan, Golub & LeVeque — stable for groups of any size and
    /// location.
    ///
    /// # Errors
    ///
    /// Returns an error when dimensionalities differ; the CF is unchanged
    /// on error.
    pub fn try_merge(&mut self, rhs: &Cf) -> Result<(), CfError> {
        if rhs.dim() != self.dim() {
            return Err(CfError::DimensionMismatch { expected: self.dim(), got: rhs.dim() });
        }
        if rhs.n == 0 {
            return Ok(());
        }
        if self.n == 0 {
            self.n = rhs.n;
            self.mean.copy_from_slice(&rhs.mean);
            self.ssd = rhs.ssd;
            return Ok(());
        }
        let n1 = self.n as f64;
        let n2 = rhs.n as f64;
        let n = n1 + n2;
        let frac = n2 / n;
        let mut delta_sq = 0.0;
        for (m, &m2) in self.mean.iter_mut().zip(&rhs.mean) {
            let delta = m2 - *m;
            delta_sq += delta * delta;
            *m += delta * frac;
        }
        self.ssd += rhs.ssd + delta_sq * (n1 * frac);
        self.n += rhs.n;
        Ok(())
    }

    /// Number of points summarized.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The classic linear sum `LS = n · mean` (derived; allocates).
    pub fn ls(&self) -> Vec<f64> {
        let nf = self.n as f64;
        self.mean.iter().map(|&m| m * nf).collect()
    }

    /// The classic square sum `ss = Σ‖Xᵢ‖² = ssd + n·‖mean‖²` (derived).
    pub fn ss(&self) -> f64 {
        let mean_norm_sq: f64 = self.mean.iter().map(|&m| m * m).sum();
        self.ssd + self.n as f64 * mean_norm_sq
    }

    /// The stored mean vector (zero vector for an empty CF).
    #[inline]
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// The stored sum of squared deviations `Σ‖Xᵢ − mean‖²`.
    #[inline]
    pub fn ssd(&self) -> f64 {
        self.ssd
    }

    /// Dimensionality of the summarized points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Whether the CF summarizes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The centroid (the stored mean).
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn centroid(&self) -> Vec<f64> {
        assert!(self.n > 0, "centroid of empty CF");
        self.mean.clone()
    }

    /// Writes the centroid into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn centroid_into(&self, out: &mut Vec<f64>) {
        assert!(self.n > 0, "centroid of empty CF");
        out.clear();
        out.extend_from_slice(&self.mean);
    }

    /// BIRCH's radius: root-mean-squared distance of the points to the
    /// centroid, `R = sqrt(ssd/n)`. Zero for singletons. Shift-invariant.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn radius(&self) -> f64 {
        assert!(self.n > 0, "radius of empty CF");
        (clamp_radicand(self.ssd) / self.n as f64).sqrt()
    }

    /// BIRCH's diameter: average pairwise distance
    /// `D = sqrt(2·ssd/(n−1))`. Zero for `n ≤ 1`. Shift-invariant.
    ///
    /// This is the same quantity as the Data Bubble `extent`
    /// (Corollary 1 of the Data Bubbles paper, whose published closed form
    /// `sqrt((2n·ss − 2‖LS‖²)/(n(n−1)))` is algebraically identical but
    /// cancels catastrophically far from the origin).
    pub fn diameter(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        (2.0 * clamp_radicand(self.ssd) / (self.n as f64 - 1.0)).sqrt()
    }

    /// Euclidean distance between the centroids of two CFs.
    ///
    /// # Panics
    ///
    /// Panics if either CF is empty or dimensionalities differ.
    pub fn centroid_distance(&self, other: &Cf) -> f64 {
        assert!(self.n > 0 && other.n > 0, "centroid distance of empty CF");
        assert_eq!(self.dim(), other.dim(), "dimensionality mismatch");
        let mut acc = 0.0;
        for (&a, &b) in self.mean.iter().zip(&other.mean) {
            let d = a - b;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// The diameter the merged CF `self + other` would have, without
    /// building the merge. Used by the absorption test of the CF-tree.
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn merged_diameter(&self, other: &Cf) -> f64 {
        assert_eq!(self.dim(), other.dim(), "dimensionality mismatch");
        let n = self.n + other.n;
        if n <= 1 {
            return 0.0;
        }
        if self.n == 0 {
            return other.diameter();
        }
        if other.n == 0 {
            return self.diameter();
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let nf = n1 + n2;
        let mut delta_sq = 0.0;
        for (&a, &b) in self.mean.iter().zip(&other.mean) {
            let d = b - a;
            delta_sq += d * d;
        }
        let ssd = self.ssd + other.ssd + delta_sq * (n1 * n2 / nf);
        (2.0 * clamp_radicand(ssd) / (nf - 1.0)).sqrt()
    }
}

impl Add for Cf {
    type Output = Cf;

    fn add(mut self, rhs: Cf) -> Cf {
        self += rhs;
        self
    }
}

impl AddAssign for Cf {
    fn add_assign(&mut self, rhs: Cf) {
        *self += &rhs;
    }
}

impl AddAssign<&Cf> for Cf {
    fn add_assign(&mut self, rhs: &Cf) {
        match self.try_merge(rhs) {
            Ok(()) => {}
            Err(_) => panic!("dimensionality mismatch"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_from_point() {
        let e = Cf::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.dim(), 3);
        let p = Cf::from_point(&[1.0, 2.0, 2.0]);
        assert_eq!(p.n(), 1);
        assert_eq!(p.ls(), &[1.0, 2.0, 2.0]);
        assert!((p.ss() - 9.0).abs() < 1e-12);
        assert_eq!(p.radius(), 0.0);
        assert_eq!(p.diameter(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn empty_zero_dim_panics() {
        Cf::empty(0);
    }

    #[test]
    fn try_constructors_reject_bad_input() {
        assert_eq!(Cf::try_empty(0).unwrap_err(), CfError::ZeroDimension);
        assert_eq!(Cf::try_from_point(&[]).unwrap_err(), CfError::ZeroDimension);
        assert_eq!(
            Cf::try_from_point(&[1.0, f64::NAN]).unwrap_err(),
            CfError::NonFiniteCoordinate { coord: 1 }
        );
        assert_eq!(
            Cf::try_from_point(&[f64::INFINITY]).unwrap_err(),
            CfError::NonFiniteCoordinate { coord: 0 }
        );
        let mut cf = Cf::empty(2);
        assert_eq!(
            cf.try_add_point(&[1.0]).unwrap_err(),
            CfError::DimensionMismatch { expected: 2, got: 1 }
        );
        // Failed updates leave the CF untouched.
        assert!(cf.try_add_point(&[1.0, f64::NEG_INFINITY]).is_err());
        assert!(cf.is_empty());
        assert_eq!(
            Cf::try_from_parts(2, vec![1.0, f64::NAN], 3.0).unwrap_err(),
            CfError::NonFiniteCoordinate { coord: 1 }
        );
        assert_eq!(
            Cf::try_from_parts(2, vec![1.0, 1.0], f64::NAN).unwrap_err(),
            CfError::NonFiniteStatistic
        );
        // Display impls.
        assert!(CfError::ZeroDimension.to_string().contains("positive"));
        assert!(CfError::DimensionMismatch { expected: 2, got: 1 }.to_string().contains('2'));
        assert!(CfError::NonFiniteCoordinate { coord: 3 }.to_string().contains('3'));
        assert!(CfError::NonFiniteStatistic.to_string().contains("finite"));
    }

    #[test]
    fn additivity_matches_incremental() {
        let pts: [&[f64]; 4] = [&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[4.0, 4.0]];
        let mut whole = Cf::empty(2);
        for p in pts {
            whole.add_point(p);
        }
        let left = Cf::from_point(pts[0]) + Cf::from_point(pts[1]);
        let right = Cf::from_point(pts[2]) + Cf::from_point(pts[3]);
        let merged = left + right;
        assert_eq!(merged.n(), whole.n());
        for (a, b) in merged.ls().iter().zip(whole.ls()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((merged.ss() - whole.ss()).abs() < 1e-12);
        assert!((merged.ssd() - whole.ssd()).abs() < 1e-12);
    }

    #[test]
    fn centroid_and_radius_hand_checked() {
        // Two points at (0,0) and (2,0): centroid (1,0), radius 1 (RMS
        // distance to centroid), diameter 2 (the single pairwise distance).
        let cf = Cf::from_point(&[0.0, 0.0]) + Cf::from_point(&[2.0, 0.0]);
        assert_eq!(cf.centroid(), vec![1.0, 0.0]);
        assert!((cf.radius() - 1.0).abs() < 1e-12);
        assert!((cf.diameter() - 2.0).abs() < 1e-12);
        let mut buf = Vec::new();
        cf.centroid_into(&mut buf);
        assert_eq!(buf, vec![1.0, 0.0]);
    }

    #[test]
    fn diameter_equals_average_pairwise_distance_rms() {
        // Three points: diameter² = mean over ordered pairs of squared dist.
        let pts: [&[f64]; 3] = [&[0.0], &[1.0], &[3.0]];
        let mut cf = Cf::empty(1);
        for p in pts {
            cf.add_point(p);
        }
        let mut acc = 0.0;
        let mut cnt = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let d = pts[i][0] - pts[j][0];
                    acc += d * d;
                    cnt += 1.0;
                }
            }
        }
        assert!((cf.diameter() - (acc / cnt).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merged_diameter_matches_actual_merge() {
        let a = Cf::from_point(&[0.0, 0.0]) + Cf::from_point(&[1.0, 1.0]);
        let b = Cf::from_point(&[5.0, 5.0]);
        let predicted = a.merged_diameter(&b);
        let merged = a + b;
        assert!((predicted - merged.diameter()).abs() < 1e-12);
    }

    #[test]
    fn merged_diameter_handles_empty_sides() {
        let a = Cf::from_point(&[0.0]) + Cf::from_point(&[2.0]);
        let e = Cf::empty(1);
        assert!((a.merged_diameter(&e) - a.diameter()).abs() < 1e-15);
        assert!((e.merged_diameter(&a) - a.diameter()).abs() < 1e-15);
        assert_eq!(e.merged_diameter(&Cf::empty(1)), 0.0);
    }

    #[test]
    fn centroid_distance_hand_checked() {
        let a = Cf::from_point(&[0.0, 0.0]);
        let b = Cf::from_point(&[3.0, 4.0]);
        assert!((a.centroid_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn radius_never_negative_under_cancellation() {
        // Large coordinates provoked catastrophic cancellation in the old
        // ss − ‖c‖² form; the stable form is exact here.
        let mut cf = Cf::empty(1);
        for _ in 0..1000 {
            cf.add_point(&[1e8]);
        }
        assert_eq!(cf.radius(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
    }

    #[test]
    fn shift_invariance_of_extent() {
        // The defining property of the stable representation: a cluster
        // translated by 1e8 keeps its diameter. The old closed form
        // collapsed it to 0 (radicand ≈ −1e16 clamped).
        for offset in [0.0, 1e6, 1e8] {
            let mut cf = Cf::empty(2);
            for i in 0..100 {
                cf.add_point(&[offset + (i % 10) as f64 * 0.1, offset + (i / 10) as f64 * 0.1]);
            }
            let mut origin = Cf::empty(2);
            for i in 0..100 {
                origin.add_point(&[(i % 10) as f64 * 0.1, (i / 10) as f64 * 0.1]);
            }
            assert!(
                (cf.diameter() - origin.diameter()).abs() < 1e-6,
                "offset {offset}: {} vs {}",
                cf.diameter(),
                origin.diameter()
            );
            assert!((cf.radius() - origin.radius()).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "centroid of empty CF")]
    fn centroid_of_empty_panics() {
        Cf::empty(2).centroid();
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn add_dim_mismatch_panics() {
        let mut a = Cf::empty(2);
        a += &Cf::empty(3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Cf::from_point(&[1.0, 2.0]);
        let before = a.clone();
        a += &Cf::empty(2);
        assert_eq!(a, before);
        let mut e = Cf::empty(2);
        e += &before;
        assert_eq!(e, before);
    }

    #[test]
    fn from_parts_round_trip() {
        let cf = Cf::from_parts(2, vec![2.0, 2.0], 4.0);
        assert_eq!(cf.n(), 2);
        assert_eq!(cf.centroid(), vec![1.0, 1.0]);
        // ls/ss derived views reproduce the inputs.
        assert_eq!(cf.ls(), vec![2.0, 2.0]);
        assert!((cf.ss() - 4.0).abs() < 1e-12);
        // Degenerate: n = 0 parts yield the empty CF.
        let z = Cf::from_parts(0, vec![0.0], 0.0);
        assert!(z.is_empty());
        assert_eq!(z.merged_diameter(&z), 0.0);
    }

    #[test]
    fn from_parts_clamps_cancelled_ssd_to_zero() {
        // ss slightly below n·‖mean‖² (cancellation in the unstable
        // source): the derived ssd clamps to 0 instead of going NaN.
        let cf = Cf::from_parts(2, vec![2e8], 2e16 - 1.0);
        assert_eq!(cf.ssd(), 0.0);
        assert_eq!(cf.diameter(), 0.0);
        assert!(cf.radius() >= 0.0);
    }
}
