//! Clustering Features (sufficient statistics) — Definition 1 of the Data
//! Bubbles paper, originally from BIRCH.

use std::ops::{Add, AddAssign};

/// A Clustering Feature `CF = (n, LS, ss)` summarizing a set of
/// `d`-dimensional points: the count, the component-wise linear sum and the
/// scalar square sum `ss = Σ‖Xᵢ‖²`.
///
/// CFs satisfy the additivity condition: `CF(S₁ ∪ S₂) = CF(S₁) + CF(S₂)`
/// for disjoint sets, implemented via [`Add`]/[`AddAssign`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cf {
    n: u64,
    ls: Vec<f64>,
    ss: f64,
}

impl Cf {
    /// The CF of the empty set in `dim` dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn empty(dim: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        Self { n: 0, ls: vec![0.0; dim], ss: 0.0 }
    }

    /// The CF of a single point.
    ///
    /// # Panics
    ///
    /// Panics if `point` is empty.
    pub fn from_point(point: &[f64]) -> Self {
        let mut cf = Self::empty(point.len());
        cf.add_point(point);
        cf
    }

    /// Reconstructs a CF from raw components (e.g. deserialized state).
    ///
    /// # Panics
    ///
    /// Panics if `ls` is empty.
    pub fn from_parts(n: u64, ls: Vec<f64>, ss: f64) -> Self {
        assert!(!ls.is_empty(), "dimensionality must be positive");
        Self { n, ls, ss }
    }

    /// Adds one point (the incremental update of BIRCH's insertion).
    ///
    /// # Panics
    ///
    /// Panics if the point dimensionality differs.
    pub fn add_point(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.ls.len(), "dimensionality mismatch");
        self.n += 1;
        for (l, &x) in self.ls.iter_mut().zip(point) {
            *l += x;
            self.ss += x * x;
        }
    }

    /// Number of points summarized.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The linear sum `LS`.
    #[inline]
    pub fn ls(&self) -> &[f64] {
        &self.ls
    }

    /// The square sum `ss`.
    #[inline]
    pub fn ss(&self) -> f64 {
        self.ss
    }

    /// Dimensionality of the summarized points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.ls.len()
    }

    /// Whether the CF summarizes no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The centroid `LS / n`.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn centroid(&self) -> Vec<f64> {
        assert!(self.n > 0, "centroid of empty CF");
        let inv = 1.0 / self.n as f64;
        self.ls.iter().map(|&l| l * inv).collect()
    }

    /// Writes the centroid into `out` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn centroid_into(&self, out: &mut Vec<f64>) {
        assert!(self.n > 0, "centroid of empty CF");
        out.clear();
        let inv = 1.0 / self.n as f64;
        out.extend(self.ls.iter().map(|&l| l * inv));
    }

    /// BIRCH's radius: root-mean-squared distance of the points to the
    /// centroid, `R = sqrt(ss/n − ‖LS/n‖²)`. Zero for singletons.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn radius(&self) -> f64 {
        assert!(self.n > 0, "radius of empty CF");
        let n = self.n as f64;
        let centroid_norm_sq: f64 = self.ls.iter().map(|&l| (l / n) * (l / n)).sum();
        // Clamp: floating point cancellation can dip slightly below zero.
        (self.ss / n - centroid_norm_sq).max(0.0).sqrt()
    }

    /// BIRCH's diameter: average pairwise distance
    /// `D = sqrt((2n·ss − 2‖LS‖²) / (n(n−1)))`. Zero for `n ≤ 1`.
    ///
    /// This is the same closed form as the Data Bubble `extent`
    /// (Corollary 1 of the Data Bubbles paper).
    pub fn diameter(&self) -> f64 {
        if self.n <= 1 {
            return 0.0;
        }
        let n = self.n as f64;
        let ls_norm_sq: f64 = self.ls.iter().map(|&l| l * l).sum();
        let num = 2.0 * n * self.ss - 2.0 * ls_norm_sq;
        (num / (n * (n - 1.0))).max(0.0).sqrt()
    }

    /// Euclidean distance between the centroids of two CFs.
    ///
    /// # Panics
    ///
    /// Panics if either CF is empty or dimensionalities differ.
    pub fn centroid_distance(&self, other: &Cf) -> f64 {
        assert!(self.n > 0 && other.n > 0, "centroid distance of empty CF");
        assert_eq!(self.dim(), other.dim(), "dimensionality mismatch");
        let (na, nb) = (self.n as f64, other.n as f64);
        let mut acc = 0.0;
        for (&a, &b) in self.ls.iter().zip(&other.ls) {
            let d = a / na - b / nb;
            acc += d * d;
        }
        acc.sqrt()
    }

    /// The diameter the merged CF `self + other` would have, without
    /// building the merge. Used by the absorption test of the CF-tree.
    pub fn merged_diameter(&self, other: &Cf) -> f64 {
        let n = self.n + other.n;
        if n <= 1 {
            return 0.0;
        }
        let nf = n as f64;
        let ss = self.ss + other.ss;
        let ls_norm_sq: f64 = self.ls.iter().zip(&other.ls).map(|(&a, &b)| (a + b) * (a + b)).sum();
        let num = 2.0 * nf * ss - 2.0 * ls_norm_sq;
        (num / (nf * (nf - 1.0))).max(0.0).sqrt()
    }
}

impl Add for Cf {
    type Output = Cf;

    fn add(mut self, rhs: Cf) -> Cf {
        self += rhs;
        self
    }
}

impl AddAssign for Cf {
    fn add_assign(&mut self, rhs: Cf) {
        *self += &rhs;
    }
}

impl AddAssign<&Cf> for Cf {
    fn add_assign(&mut self, rhs: &Cf) {
        assert_eq!(self.dim(), rhs.dim(), "dimensionality mismatch");
        self.n += rhs.n;
        for (l, &r) in self.ls.iter_mut().zip(&rhs.ls) {
            *l += r;
        }
        self.ss += rhs.ss;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_from_point() {
        let e = Cf::empty(3);
        assert!(e.is_empty());
        assert_eq!(e.dim(), 3);
        let p = Cf::from_point(&[1.0, 2.0, 2.0]);
        assert_eq!(p.n(), 1);
        assert_eq!(p.ls(), &[1.0, 2.0, 2.0]);
        assert!((p.ss() - 9.0).abs() < 1e-12);
        assert_eq!(p.radius(), 0.0);
        assert_eq!(p.diameter(), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality must be positive")]
    fn empty_zero_dim_panics() {
        Cf::empty(0);
    }

    #[test]
    fn additivity_matches_incremental() {
        let pts: [&[f64]; 4] = [&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[4.0, 4.0]];
        let mut whole = Cf::empty(2);
        for p in pts {
            whole.add_point(p);
        }
        let left = Cf::from_point(pts[0]) + Cf::from_point(pts[1]);
        let right = Cf::from_point(pts[2]) + Cf::from_point(pts[3]);
        let merged = left + right;
        assert_eq!(merged.n(), whole.n());
        assert_eq!(merged.ls(), whole.ls());
        assert!((merged.ss() - whole.ss()).abs() < 1e-12);
    }

    #[test]
    fn centroid_and_radius_hand_checked() {
        // Two points at (0,0) and (2,0): centroid (1,0), radius 1 (RMS
        // distance to centroid), diameter 2 (the single pairwise distance).
        let cf = Cf::from_point(&[0.0, 0.0]) + Cf::from_point(&[2.0, 0.0]);
        assert_eq!(cf.centroid(), vec![1.0, 0.0]);
        assert!((cf.radius() - 1.0).abs() < 1e-12);
        assert!((cf.diameter() - 2.0).abs() < 1e-12);
        let mut buf = Vec::new();
        cf.centroid_into(&mut buf);
        assert_eq!(buf, vec![1.0, 0.0]);
    }

    #[test]
    fn diameter_equals_average_pairwise_distance_rms() {
        // Three points: diameter² = mean over ordered pairs of squared dist.
        let pts: [&[f64]; 3] = [&[0.0], &[1.0], &[3.0]];
        let mut cf = Cf::empty(1);
        for p in pts {
            cf.add_point(p);
        }
        let mut acc = 0.0;
        let mut cnt = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let d = pts[i][0] - pts[j][0];
                    acc += d * d;
                    cnt += 1.0;
                }
            }
        }
        assert!((cf.diameter() - (acc / cnt).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn merged_diameter_matches_actual_merge() {
        let a = Cf::from_point(&[0.0, 0.0]) + Cf::from_point(&[1.0, 1.0]);
        let b = Cf::from_point(&[5.0, 5.0]);
        let predicted = a.merged_diameter(&b);
        let merged = a + b;
        assert!((predicted - merged.diameter()).abs() < 1e-12);
    }

    #[test]
    fn centroid_distance_hand_checked() {
        let a = Cf::from_point(&[0.0, 0.0]);
        let b = Cf::from_point(&[3.0, 4.0]);
        assert!((a.centroid_distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn radius_never_negative_under_cancellation() {
        // Large coordinates provoke catastrophic cancellation in ss − ‖c‖².
        let mut cf = Cf::empty(1);
        for _ in 0..1000 {
            cf.add_point(&[1e8]);
        }
        assert!(cf.radius() >= 0.0);
        assert!(cf.diameter() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "centroid of empty CF")]
    fn centroid_of_empty_panics() {
        Cf::empty(2).centroid();
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn add_dim_mismatch_panics() {
        let mut a = Cf::empty(2);
        a += &Cf::empty(3);
    }

    #[test]
    fn from_parts_round_trip() {
        let cf = Cf::from_parts(2, vec![2.0, 2.0], 4.0);
        assert_eq!(cf.n(), 2);
        assert_eq!(cf.centroid(), vec![1.0, 1.0]);
    }
}
