//! BIRCH (Zhang, Ramakrishnan, Livny, SIGMOD 1996) — the data-compression
//! substrate of the Data Bubbles paper.
//!
//! Provides:
//!
//! * [`Cf`] — a Clustering Feature `(n, LS, ss)` (paper Def. 1) with the
//!   additivity condition, centroid / radius / diameter in closed form.
//! * [`CfTree`] — the height-balanced CF-tree with branching factor `B`,
//!   leaf capacity `L` and absorption threshold `T`; phase 1 inserts points
//!   one by one and rebuilds with a larger threshold whenever the tree
//!   exceeds its memory bound, phase 2 ([`CfTree::condense_to`]) repeatedly
//!   rebuilds until at most `k` leaf entries remain.
//! * [`birch`] — the end-to-end convenience function the pipelines use:
//!   build the tree over a dataset and return the ≤ `k` leaf CFs.
//!
//! The threshold-increase heuristic is implemented so that it exhibits the
//! qualitative behaviour the Data Bubbles paper reports (§8, §9.1): at
//! extreme compression rates and in high dimensions the final increase
//! overshoots and the tree ends up with *fewer* leaf entries than requested.
//!
//! # Example
//!
//! ```
//! use db_birch::{birch, BirchParams};
//! use db_spatial::Dataset;
//!
//! let mut ds = Dataset::new(2).unwrap();
//! for i in 0..100 {
//!     ds.push(&[i as f64 % 10.0, (i / 10) as f64]).unwrap();
//! }
//! let cfs = birch(&ds, 20, &BirchParams::default());
//! assert!(cfs.len() <= 20);
//! let total: u64 = cfs.iter().map(|cf| cf.n()).sum();
//! assert_eq!(total, 100); // every point is summarized exactly once
//! ```

#![warn(missing_docs)]

mod cf;
mod tree;

pub use cf::{Cf, CfError};
pub use tree::{birch, birch_supervised, BirchParams, CfTree};
