//! The CF-tree: a height-balanced tree of clustering features (BIRCH §4),
//! with phase-1 insertion (rebuild on memory bound) and phase-2
//! condensation to a target number of leaf entries.

use crate::cf::Cf;
use db_spatial::Dataset;
use db_supervise::{Stop, Supervisor, Ticker};

/// Tuning parameters of a [`CfTree`].
#[derive(Debug, Clone)]
pub struct BirchParams {
    /// Branching factor `B`: maximum children of a non-leaf node.
    pub branching: usize,
    /// Leaf capacity `L`: maximum entries of a leaf node.
    pub leaf_capacity: usize,
    /// Initial absorption threshold `T` (0.0 = only exact duplicates merge
    /// until the first rebuild).
    pub initial_threshold: f64,
    /// Memory bound: maximum number of tree nodes before phase 1 rebuilds
    /// with a larger threshold (BIRCH's "CF-tree is a main-memory
    /// structure").
    pub max_nodes: usize,
    /// Minimum multiplicative threshold growth per rebuild. Values well
    /// above 1 reproduce the overshoot the Data Bubbles paper observes.
    pub threshold_growth: f64,
}

impl Default for BirchParams {
    fn default() -> Self {
        Self {
            branching: 8,
            leaf_capacity: 8,
            initial_threshold: 0.0,
            max_nodes: 4096,
            threshold_growth: 1.3,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { entries: Vec<Cf> },
    Inner { summaries: Vec<Cf>, children: Vec<usize> },
}

/// A CF-tree over `d`-dimensional points.
#[derive(Debug, Clone)]
pub struct CfTree {
    dim: usize,
    params: BirchParams,
    threshold: f64,
    nodes: Vec<Node>,
    root: usize,
    leaf_entry_count: usize,
    rebuild_count: usize,
    points_inserted: u64,
}

impl CfTree {
    /// Creates an empty tree for `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `branching < 2`, or `leaf_capacity < 1`.
    pub fn new(dim: usize, params: BirchParams) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        assert!(params.branching >= 2, "branching factor must be at least 2");
        assert!(params.leaf_capacity >= 1, "leaf capacity must be at least 1");
        assert!(params.threshold_growth > 1.0, "threshold growth must exceed 1");
        Self {
            dim,
            threshold: params.initial_threshold.max(0.0),
            params,
            nodes: vec![Node::Leaf { entries: Vec::new() }],
            root: 0,
            leaf_entry_count: 0,
            rebuild_count: 0,
            points_inserted: 0,
        }
    }

    /// Current absorption threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Number of rebuilds performed so far (phase 1 + phase 2).
    pub fn rebuild_count(&self) -> usize {
        self.rebuild_count
    }

    /// Number of leaf entries (sub-cluster summaries).
    pub fn leaf_entry_count(&self) -> usize {
        self.leaf_entry_count
    }

    /// Number of tree nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of points summarized by the tree.
    pub fn points_inserted(&self) -> u64 {
        self.points_inserted
    }

    /// Phase-1 insertion of one data point. Rebuilds with a larger
    /// threshold when the memory bound is exceeded.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != dim`.
    pub fn insert_point(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "dimensionality mismatch");
        if self.nodes.len() > self.params.max_nodes {
            let t = self.next_threshold(None);
            self.rebuild(t);
        }
        self.points_inserted += 1;
        db_obs::counter!("birch.inserts").incr();
        self.insert_cf_internal(Cf::from_point(point));
    }

    /// Inserts an already-aggregated CF (used by rebuilds; also useful to
    /// bulk-merge pre-compressed data).
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty or of different dimensionality.
    pub fn insert_cf(&mut self, cf: Cf) {
        assert!(!cf.is_empty(), "cannot insert an empty CF");
        assert_eq!(cf.dim(), self.dim, "dimensionality mismatch");
        self.points_inserted += cf.n();
        self.insert_cf_internal(cf);
    }

    fn insert_cf_internal(&mut self, cf: Cf) {
        if let Some(sibling) = self.insert_rec(self.root, &cf) {
            // Root split: grow the tree by one level.
            let old_root = self.root;
            let s_old = self.node_summary(old_root);
            let s_new = self.node_summary(sibling);
            self.nodes.push(Node::Inner {
                summaries: vec![s_old, s_new],
                children: vec![old_root, sibling],
            });
            self.root = self.nodes.len() - 1;
        }
    }

    /// Recursive insertion; returns the id of a newly created sibling node
    /// when `node` was split.
    fn insert_rec(&mut self, node: usize, cf: &Cf) -> Option<usize> {
        match &mut self.nodes[node] {
            Node::Leaf { entries } => {
                if entries.is_empty() {
                    entries.push(cf.clone());
                    self.leaf_entry_count += 1;
                    return None;
                }
                // Closest entry by centroid distance.
                let closest = (0..entries.len())
                    .min_by(|&a, &b| {
                        entries[a]
                            .centroid_distance(cf)
                            .total_cmp(&entries[b].centroid_distance(cf))
                    })
                    .expect("non-empty");
                let threshold = self.threshold;
                if entries[closest].merged_diameter(cf) <= threshold {
                    entries[closest] += cf;
                    db_obs::counter!("birch.absorbs").incr();
                    return None;
                }
                entries.push(cf.clone());
                self.leaf_entry_count += 1;
                if entries.len() <= self.params.leaf_capacity {
                    return None;
                }
                // Split the leaf.
                db_obs::counter!("birch.leaf_splits").incr();
                let all = std::mem::take(entries);
                let (keep, spill) = split_group(all);
                self.nodes[node] = Node::Leaf { entries: keep };
                self.nodes.push(Node::Leaf { entries: spill });
                Some(self.nodes.len() - 1)
            }
            Node::Inner { summaries, .. } => {
                let closest = (0..summaries.len())
                    .min_by(|&a, &b| {
                        summaries[a]
                            .centroid_distance(cf)
                            .total_cmp(&summaries[b].centroid_distance(cf))
                    })
                    .expect("inner nodes are never empty");
                let child = match &self.nodes[node] {
                    Node::Inner { children, .. } => children[closest],
                    Node::Leaf { .. } => unreachable!(),
                };
                let split = self.insert_rec(child, cf);
                match split {
                    None => {
                        if let Node::Inner { summaries, .. } = &mut self.nodes[node] {
                            summaries[closest] += cf;
                        }
                        None
                    }
                    Some(sibling) => {
                        // Recompute the split child's summary, add the new
                        // sibling right after it.
                        let s_child = self.node_summary(child);
                        let s_sib = self.node_summary(sibling);
                        let (summaries, children) = match &mut self.nodes[node] {
                            Node::Inner { summaries, children } => (summaries, children),
                            Node::Leaf { .. } => unreachable!(),
                        };
                        summaries[closest] = s_child;
                        summaries.insert(closest + 1, s_sib);
                        children.insert(closest + 1, sibling);
                        if children.len() <= self.params.branching {
                            return None;
                        }
                        // Split the inner node.
                        db_obs::counter!("birch.inner_splits").incr();
                        let pairs: Vec<(Cf, usize)> =
                            summaries.drain(..).zip(children.drain(..)).collect();
                        let (keep, spill) = split_inner(pairs);
                        let (ks, kc): (Vec<Cf>, Vec<usize>) = keep.into_iter().unzip();
                        let (ss, sc): (Vec<Cf>, Vec<usize>) = spill.into_iter().unzip();
                        self.nodes[node] = Node::Inner { summaries: ks, children: kc };
                        self.nodes.push(Node::Inner { summaries: ss, children: sc });
                        Some(self.nodes.len() - 1)
                    }
                }
            }
        }
    }

    fn node_summary(&self, node: usize) -> Cf {
        let mut acc = Cf::empty(self.dim);
        match &self.nodes[node] {
            Node::Leaf { entries } => {
                for e in entries {
                    acc += e;
                }
            }
            Node::Inner { summaries, .. } => {
                for s in summaries {
                    acc += s;
                }
            }
        }
        acc
    }

    /// All leaf entries, left to right.
    pub fn leaf_entries(&self) -> Vec<Cf> {
        let mut out = Vec::with_capacity(self.leaf_entry_count);
        self.collect_leaves(self.root, &mut out);
        out
    }

    fn collect_leaves(&self, node: usize, out: &mut Vec<Cf>) {
        match &self.nodes[node] {
            Node::Leaf { entries } => out.extend(entries.iter().cloned()),
            Node::Inner { children, .. } => {
                for &c in children {
                    self.collect_leaves(c, out);
                }
            }
        }
    }

    /// The threshold-increase heuristic.
    ///
    /// BIRCH's published description leaves the exact rule open; we use the
    /// distribution of nearest-neighbour *merged diameters* over a sample of
    /// leaf entries (the smallest thresholds that would enable new
    /// absorptions). The quantile is chosen so that roughly as many merges
    /// become possible as are needed to reach `target_leaf_entries`
    /// (halving when no target is given, i.e. on phase-1 memory-bound
    /// rebuilds), floored by multiplicative growth so rebuilds always make
    /// progress.
    ///
    /// Transitive chain-merges at the new threshold still make the result
    /// *undershoot* the target, and nearest-neighbour distances grow with
    /// the dimensionality — together reproducing the paper's observation
    /// that BIRCH generates fewer CFs than requested, the more so the
    /// higher the compression rate and dimension.
    fn next_threshold(&self, target_leaf_entries: Option<usize>) -> f64 {
        let entries = self.leaf_entries();
        let floor = if self.threshold > 0.0 {
            self.threshold * self.params.threshold_growth
        } else {
            f64::MIN_POSITIVE
        };
        if entries.len() < 2 {
            return floor.max(1e-12);
        }
        // Sample up to 512 entries; O(s²) nearest-neighbour scan.
        let stride = (entries.len() / 512).max(1);
        let sample: Vec<&Cf> = entries.iter().step_by(stride).collect();
        let mut minima: Vec<f64> = Vec::with_capacity(sample.len());
        for (i, a) in sample.iter().enumerate() {
            let mut best = f64::INFINITY;
            for (j, b) in sample.iter().enumerate() {
                if i != j {
                    best = best.min(a.merged_diameter(b));
                }
            }
            if best.is_finite() {
                minima.push(best);
            }
        }
        if minima.is_empty() {
            return floor.max(1e-12);
        }
        minima.sort_by(f64::total_cmp);
        let need = match target_leaf_entries {
            Some(t) if entries.len() > t => entries.len() - t,
            _ => entries.len() / 2,
        };
        let idx = ((need as f64 / entries.len() as f64) * minima.len() as f64).ceil() as usize;
        let idx = idx.min(minima.len() - 1);
        minima[idx].max(floor).max(1e-12)
    }

    /// Rebuilds the tree with a new (larger) threshold by reinserting all
    /// leaf entries.
    fn rebuild(&mut self, new_threshold: f64) {
        let _span = db_obs::span!("birch.rebuild");
        db_obs::counter!("birch.rebuilds").incr();
        db_obs::log_debug!(
            "rebuild #{}: threshold {:.6e} -> {:.6e}, {} leaf entries",
            self.rebuild_count + 1,
            self.threshold,
            new_threshold,
            self.leaf_entry_count
        );
        let entries = self.leaf_entries();
        self.nodes.clear();
        self.nodes.push(Node::Leaf { entries: Vec::new() });
        self.root = 0;
        self.leaf_entry_count = 0;
        self.threshold = new_threshold;
        self.rebuild_count += 1;
        for cf in entries {
            self.insert_cf_internal(cf);
        }
    }

    /// Phase 2: repeatedly rebuilds with increasing threshold until at most
    /// `max_leaf_entries` leaf entries remain.
    ///
    /// Per the heuristic's nature the final count may substantially
    /// *undershoot* the target (the behaviour the Data Bubbles paper
    /// reports for extreme compression and high dimensionality).
    ///
    /// # Panics
    ///
    /// Panics if `max_leaf_entries == 0`.
    pub fn condense_to(&mut self, max_leaf_entries: usize) {
        match self.condense_to_supervised(max_leaf_entries, &Supervisor::unlimited()) {
            Ok(()) => {}
            Err(stop) => panic!("unsupervised condensation stopped: {stop}"),
        }
    }

    /// [`CfTree::condense_to`] under supervision: the supervisor is
    /// consulted before every rebuild round, so a run over budget stops
    /// between rebuilds. On `Err` the tree is mid-condensation and should
    /// be discarded (the supervised pipeline drops it wholesale).
    ///
    /// # Errors
    ///
    /// [`Stop`] when cancelled or past the deadline.
    ///
    /// # Panics
    ///
    /// Panics if `max_leaf_entries == 0`.
    pub fn condense_to_supervised(
        &mut self,
        max_leaf_entries: usize,
        sup: &Supervisor,
    ) -> Result<(), Stop> {
        assert!(max_leaf_entries > 0, "target leaf entry count must be positive");
        let mut stall_guard = 0usize;
        while self.leaf_entry_count > max_leaf_entries {
            sup.check()?;
            let before = self.leaf_entry_count;
            let t = self.next_threshold(Some(max_leaf_entries));
            self.rebuild(t);
            if self.leaf_entry_count >= before {
                // No progress: force faster growth. Terminates because the
                // threshold eventually exceeds the data diameter, collapsing
                // everything into one entry.
                stall_guard += 1;
                let t = self.threshold * 2.0_f64.powi(stall_guard as i32);
                self.rebuild(t);
            } else {
                stall_guard = 0;
            }
        }
        Ok(())
    }
}

/// Splits a leaf's entries into two groups: the farthest pair of entries
/// (by centroid distance) seed the groups, remaining entries join the
/// closer seed.
fn split_group(entries: Vec<Cf>) -> (Vec<Cf>, Vec<Cf>) {
    debug_assert!(entries.len() >= 2);
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut best = -1.0f64;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let d = entries[i].centroid_distance(&entries[j]);
            if d > best {
                best = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    let seed1 = entries[s1].clone();
    let seed2 = entries[s2].clone();
    let mut keep = Vec::new();
    let mut spill = Vec::new();
    for (i, e) in entries.into_iter().enumerate() {
        if i == s1 {
            keep.push(e);
        } else if i == s2 {
            spill.push(e);
        } else if e.centroid_distance(&seed1) <= e.centroid_distance(&seed2) {
            keep.push(e);
        } else {
            spill.push(e);
        }
    }
    (keep, spill)
}

/// (summary, child-node-id) pairs of an inner node.
type InnerEntries = Vec<(Cf, usize)>;

/// Same seeding strategy for inner nodes, keeping (summary, child) pairs
/// together.
fn split_inner(pairs: InnerEntries) -> (InnerEntries, InnerEntries) {
    debug_assert!(pairs.len() >= 2);
    let (mut s1, mut s2) = (0usize, 1usize);
    let mut best = -1.0f64;
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let d = pairs[i].0.centroid_distance(&pairs[j].0);
            if d > best {
                best = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    let seed1 = pairs[s1].0.clone();
    let seed2 = pairs[s2].0.clone();
    let mut keep = Vec::new();
    let mut spill = Vec::new();
    for (i, p) in pairs.into_iter().enumerate() {
        if i == s1 {
            keep.push(p);
        } else if i == s2 {
            spill.push(p);
        } else if p.0.centroid_distance(&seed1) <= p.0.centroid_distance(&seed2) {
            keep.push(p);
        } else {
            spill.push(p);
        }
    }
    (keep, spill)
}

/// Runs BIRCH end to end: phase-1 insertion of every point of `ds`,
/// phase-2 condensation to at most `k` leaf entries, returning the leaf
/// CFs. This is step 1 of the paper's `OPTICS-CF` pipelines.
pub fn birch(ds: &Dataset, k: usize, params: &BirchParams) -> Vec<Cf> {
    match birch_supervised(ds, k, params, &Supervisor::unlimited()) {
        Ok(entries) => entries,
        Err(stop) => panic!("unsupervised birch stopped: {stop}"),
    }
}

/// Cooperative-check cadence for phase-1 insertion (an insert is a tree
/// descent, far heavier than a Welford update).
const INSERT_TICK: u32 = 64;

/// [`birch`] under supervision: phase-1 insertion consults `sup` every
/// [`INSERT_TICK`] points and phase-2 condensation before every rebuild
/// round. On `Err` the whole tree is dropped — no partial CF set escapes;
/// on `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled or past the deadline.
pub fn birch_supervised(
    ds: &Dataset,
    k: usize,
    params: &BirchParams,
    sup: &Supervisor,
) -> Result<Vec<Cf>, Stop> {
    let mut tree = CfTree::new(ds.dim(), params.clone());
    {
        let _span = db_obs::span!("birch.phase1_insert");
        let mut ticker = Ticker::new(sup, INSERT_TICK);
        for p in ds.iter() {
            ticker.tick()?;
            tree.insert_point(p);
        }
    }
    {
        let _span = db_obs::span!("birch.phase2_condense");
        tree.condense_to_supervised(k, sup)?;
    }
    db_obs::log_debug!(
        "birch: {} points -> {} leaf entries (target {}, {} rebuilds)",
        tree.points_inserted(),
        tree.leaf_entry_count(),
        k,
        tree.rebuild_count()
    );
    Ok(tree.leaf_entries())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_dataset(nx: usize, ny: usize, step: f64) -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..nx {
            for j in 0..ny {
                ds.push(&[i as f64 * step, j as f64 * step]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn empty_tree_properties() {
        let t = CfTree::new(2, BirchParams::default());
        assert_eq!(t.leaf_entry_count(), 0);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.points_inserted(), 0);
        assert!(t.leaf_entries().is_empty());
    }

    #[test]
    fn zero_threshold_merges_only_duplicates() {
        let mut t = CfTree::new(1, BirchParams { max_nodes: 1 << 20, ..BirchParams::default() });
        for _ in 0..5 {
            t.insert_point(&[1.0]);
        }
        for _ in 0..3 {
            t.insert_point(&[2.0]);
        }
        assert_eq!(t.leaf_entry_count(), 2);
        let entries = t.leaf_entries();
        let mut ns: Vec<u64> = entries.iter().map(Cf::n).collect();
        ns.sort_unstable();
        assert_eq!(ns, vec![3, 5]);
    }

    #[test]
    fn total_count_is_preserved_through_splits() {
        let ds = grid_dataset(20, 20, 1.0);
        let mut t = CfTree::new(2, BirchParams::default());
        for p in ds.iter() {
            t.insert_point(p);
        }
        assert_eq!(t.points_inserted(), 400);
        let total: u64 = t.leaf_entries().iter().map(Cf::n).sum();
        assert_eq!(total, 400);
        assert_eq!(t.leaf_entries().len(), t.leaf_entry_count());
    }

    #[test]
    fn entries_respect_threshold_diameter() {
        let ds = grid_dataset(15, 15, 0.5);
        let mut t = CfTree::new(
            2,
            BirchParams { initial_threshold: 1.0, max_nodes: 1 << 20, ..BirchParams::default() },
        );
        for p in ds.iter() {
            t.insert_point(p);
        }
        for e in t.leaf_entries() {
            assert!(e.diameter() <= 1.0 + 1e-9, "diameter {} exceeds T", e.diameter());
        }
    }

    #[test]
    fn condense_reaches_target() {
        let ds = grid_dataset(30, 30, 1.0);
        let mut t = CfTree::new(2, BirchParams::default());
        for p in ds.iter() {
            t.insert_point(p);
        }
        assert!(t.leaf_entry_count() > 50);
        t.condense_to(50);
        assert!(t.leaf_entry_count() <= 50, "got {}", t.leaf_entry_count());
        assert!(t.leaf_entry_count() > 0);
        assert!(t.rebuild_count() > 0);
        let total: u64 = t.leaf_entries().iter().map(Cf::n).sum();
        assert_eq!(total, 900);
    }

    #[test]
    fn condense_to_one_collapses_everything() {
        let ds = grid_dataset(10, 10, 1.0);
        let mut t = CfTree::new(2, BirchParams::default());
        for p in ds.iter() {
            t.insert_point(p);
        }
        t.condense_to(1);
        assert_eq!(t.leaf_entry_count(), 1);
        assert_eq!(t.leaf_entries()[0].n(), 100);
    }

    #[test]
    fn memory_bound_triggers_rebuild() {
        let ds = grid_dataset(40, 40, 3.0);
        let mut t = CfTree::new(2, BirchParams { max_nodes: 64, ..BirchParams::default() });
        for p in ds.iter() {
            t.insert_point(p);
        }
        assert!(t.rebuild_count() > 0, "memory bound never hit");
        assert!(t.threshold() > 0.0);
        let total: u64 = t.leaf_entries().iter().map(Cf::n).sum();
        assert_eq!(total, 1600);
    }

    #[test]
    fn birch_end_to_end_counts_and_bound() {
        let ds = grid_dataset(25, 25, 1.0);
        let cfs = birch(&ds, 40, &BirchParams::default());
        assert!(cfs.len() <= 40);
        assert!(!cfs.is_empty());
        let total: u64 = cfs.iter().map(Cf::n).sum();
        assert_eq!(total, 625);
        // Centroids lie within the data bounding box.
        for cf in &cfs {
            let c = cf.centroid();
            assert!(c[0] >= 0.0 && c[0] <= 24.0);
            assert!(c[1] >= 0.0 && c[1] <= 24.0);
        }
    }

    #[test]
    fn split_group_separates_farthest_pair() {
        let entries = vec![
            Cf::from_point(&[0.0, 0.0]),
            Cf::from_point(&[0.1, 0.0]),
            Cf::from_point(&[10.0, 0.0]),
            Cf::from_point(&[10.1, 0.0]),
        ];
        let (a, b) = split_group(entries);
        assert_eq!(a.len() + b.len(), 4);
        assert!(!a.is_empty() && !b.is_empty());
        // Each group is spatially coherent: all centroids within 1.0 of the
        // group's first element.
        for g in [&a, &b] {
            for e in g.iter().skip(1) {
                assert!(e.centroid_distance(&g[0]) < 1.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "branching factor")]
    fn rejects_tiny_branching() {
        CfTree::new(2, BirchParams { branching: 1, ..BirchParams::default() });
    }

    #[test]
    #[should_panic(expected = "cannot insert an empty CF")]
    fn rejects_empty_cf() {
        let mut t = CfTree::new(2, BirchParams::default());
        t.insert_cf(Cf::empty(2));
    }

    #[test]
    fn deep_tree_remains_consistent() {
        // Enough points to force multiple levels with small fan-out.
        let ds = grid_dataset(32, 32, 1.0);
        let mut t = CfTree::new(
            2,
            BirchParams {
                branching: 3,
                leaf_capacity: 2,
                max_nodes: 1 << 20,
                ..BirchParams::default()
            },
        );
        for p in ds.iter() {
            t.insert_point(p);
        }
        let total: u64 = t.leaf_entries().iter().map(Cf::n).sum();
        assert_eq!(total, 1024);
        assert!(t.node_count() > 100);
    }
}
