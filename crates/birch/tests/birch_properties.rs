//! Property tests of CF arithmetic and CF-tree invariants on arbitrary
//! inputs.

use db_birch::{birch, BirchParams, Cf, CfTree};
use db_spatial::Dataset;
use proptest::prelude::*;

fn points_strategy(max_n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-1000.0f64..1000.0, dim), 1..max_n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CF additivity: building one CF incrementally equals summing the CFs
    /// of any split of the points.
    #[test]
    fn additivity_holds_for_any_split(
        points in points_strategy(60, 3),
        split in 0usize..60,
    ) {
        let split = split.min(points.len());
        let mut whole = Cf::empty(3);
        for p in &points {
            whole.add_point(p);
        }
        let mut left = Cf::empty(3);
        let mut right = Cf::empty(3);
        for (i, p) in points.iter().enumerate() {
            if i < split {
                left.add_point(p);
            } else {
                right.add_point(p);
            }
        }
        let merged = left + right;
        prop_assert_eq!(merged.n(), whole.n());
        for (a, b) in merged.ls().iter().zip(whole.ls()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        prop_assert!((merged.ss() - whole.ss()).abs() / whole.ss().max(1.0) < 1e-9);
    }

    /// Radius and diameter are non-negative, and diameter ≤ 2·radius·√2
    /// does not hold in general — but the predicted merged diameter always
    /// equals the actual merged diameter.
    #[test]
    fn merged_diameter_prediction_is_exact(
        a in points_strategy(20, 2),
        b in points_strategy(20, 2),
    ) {
        let mut cfa = Cf::empty(2);
        for p in &a {
            cfa.add_point(p);
        }
        let mut cfb = Cf::empty(2);
        for p in &b {
            cfb.add_point(p);
        }
        let predicted = cfa.merged_diameter(&cfb);
        let merged = cfa + cfb;
        prop_assert!((predicted - merged.diameter()).abs() < 1e-6);
        prop_assert!(predicted >= 0.0);
    }

    /// The CF-tree preserves point counts and the centroid of the whole
    /// data set, for any insertion order and parameters.
    #[test]
    fn tree_preserves_mass_and_mean(
        points in points_strategy(120, 2),
        leaf_capacity in 1usize..6,
        branching in 2usize..6,
        threshold in 0.0f64..100.0,
    ) {
        let mut tree = CfTree::new(2, BirchParams {
            branching,
            leaf_capacity,
            initial_threshold: threshold,
            max_nodes: 1 << 20,
            threshold_growth: 1.3,
        });
        let mut whole = Cf::empty(2);
        for p in &points {
            tree.insert_point(p);
            whole.add_point(p);
        }
        let total: u64 = tree.leaf_entries().iter().map(Cf::n).sum();
        prop_assert_eq!(total, points.len() as u64);
        // Sum of leaf CFs equals the whole CF.
        let mut sum = Cf::empty(2);
        for cf in tree.leaf_entries() {
            sum += &cf;
        }
        for (a, b) in sum.ls().iter().zip(whole.ls()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    /// Condensation always reaches the target and never loses points.
    #[test]
    fn condense_reaches_any_target(
        points in points_strategy(150, 2),
        k in 1usize..40,
    ) {
        let mut ds = Dataset::new(2).unwrap();
        for p in &points {
            ds.push(p).unwrap();
        }
        let cfs = birch(&ds, k, &BirchParams::default());
        prop_assert!(!cfs.is_empty());
        prop_assert!(cfs.len() <= k);
        prop_assert_eq!(cfs.iter().map(Cf::n).sum::<u64>(), points.len() as u64);
    }

    /// Leaf entries respect the final threshold: every multi-point entry's
    /// diameter is at most T (entries created as singletons trivially
    /// comply).
    #[test]
    fn leaf_entries_respect_threshold(
        points in points_strategy(100, 2),
        threshold in 0.1f64..50.0,
    ) {
        let mut tree = CfTree::new(2, BirchParams {
            initial_threshold: threshold,
            max_nodes: 1 << 20,
            ..BirchParams::default()
        });
        for p in &points {
            tree.insert_point(p);
        }
        for cf in tree.leaf_entries() {
            prop_assert!(cf.diameter() <= threshold + 1e-9);
        }
    }
}
