//! Randomized tests of CF arithmetic and CF-tree invariants over many
//! seeded random inputs.

use db_birch::{birch, BirchParams, Cf, CfTree};
use db_rng::Rng;
use db_spatial::Dataset;

const CASES: u64 = 64;

fn random_points(rng: &mut Rng, max_n: usize, dim: usize) -> Vec<Vec<f64>> {
    let n = rng.gen_range(1..max_n);
    (0..n).map(|_| (0..dim).map(|_| rng.gen_f64(-1000.0, 1000.0)).collect()).collect()
}

/// CF additivity: building one CF incrementally equals summing the CFs of
/// any split of the points.
#[test]
fn additivity_holds_for_any_split() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let points = random_points(&mut rng, 60, 3);
        let split = rng.gen_range_inclusive(0..=points.len());
        let mut whole = Cf::empty(3);
        for p in &points {
            whole.add_point(p);
        }
        let mut left = Cf::empty(3);
        let mut right = Cf::empty(3);
        for (i, p) in points.iter().enumerate() {
            if i < split {
                left.add_point(p);
            } else {
                right.add_point(p);
            }
        }
        let merged = left + right;
        assert_eq!(merged.n(), whole.n(), "seed {seed}");
        for (a, b) in merged.ls().iter().zip(whole.ls()) {
            assert!((a - b).abs() < 1e-6, "seed {seed}");
        }
        assert!((merged.ss() - whole.ss()).abs() / whole.ss().max(1.0) < 1e-9, "seed {seed}");
    }
}

/// The predicted merged diameter always equals the actual merged diameter.
#[test]
fn merged_diameter_prediction_is_exact() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(100 + seed);
        let a = random_points(&mut rng, 20, 2);
        let b = random_points(&mut rng, 20, 2);
        let mut cfa = Cf::empty(2);
        for p in &a {
            cfa.add_point(p);
        }
        let mut cfb = Cf::empty(2);
        for p in &b {
            cfb.add_point(p);
        }
        let predicted = cfa.merged_diameter(&cfb);
        let merged = cfa + cfb;
        assert!((predicted - merged.diameter()).abs() < 1e-6, "seed {seed}");
        assert!(predicted >= 0.0, "seed {seed}");
    }
}

/// The CF-tree preserves point counts and the centroid of the whole data
/// set, for any insertion order and parameters.
#[test]
fn tree_preserves_mass_and_mean() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(200 + seed);
        let points = random_points(&mut rng, 120, 2);
        let leaf_capacity = rng.gen_range(1..6);
        let branching = rng.gen_range(2..6);
        let threshold = rng.gen_f64(0.0, 100.0);
        let mut tree = CfTree::new(
            2,
            BirchParams {
                branching,
                leaf_capacity,
                initial_threshold: threshold,
                max_nodes: 1 << 20,
                threshold_growth: 1.3,
            },
        );
        let mut whole = Cf::empty(2);
        for p in &points {
            tree.insert_point(p);
            whole.add_point(p);
        }
        let total: u64 = tree.leaf_entries().iter().map(Cf::n).sum();
        assert_eq!(total, points.len() as u64, "seed {seed}");
        // Sum of leaf CFs equals the whole CF.
        let mut sum = Cf::empty(2);
        for cf in tree.leaf_entries() {
            sum += &cf;
        }
        for (a, b) in sum.ls().iter().zip(whole.ls()) {
            assert!((a - b).abs() < 1e-6, "seed {seed}");
        }
    }
}

/// Condensation always reaches the target and never loses points.
#[test]
fn condense_reaches_any_target() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(300 + seed);
        let points = random_points(&mut rng, 150, 2);
        let k = rng.gen_range(1..40);
        let mut ds = Dataset::new(2).unwrap();
        for p in &points {
            ds.push(p).unwrap();
        }
        let cfs = birch(&ds, k, &BirchParams::default());
        assert!(!cfs.is_empty(), "seed {seed}");
        assert!(cfs.len() <= k, "seed {seed}");
        assert_eq!(cfs.iter().map(Cf::n).sum::<u64>(), points.len() as u64, "seed {seed}");
    }
}

/// Leaf entries respect the final threshold: every multi-point entry's
/// diameter is at most T (entries created as singletons trivially comply).
#[test]
fn leaf_entries_respect_threshold() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(400 + seed);
        let points = random_points(&mut rng, 100, 2);
        let threshold = rng.gen_f64(0.1, 50.0);
        let mut tree = CfTree::new(
            2,
            BirchParams {
                initial_threshold: threshold,
                max_nodes: 1 << 20,
                ..BirchParams::default()
            },
        );
        for p in &points {
            tree.insert_point(p);
        }
        for cf in tree.leaf_entries() {
            assert!(cf.diameter() <= threshold + 1e-9, "seed {seed}");
        }
    }
}
