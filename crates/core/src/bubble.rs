//! The Data Bubble itself: Definition 5 (generic) specialized to Euclidean
//! vector data per Definition 10, with the expected k-NN distance of
//! Lemma 1 and the sufficient-statistics construction of Corollary 1.

use std::fmt;

use db_birch::Cf;
use db_spatial::Dataset;

/// Errors of fallible Data Bubble construction (the `try_*` constructors).
/// Produced when *untrusted* summaries reach the bubble layer; the
/// panicking constructors remain as thin wrappers for validated input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BubbleError {
    /// The representative vector was empty.
    ZeroDimension,
    /// The bubble claimed to summarize zero points.
    ZeroCount,
    /// A representative coordinate was NaN or ±∞.
    NonFiniteRepresentative {
        /// Index of the offending coordinate.
        coord: usize,
    },
    /// The extent was negative, NaN or ±∞.
    InvalidExtent,
    /// A bubble was requested from an empty CF or an empty id set.
    EmptySummary,
    /// Bubbles of inconsistent dimensionality were combined into one space.
    MixedDimensions {
        /// Dimensionality of the first bubble.
        expected: usize,
        /// Dimensionality of the offending bubble.
        got: usize,
    },
    /// An operation needed at least one bubble.
    EmptyBubbleSet,
}

impl fmt::Display for BubbleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BubbleError::ZeroDimension => {
                write!(f, "representative must have positive dimension")
            }
            BubbleError::ZeroCount => {
                write!(f, "a Data Bubble must summarize at least one point")
            }
            BubbleError::NonFiniteRepresentative { coord } => {
                write!(f, "representative coordinate {coord} is not finite")
            }
            BubbleError::InvalidExtent => {
                write!(f, "extent must be non-negative and finite")
            }
            BubbleError::EmptySummary => {
                write!(f, "cannot build a Data Bubble from an empty summary")
            }
            BubbleError::MixedDimensions { expected, got } => {
                write!(
                    f,
                    "all bubbles must share one dimensionality (got {got}, expected {expected})"
                )
            }
            BubbleError::EmptyBubbleSet => write!(f, "cannot cluster an empty bubble set"),
        }
    }
}

impl std::error::Error for BubbleError {}

/// A Data Bubble `B = (rep, n, extent, nndist)` over Euclidean vector data:
///
/// * `rep` — the representative (the mean of the summarized points),
/// * `n` — the number of summarized points,
/// * `extent` — a radius around `rep` containing most of the points (the
///   average pairwise distance, Definition 10),
/// * `nndist(k)` — the expected k-nearest-neighbor distance under the
///   uniform-sphere assumption, `(k/n)^(1/d) · extent` (Lemma 1).
#[derive(Debug, Clone, PartialEq)]
pub struct DataBubble {
    rep: Vec<f64>,
    n: u64,
    extent: f64,
}

impl DataBubble {
    /// Fallible construction from raw components: validates dimensionality,
    /// point count, representative finiteness and extent sanity. This is the
    /// entry point for *untrusted* summaries (e.g. anything produced from
    /// external input); [`DataBubble::new`] is a thin panicking wrapper for
    /// already-validated input.
    ///
    /// # Errors
    ///
    /// Returns a [`BubbleError`] describing the first violated invariant.
    pub fn try_new(rep: Vec<f64>, n: u64, extent: f64) -> Result<Self, BubbleError> {
        if rep.is_empty() {
            return Err(BubbleError::ZeroDimension);
        }
        if n == 0 {
            return Err(BubbleError::ZeroCount);
        }
        if let Some(coord) = rep.iter().position(|x| !x.is_finite()) {
            return Err(BubbleError::NonFiniteRepresentative { coord });
        }
        if !(extent >= 0.0 && extent.is_finite()) {
            return Err(BubbleError::InvalidExtent);
        }
        Ok(Self { rep, n, extent })
    }

    /// Builds a bubble from raw components. **Validated input only** — use
    /// [`DataBubble::try_new`] for data that crossed a trust boundary.
    ///
    /// # Panics
    ///
    /// Panics if `rep` is empty, `n == 0`, or `extent` is negative/NaN.
    pub fn new(rep: Vec<f64>, n: u64, extent: f64) -> Self {
        match Self::try_new(rep, n, extent) {
            Ok(b) => b,
            Err(BubbleError::ZeroDimension) => {
                panic!("representative must have positive dimension")
            }
            Err(BubbleError::ZeroCount) => {
                panic!("a Data Bubble must summarize at least one point")
            }
            Err(BubbleError::InvalidExtent) => panic!("extent must be non-negative and finite"),
            Err(e) => panic!("invalid Data Bubble: {e}"),
        }
    }

    /// Fallible form of [`DataBubble::from_cf`]: Corollary 1 from sufficient
    /// statistics, rejecting empty CFs and non-finite derived quantities
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`BubbleError::EmptySummary`] for an empty CF, or the error
    /// from [`DataBubble::try_new`] when the centroid/diameter are degenerate.
    pub fn try_from_cf(cf: &Cf) -> Result<Self, BubbleError> {
        if cf.is_empty() {
            return Err(BubbleError::EmptySummary);
        }
        Self::try_new(cf.centroid(), cf.n(), cf.diameter())
    }

    /// Corollary 1: builds a bubble from sufficient statistics `(n, LS, ss)`
    /// with `rep = LS/n` and `extent = sqrt(2·ssd/(n−1))` (the numerically
    /// stable equivalent of `sqrt((2·n·ss − 2·|LS|²)/(n·(n−1)))`).
    /// **Validated input only** — use [`DataBubble::try_from_cf`] for CFs
    /// built from untrusted data.
    ///
    /// # Panics
    ///
    /// Panics if the CF is empty.
    pub fn from_cf(cf: &Cf) -> Self {
        assert!(!cf.is_empty(), "cannot build a Data Bubble from an empty CF");
        Self { rep: cf.centroid(), n: cf.n(), extent: cf.diameter() }
    }

    /// Fallible form of [`DataBubble::from_points`].
    ///
    /// # Errors
    ///
    /// Returns [`BubbleError::EmptySummary`] when `ids` is empty.
    pub fn try_from_points(ds: &Dataset, ids: &[usize]) -> Result<Self, BubbleError> {
        if ids.is_empty() {
            return Err(BubbleError::EmptySummary);
        }
        let mut cf = Cf::empty(ds.dim());
        for &i in ids {
            cf.add_point(ds.point(i));
        }
        Self::try_from_cf(&cf)
    }

    /// Builds a bubble directly from a set of points (the "straight
    /// forward" computation mentioned after Definition 10). **Validated
    /// input only** — use [`DataBubble::try_from_points`] for untrusted ids.
    ///
    /// # Panics
    ///
    /// Panics if `ids` is empty.
    pub fn from_points(ds: &Dataset, ids: &[usize]) -> Self {
        assert!(!ids.is_empty(), "cannot build a Data Bubble from no points");
        let mut cf = Cf::empty(ds.dim());
        for &i in ids {
            cf.add_point(ds.point(i));
        }
        Self::from_cf(&cf)
    }

    /// The representative object (the mean vector).
    #[inline]
    pub fn rep(&self) -> &[f64] {
        &self.rep
    }

    /// Number of points summarized.
    #[inline]
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The extent (radius estimate).
    #[inline]
    pub fn extent(&self) -> f64 {
        self.extent
    }

    /// Dimensionality of the summarized points.
    #[inline]
    pub fn dim(&self) -> usize {
        self.rep.len()
    }

    /// Lemma 1: the expected k-NN distance inside the bubble,
    /// `(k/n)^(1/d) · extent`, clamped at `extent` for `k ≥ n`.
    ///
    /// ```
    /// use data_bubbles::DataBubble;
    /// // 100 points, 2-d, extent 10: nndist(k) = sqrt(k/100) * 10.
    /// let b = DataBubble::new(vec![0.0, 0.0], 100, 10.0);
    /// assert!((b.nndist(25) - 5.0).abs() < 1e-12);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn nndist(&self, k: u64) -> f64 {
        assert!(k >= 1, "k-NN distance needs k >= 1");
        if self.n <= 1 {
            return 0.0;
        }
        let ratio = (k.min(self.n) as f64) / (self.n as f64);
        ratio.powf(1.0 / self.dim() as f64) * self.extent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_cf_matches_corollary_1() {
        // Points 0 and 2 on a line: rep = 1, extent = pairwise distance 2.
        let cf = Cf::from_point(&[0.0]) + Cf::from_point(&[2.0]);
        let b = DataBubble::from_cf(&cf);
        assert_eq!(b.rep(), &[1.0]);
        assert_eq!(b.n(), 2);
        assert!((b.extent() - 2.0).abs() < 1e-12);
        assert_eq!(b.dim(), 1);
    }

    #[test]
    fn from_points_equals_from_cf() {
        let ds =
            Dataset::from_rows(2, &[&[0.0, 0.0], &[1.0, 0.0], &[0.0, 1.0], &[9.0, 9.0]]).unwrap();
        let b = DataBubble::from_points(&ds, &[0, 1, 2]);
        let mut cf = Cf::empty(2);
        for i in 0..3 {
            cf.add_point(ds.point(i));
        }
        assert_eq!(b, DataBubble::from_cf(&cf));
    }

    #[test]
    fn nndist_closed_form() {
        // n=100 points in a 2-d bubble with extent 10:
        // nndist(k) = (k/100)^(1/2) * 10.
        let b = DataBubble::new(vec![0.0, 0.0], 100, 10.0);
        assert!((b.nndist(1) - 1.0).abs() < 1e-12);
        assert!((b.nndist(4) - 2.0).abs() < 1e-12);
        assert!((b.nndist(25) - 5.0).abs() < 1e-12);
        assert!((b.nndist(100) - 10.0).abs() < 1e-12);
        // k beyond n clamps at the extent.
        assert!((b.nndist(1000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn nndist_monotone_in_k() {
        let b = DataBubble::new(vec![0.0; 3], 50, 7.0);
        let mut prev = 0.0;
        for k in 1..=60 {
            let d = b.nndist(k);
            assert!(d >= prev, "nndist not monotone at k={k}");
            prev = d;
        }
    }

    #[test]
    fn nndist_scales_with_dimension() {
        // For fixed k/n < 1, (k/n)^(1/d) grows with d: sparser
        // neighbourhoods in high dimensions.
        let b2 = DataBubble::new(vec![0.0; 2], 100, 1.0);
        let b10 = DataBubble::new(vec![0.0; 10], 100, 1.0);
        assert!(b10.nndist(5) > b2.nndist(5));
    }

    #[test]
    fn singleton_bubble_is_degenerate() {
        let b = DataBubble::new(vec![3.0, 4.0], 1, 0.0);
        assert_eq!(b.nndist(1), 0.0);
        assert_eq!(b.nndist(5), 0.0);
        assert_eq!(b.extent(), 0.0);
    }

    #[test]
    fn try_new_rejects_each_bad_component() {
        assert_eq!(DataBubble::try_new(vec![], 1, 0.0), Err(BubbleError::ZeroDimension));
        assert_eq!(DataBubble::try_new(vec![0.0], 0, 0.0), Err(BubbleError::ZeroCount));
        assert_eq!(
            DataBubble::try_new(vec![0.0, f64::NAN], 1, 0.0),
            Err(BubbleError::NonFiniteRepresentative { coord: 1 })
        );
        assert_eq!(DataBubble::try_new(vec![0.0], 1, -1.0), Err(BubbleError::InvalidExtent));
        assert_eq!(DataBubble::try_new(vec![0.0], 1, f64::NAN), Err(BubbleError::InvalidExtent));
        assert_eq!(
            DataBubble::try_new(vec![0.0], 1, f64::INFINITY),
            Err(BubbleError::InvalidExtent)
        );
        assert!(DataBubble::try_new(vec![0.0], 1, 0.0).is_ok());
    }

    #[test]
    fn try_from_cf_matches_panicking_form() {
        let cf = Cf::from_point(&[0.0]) + Cf::from_point(&[2.0]);
        assert_eq!(DataBubble::try_from_cf(&cf).unwrap(), DataBubble::from_cf(&cf));
        assert_eq!(DataBubble::try_from_cf(&Cf::empty(2)), Err(BubbleError::EmptySummary));
    }

    #[test]
    fn try_from_points_rejects_empty_ids() {
        let ds = Dataset::from_rows(2, &[&[0.0, 0.0], &[1.0, 0.0]]).unwrap();
        assert_eq!(DataBubble::try_from_points(&ds, &[]), Err(BubbleError::EmptySummary));
        assert_eq!(
            DataBubble::try_from_points(&ds, &[0, 1]).unwrap(),
            DataBubble::from_points(&ds, &[0, 1])
        );
    }

    #[test]
    fn bubble_error_display_is_informative() {
        assert!(BubbleError::ZeroCount.to_string().contains("at least one point"));
        assert!(BubbleError::NonFiniteRepresentative { coord: 3 }.to_string().contains('3'));
        assert!(BubbleError::MixedDimensions { expected: 2, got: 5 }.to_string().contains('5'));
        assert!(BubbleError::EmptyBubbleSet.to_string().contains("empty bubble set"));
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn zero_n_panics() {
        DataBubble::new(vec![0.0], 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "k-NN distance needs")]
    fn zero_k_panics() {
        DataBubble::new(vec![0.0], 10, 1.0).nndist(0);
    }

    #[test]
    #[should_panic(expected = "empty CF")]
    fn empty_cf_panics() {
        DataBubble::from_cf(&Cf::empty(2));
    }
}
