//! Definition 6 (distance between Data Bubbles) and Definition 9 (virtual
//! reachability).

use crate::bubble::DataBubble;

/// Definition 6: the distance between two Data Bubbles, designed to
/// "approximate the distance of the two closest points in the Data
/// Bubbles":
///
/// * `0` when both are the same bubble (`same_object` must then be true —
///   distinct bubbles at identical positions are *not* the same object);
/// * non-overlapping (`dist(rep_B, rep_C) − (e_B + e_C) ≥ 0`):
///   `dist(rep_B, rep_C) − (e_B + e_C) + nndist(1,B) + nndist(1,C)`;
/// * overlapping: `max(nndist(1,B), nndist(1,C))`.
///
/// ```
/// use data_bubbles::{bubble_distance, DataBubble};
/// let b = DataBubble::new(vec![0.0, 0.0], 100, 2.0);
/// let c = DataBubble::new(vec![10.0, 0.0], 25, 3.0);
/// // Non-overlapping: 10 - (2+3) + nndist terms.
/// assert!((bubble_distance(&b, &c, false) - 5.8).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if the bubbles have different dimensionality.
pub fn bubble_distance(b: &DataBubble, c: &DataBubble, same_object: bool) -> f64 {
    if same_object {
        return 0.0;
    }
    assert_eq!(b.dim(), c.dim(), "dimensionality mismatch");
    bubble_distance_from_parts(
        db_spatial::euclidean(b.rep(), c.rep()),
        b.extent(),
        c.extent(),
        b.nndist(1),
        c.nndist(1),
    )
}

/// The combine step of Definition 6 on precomputed parts: the center
/// distance, both extents and both expected 1-NN distances.
///
/// This is the exact arithmetic of [`bubble_distance`] (same operand
/// order, so the same bits); it exists so batched callers — the
/// [`crate::BubbleDistanceMatrix`] row build feeds whole rows of center
/// distances from the block kernel — can hoist the per-bubble parts out
/// of the O(k²) loop without diverging from the scalar path.
#[inline]
pub fn bubble_distance_from_parts(
    center_dist: f64,
    extent_b: f64,
    extent_c: f64,
    nn1_b: f64,
    nn1_c: f64,
) -> f64 {
    let gap = center_dist - (extent_b + extent_c);
    if gap >= 0.0 {
        gap + nn1_b + nn1_c
    } else {
        nn1_b.max(nn1_c)
    }
}

/// Definition 9: the virtual reachability of the `n` points described by a
/// bubble — the reachability value plotted for the 2nd..n-th member when a
/// bubble is expanded:
///
/// * `nndist(MinPts, B)` when the bubble holds at least MinPts points
///   (inside the bubble, most points' true reachability is close to their
///   MinPts-NN distance);
/// * otherwise the bubble's core-distance (computed by the caller from the
///   whole bubble set, Definition 7) — pass it as `core_distance`.
///
/// # Panics
///
/// Panics if `min_pts == 0`.
pub fn virtual_reachability(b: &DataBubble, min_pts: usize, core_distance: f64) -> f64 {
    assert!(min_pts >= 1, "MinPts must be positive");
    if b.n() >= min_pts as u64 {
        b.nndist(min_pts as u64)
    } else {
        core_distance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bubble(x: f64, n: u64, extent: f64) -> DataBubble {
        DataBubble::new(vec![x, 0.0], n, extent)
    }

    #[test]
    fn same_object_distance_is_zero() {
        let b = bubble(0.0, 10, 1.0);
        assert_eq!(bubble_distance(&b, &b, true), 0.0);
    }

    #[test]
    fn identical_position_but_distinct_objects_is_not_zero() {
        let b = bubble(0.0, 100, 1.0);
        let c = bubble(0.0, 100, 1.0);
        let d = bubble_distance(&b, &c, false);
        // Overlapping case: max of the expected 1-NN distances.
        assert!((d - b.nndist(1)).abs() < 1e-12);
        assert!(d > 0.0);
    }

    #[test]
    fn non_overlapping_case_hand_checked() {
        // Centers 10 apart, extents 2 and 3 -> gap 5; nndist(1) terms:
        // (1/100)^(1/2)*2 = 0.2 and (1/25)^(1/2)*3 = 0.6.
        let b = bubble(0.0, 100, 2.0);
        let c = bubble(10.0, 25, 3.0);
        let d = bubble_distance(&b, &c, false);
        assert!((d - (5.0 + 0.2 + 0.6)).abs() < 1e-12);
    }

    #[test]
    fn overlapping_case_takes_max_nndist() {
        let b = bubble(0.0, 100, 4.0);
        let c = bubble(1.0, 25, 3.0); // centers 1 apart < 4+3
        let d = bubble_distance(&b, &c, false);
        let expected = (0.01f64).sqrt() * 4.0_f64;
        let expected = expected.max((0.04f64).sqrt() * 3.0);
        assert!((d - expected).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let b = bubble(0.0, 50, 2.0);
        let c = bubble(7.0, 10, 1.0);
        assert_eq!(bubble_distance(&b, &c, false), bubble_distance(&c, &b, false));
    }

    #[test]
    fn singleton_bubbles_reduce_to_point_distance() {
        // n=1 bubbles: extent 0, nndist(1) = 0 -> Def. 6 gives the plain
        // Euclidean distance between the representatives.
        let b = DataBubble::new(vec![0.0, 0.0], 1, 0.0);
        let c = DataBubble::new(vec![3.0, 4.0], 1, 0.0);
        assert!((bubble_distance(&b, &c, false) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn touching_boundary_is_non_overlapping() {
        // gap exactly 0: non-overlap branch applies (>= 0).
        let b = bubble(0.0, 4, 1.0);
        let c = bubble(2.0, 4, 1.0);
        let d = bubble_distance(&b, &c, false);
        assert!((d - (b.nndist(1) + c.nndist(1))).abs() < 1e-12);
    }

    #[test]
    fn virtual_reachability_large_bubble_uses_nndist() {
        let b = bubble(0.0, 100, 2.0);
        let v = virtual_reachability(&b, 5, 99.0);
        assert!((v - b.nndist(5)).abs() < 1e-12);
    }

    #[test]
    fn virtual_reachability_small_bubble_uses_core_distance() {
        let b = bubble(0.0, 3, 1.0);
        assert_eq!(virtual_reachability(&b, 5, 42.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "MinPts must be positive")]
    fn virtual_reachability_rejects_zero_minpts() {
        virtual_reachability(&bubble(0.0, 3, 1.0), 0, 1.0);
    }
}
