//! Classical hierarchical clustering on Data Bubbles (paper §6: "When
//! applying a classical hierarchical clustering algorithm such as the
//! single link method to Data Bubbles, we do not need more information
//! than defined above") — the bubble distance of Definition 6 drives an
//! ordinary agglomerative algorithm, and the resulting dendrogram is
//! expanded back to the original objects via the classification.

use db_hierarchical::{agglomerative_from_fn, Dendrogram, Linkage};

use crate::bubble::BubbleError;
use crate::distance::bubble_distance;
use crate::space::BubbleSpace;

/// Fallible form of [`bubble_dendrogram`] for bubble sets of unknown size.
///
/// # Errors
///
/// Returns [`BubbleError::EmptyBubbleSet`] when the space is empty.
pub fn try_bubble_dendrogram(
    space: &BubbleSpace,
    linkage: Linkage,
) -> Result<Dendrogram, BubbleError> {
    let bubbles = space.bubbles();
    if bubbles.is_empty() {
        return Err(BubbleError::EmptyBubbleSet);
    }
    Ok(agglomerative_from_fn(bubbles.len(), linkage, |a, b| {
        bubble_distance(&bubbles[a], &bubbles[b], a == b)
    }))
}

/// Builds the hierarchical clustering of a bubble set under the given
/// linkage, using the Definition 6 distance. **Validated input only** —
/// use [`try_bubble_dendrogram`] when the space may be empty.
///
/// # Panics
///
/// Panics if the space is empty.
pub fn bubble_dendrogram(space: &BubbleSpace, linkage: Linkage) -> Dendrogram {
    match try_bubble_dendrogram(space, linkage) {
        Ok(d) => d,
        Err(_) => panic!("cannot cluster an empty bubble set"),
    }
}

/// Cuts a bubble dendrogram into `k` clusters and assigns every original
/// object the label of its bubble — the dendrogram analogue of the §5
/// expansion ("we can apply an analogous technique to expand a dendrogram").
///
/// `members[j]` lists the original object ids classified to bubble `j`;
/// labels are returned per original object id.
///
/// # Panics
///
/// Panics if `members.len()` differs from the number of dendrogram leaves.
pub fn expand_bubble_cut(dendrogram: &Dendrogram, members: &[Vec<usize>], k: usize) -> Vec<i32> {
    let leaf_labels = dendrogram.cut(k);
    dendrogram.expand_cut(&leaf_labels, members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::DataBubble;

    fn two_group_space() -> BubbleSpace {
        BubbleSpace::new(vec![
            DataBubble::new(vec![0.0, 0.0], 30, 1.0),
            DataBubble::new(vec![2.0, 0.0], 30, 1.0),
            DataBubble::new(vec![100.0, 0.0], 30, 1.0),
            DataBubble::new(vec![102.0, 0.0], 30, 1.0),
        ])
    }

    #[test]
    fn single_link_merges_groups_last() {
        let d = bubble_dendrogram(&two_group_space(), Linkage::Single);
        let heights: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        // Two small within-group merges, one large between-group merge.
        assert!(heights[0] < 5.0 && heights[1] < 5.0);
        assert!(heights[2] > 90.0);
        let cut = d.cut(2);
        assert_eq!(cut[0], cut[1]);
        assert_eq!(cut[2], cut[3]);
        assert_ne!(cut[0], cut[2]);
    }

    #[test]
    fn complete_linkage_also_works() {
        let d = bubble_dendrogram(&two_group_space(), Linkage::Complete);
        assert_eq!(d.n_leaves(), 4);
        let cut = d.cut(2);
        assert_eq!(cut[0], cut[1]);
        assert_ne!(cut[0], cut[2]);
    }

    #[test]
    fn expansion_assigns_bubble_labels_to_members() {
        let d = bubble_dendrogram(&two_group_space(), Linkage::Single);
        let members = vec![vec![0, 1], vec![2], vec![3, 4], vec![5]];
        let labels = expand_bubble_cut(&d, &members, 2);
        assert_eq!(labels.len(), 6);
        assert_eq!(labels[0], labels[2]); // bubbles 0 and 1 share a cluster
        assert_ne!(labels[0], labels[3]); // bubble 2 is in the other group
        assert_eq!(labels[3], labels[5]);
    }

    #[test]
    #[should_panic(expected = "empty bubble set")]
    fn empty_space_panics() {
        bubble_dendrogram(&BubbleSpace::new(vec![]), Linkage::Single);
    }

    #[test]
    fn try_form_returns_typed_error_on_empty_space() {
        use crate::bubble::BubbleError;
        let err = try_bubble_dendrogram(&BubbleSpace::new(vec![]), Linkage::Single).unwrap_err();
        assert_eq!(err, BubbleError::EmptyBubbleSet);
    }
}
