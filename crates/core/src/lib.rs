//! **Data Bubbles** — quality preserving performance boosting for
//! hierarchical clustering (Breunig, Kriegel, Kröger, Sander; SIGMOD 2001).
//!
//! The paper scales OPTICS to very large databases by a three-step
//! procedure: (1) compress the data into `k` representative objects (via
//! BIRCH clustering features or random sampling + NN classification),
//! (2) cluster only the representatives, (3) recover the clustering
//! structure of the whole data set. The naive version of this plan suffers
//! from three problems — *size distortion*, *lost objects* and *structural
//! distortion* — and this crate implements both the problems' demonstration
//! pipelines and their solution:
//!
//! * [`DataBubble`] — the compressed item `(rep, n, extent, nndist)`
//!   (Definitions 5 and 10, Lemma 1, Corollary 1);
//! * [`bubble_distance`] — the distance between two Data Bubbles that
//!   approximates the distance of their closest member points
//!   (Definition 6);
//! * [`BubbleSpace`] — an [`db_optics::OpticsSpace`] whose core- and
//!   reachability-distances follow Definitions 7–8, so the unmodified
//!   OPTICS walk runs directly on bubbles;
//! * [`virtual_reachability`] — the estimated in-bubble reachability used
//!   when expanding bubbles back into their member objects (Definition 9);
//! * the six pipelines of the paper's evaluation
//!   ([`pipeline::run_pipeline`] and the named wrappers
//!   [`pipeline::optics_sa_bubbles`] etc.): `OPTICS-SA/CF` ×
//!   `naive/weighted/Bubbles`.
//!
//! # Quickstart
//!
//! ```
//! use data_bubbles::pipeline::{optics_sa_bubbles, PipelineConfig};
//! use db_optics::OpticsParams;
//! use db_spatial::Dataset;
//!
//! // 2,000 points in two far-apart groups.
//! let mut ds = Dataset::new(2).unwrap();
//! for i in 0..1000 {
//!     let (x, y) = ((i % 100) as f64 * 0.1, (i / 100) as f64 * 0.1);
//!     ds.push(&[x, y]).unwrap();
//!     ds.push(&[x + 100.0, y]).unwrap();
//! }
//! let out = optics_sa_bubbles(&ds, 50, 42, &OpticsParams { eps: f64::INFINITY, min_pts: 10 })
//!     .unwrap();
//! // Every original object reappears in the expanded cluster ordering.
//! let expanded = out.expanded.as_ref().unwrap();
//! assert_eq!(expanded.len(), ds.len());
//! // Cutting the expanded plot recovers the two groups.
//! let labels = expanded.extract_dbscan(1.0);
//! let k = labels.iter().copied().filter(|&l| l >= 0).collect::<std::collections::HashSet<_>>();
//! assert_eq!(k.len(), 2);
//! ```

#![warn(missing_docs)]

mod bubble;
mod distance;
pub mod hierarchy;
mod matrix;
pub mod metric_bubble;
#[cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
pub mod pipeline;
mod space;

pub use bubble::{BubbleError, DataBubble};
pub use distance::{bubble_distance, bubble_distance_from_parts, virtual_reachability};
pub use hierarchy::{bubble_dendrogram, expand_bubble_cut, try_bubble_dendrogram};
pub use matrix::{BubbleDistanceMatrix, DEFAULT_MAX_MATRIX_K};
pub use metric_bubble::{compress_metric, MetricBubbleSpace, MetricCompression, MetricDataBubble};
pub use space::BubbleSpace;
