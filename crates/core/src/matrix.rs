//! [`BubbleDistanceMatrix`]: the symmetric k×k bubble-distance matrix,
//! computed once (in parallel row blocks) and served as sorted rows.
//!
//! The OPTICS walk over bubbles asks for the ε-neighbourhood of every
//! bubble at least once, and sub-MinPts expansion may ask for unbounded
//! neighbourhoods again — each query an exhaustive O(k) scan plus an
//! O(k log k) sort. [`crate::bubble_distance`] is exactly symmetric in IEEE
//! floats ((x−y)² == (y−x)², commutative additions, `max`), so the whole
//! matrix can be evaluated once up front; every later query is then a
//! binary search for the ε prefix of a pre-sorted row.
//!
//! # Determinism contract
//!
//! Rows are independent: each worker thread fills a pre-assigned
//! contiguous block of rows, and the per-row content (distances and the
//! `(dist, id)` sort) never depends on the thread layout. The build is
//! therefore bit-for-bit identical for every thread count, and a
//! matrix-served neighbourhood is bit-for-bit identical to the on-the-fly
//! scan in [`crate::BubbleSpace`] (same distances, same comparator, and
//! the ε filter `d <= eps` selects exactly the sorted row's prefix).

use std::num::NonZeroUsize;

use db_spatial::{id_u32, Neighbor};
use db_supervise::{catch_shared, fault, first_stop, panic_message, Stop, Supervisor};

use crate::bubble::DataBubble;
use crate::distance::bubble_distance_from_parts;

/// Default cap on the number of bubbles for which the matrix is
/// precomputed. A row costs 12 bytes per entry (`u32` id + `f64`
/// distance), so the cap bounds the matrix at ~3 GiB; the paper's
/// operating point is k ≤ a few thousand (§8: "the purpose of our
/// approach is to make k very small"), far below it. Above the cap the
/// space falls back to on-the-fly evaluation with identical results.
pub const DEFAULT_MAX_MATRIX_K: usize = 16_384;

/// A precomputed symmetric bubble-distance matrix with each row sorted
/// ascending by `(distance, id)` — the neighbourhood order of
/// [`crate::BubbleSpace`].
#[derive(Debug, Clone)]
pub struct BubbleDistanceMatrix {
    k: usize,
    /// Row-major bubble ids, row `i` sorted by `(dists[i][j], id)`.
    ids: Vec<u32>,
    /// Row-major distances, each row ascending.
    dists: Vec<f64>,
}

impl BubbleDistanceMatrix {
    /// Builds the matrix over `bubbles` with `threads` workers (`None` =
    /// available parallelism). The k² distance evaluations are counted
    /// under `optics.distance_calls`, exactly as the on-the-fly scans they
    /// replace would have been.
    ///
    /// # Panics
    ///
    /// Panics if `bubbles` is empty or `k * k` entries would overflow
    /// `usize`.
    pub fn build(bubbles: &[DataBubble], threads: Option<NonZeroUsize>) -> Self {
        match Self::build_supervised(bubbles, threads, &Supervisor::unlimited()) {
            Ok(m) => m,
            Err(stop) => panic!("unsupervised matrix build stopped: {stop}"),
        }
    }

    /// [`BubbleDistanceMatrix::build`] under supervision: the supervisor is
    /// consulted before every row (a row is O(k log k), so the reaction
    /// latency stays tiny against the 50ms target) and worker panics are
    /// captured. On `Err` the whole matrix is discarded; on `Ok` the
    /// result is bit-for-bit the unsupervised one.
    ///
    /// # Errors
    ///
    /// [`Stop`] when cancelled, past the deadline, or a worker panicked.
    ///
    /// # Panics
    ///
    /// Panics if `bubbles` is empty or `k * k` entries would overflow
    /// `usize`.
    pub fn build_supervised(
        bubbles: &[DataBubble],
        threads: Option<NonZeroUsize>,
        sup: &Supervisor,
    ) -> Result<Self, Stop> {
        let k = bubbles.len();
        assert!(k > 0, "cannot build a distance matrix over zero bubbles");
        let cells = k.checked_mul(k).expect("k * k overflows usize");
        let mut span = db_obs::span!("optics.matrix_build");
        let threads = resolve_threads(threads, k);
        db_obs::gauge!("optics.matrix_threads").set(threads as i64);

        // Hoist the per-bubble parts of Definition 6 out of the O(k²)
        // loop: a flat row-major block of representatives for the batched
        // center-distance kernel, plus extents and expected 1-NN
        // distances. Pure per-bubble functions, so hoisting is bit-neutral.
        let dim = bubbles[0].dim();
        let mut reps_flat = Vec::with_capacity(k * dim);
        let mut extents = Vec::with_capacity(k);
        let mut nn1 = Vec::with_capacity(k);
        for b in bubbles {
            assert_eq!(b.dim(), dim, "dimensionality mismatch");
            reps_flat.extend_from_slice(b.rep());
            extents.push(b.extent());
            nn1.push(b.nndist(1));
        }
        let reps_flat = &reps_flat;
        let (extents, nn1) = (&extents, &nn1);

        let mut ids = vec![0u32; cells];
        let mut dists = vec![0f64; cells];
        // `scratch` holds one row of squared center distances; each worker
        // brings its own so rows stay independent.
        let fill_row = |i: usize,
                        id_row: &mut [u32],
                        dist_row: &mut [f64],
                        scratch: &mut Vec<f64>| {
            scratch.resize(k, 0.0);
            db_spatial::dists_to_block(&reps_flat[i * dim..(i + 1) * dim], reps_flat, dim, scratch);
            let (e_i, n_i) = (extents[i], nn1[i]);
            let mut row: Vec<(f64, u32)> = scratch
                .iter()
                .enumerate()
                // Lossless: `j < k` and the compressors cap k at the
                // dataset length, which `Dataset` bounds by `u32` ids.
                .map(|(j, &d2)| {
                    let d = if i == j {
                        0.0
                    } else {
                        // `d2.sqrt()` is bit-identical to the scalar path's
                        // `euclidean(rep_i, rep_j)` (shared kernel).
                        // db-audit: allow(no-naked-sqrt) -- flush site: Def. 10 bubble
                        // distance is defined in true space; one conversion per matrix
                        // entry, counted by the kernel's sqrt accounting.
                        bubble_distance_from_parts(d2.sqrt(), e_i, extents[j], n_i, nn1[j])
                    };
                    (d, id_u32(j))
                })
                .collect();
            // Same comparator as the on-the-fly neighbourhood sort.
            row.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (slot, (d, j)) in id_row.iter_mut().zip(dist_row.iter_mut()).zip(row) {
                *slot.0 = j;
                *slot.1 = d;
            }
        };

        if threads <= 1 {
            let mut scratch = Vec::new();
            for i in 0..k {
                sup.check()?;
                fill_row(
                    i,
                    &mut ids[i * k..(i + 1) * k],
                    &mut dists[i * k..(i + 1) * k],
                    &mut scratch,
                );
            }
        } else {
            // Contiguous row blocks per thread; rows are independent, so
            // the result cannot depend on this schedule. Worker time is
            // linked back into the build span (child-time, same trace run),
            // and each body runs under panic capture so one bad block
            // surfaces as `Stop::Panicked` instead of unwinding the scope.
            let parent = span.handle();
            let rows_per_thread = k.div_ceil(threads);
            let fill_row = &fill_row;
            let mut results: Vec<Result<(), Stop>> = Vec::with_capacity(threads);
            std::thread::scope(|scope| {
                let id_blocks = ids.chunks_mut(rows_per_thread * k);
                let dist_blocks = dists.chunks_mut(rows_per_thread * k);
                let handles: Vec<_> = id_blocks
                    .zip(dist_blocks)
                    .enumerate()
                    .map(|(t, (id_block, dist_block))| {
                        let parent = &parent;
                        scope.spawn(move || {
                            catch_shared(|| {
                                let _s = db_obs::span_linked!("optics.matrix_fill", parent);
                                fault::inject("matrix.worker", sup.token());
                                let first = t * rows_per_thread;
                                let rows = id_block.len() / k;
                                let mut scratch = Vec::new();
                                for r in 0..rows {
                                    sup.check()?;
                                    fill_row(
                                        first + r,
                                        &mut id_block[r * k..(r + 1) * k],
                                        &mut dist_block[r * k..(r + 1) * k],
                                        &mut scratch,
                                    );
                                }
                                Ok(())
                            })
                        })
                    })
                    .collect();
                for handle in handles {
                    results.push(handle.join().unwrap_or_else(|payload| {
                        Err(Stop::Panicked { message: panic_message(payload.as_ref()) })
                    }));
                }
            });
            first_stop(results)?;
        }
        // One evaluation per (row, column) pair — the same count the
        // replaced exhaustive scans would have reported.
        db_obs::counter!("optics.distance_calls").add(cells as u64);
        Ok(Self { k, ids, dists })
    }

    /// Number of bubbles (the matrix is `k × k`).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Row `i` as parallel `(ids, distances)` slices, sorted ascending by
    /// `(distance, id)`; entry 0 is the bubble itself at distance 0.
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let lo = i * self.k;
        let hi = lo + self.k;
        (&self.ids[lo..hi], &self.dists[lo..hi])
    }

    /// Appends the ε-neighbourhood of bubble `i` to `out`, identical to
    /// the exhaustive scan-and-sort (the row prefix with `d <= eps`).
    pub fn neighborhood_into(&self, i: usize, eps: f64, out: &mut Vec<Neighbor>) {
        let (ids, dists) = self.row(i);
        let end = dists.partition_point(|&d| d <= eps);
        out.extend(
            ids[..end].iter().zip(&dists[..end]).map(|(&id, &d)| Neighbor::new(id as usize, d)),
        );
    }

    /// Matrix memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * std::mem::size_of::<u32>() + self.dists.len() * std::mem::size_of::<f64>()
    }
}

/// Resolves a thread-count knob: `None` means available parallelism,
/// clamped to `[1, work_items]`.
pub(crate) fn resolve_threads(threads: Option<NonZeroUsize>, work_items: usize) -> usize {
    threads
        .or_else(|| std::thread::available_parallelism().ok())
        .map_or(1, NonZeroUsize::get)
        .min(work_items.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bubbles(n: usize) -> Vec<DataBubble> {
        (0..n)
            .map(|i| {
                DataBubble::new(
                    vec![(i % 37) as f64, ((i * 13) % 29) as f64],
                    (i as u64 % 9) + 1,
                    0.1 * (i % 5) as f64,
                )
            })
            .collect()
    }

    #[test]
    fn build_is_thread_count_invariant() {
        let bs = bubbles(61);
        let base = BubbleDistanceMatrix::build(&bs, NonZeroUsize::new(1));
        for threads in [2usize, 3, 7, 64] {
            let m = BubbleDistanceMatrix::build(&bs, NonZeroUsize::new(threads));
            assert_eq!(m.ids, base.ids, "threads = {threads}");
            assert_eq!(m.dists, base.dists, "threads = {threads}");
        }
        let m = BubbleDistanceMatrix::build(&bs, None);
        assert_eq!(m.ids, base.ids);
        assert_eq!(m.dists, base.dists);
    }

    #[test]
    fn rows_are_sorted_and_start_with_self() {
        let bs = bubbles(20);
        let m = BubbleDistanceMatrix::build(&bs, None);
        assert_eq!(m.k(), 20);
        for i in 0..20 {
            let (ids, dists) = m.row(i);
            assert_eq!(ids[0] as usize, i, "self is the closest entry");
            assert_eq!(dists[0], 0.0);
            assert!(dists.windows(2).all(|w| w[0] <= w[1]), "row {i} not sorted");
            let mut seen: Vec<u32> = ids.to_vec();
            seen.sort_unstable();
            assert_eq!(seen, (0..20).collect::<Vec<u32>>(), "row {i} not a permutation");
        }
    }

    #[test]
    fn matrix_is_symmetric() {
        let bs = bubbles(15);
        let m = BubbleDistanceMatrix::build(&bs, None);
        let lookup = |i: usize, j: usize| {
            let (ids, dists) = m.row(i);
            let pos = ids.iter().position(|&id| id as usize == j).unwrap();
            dists[pos]
        };
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(lookup(i, j).to_bits(), lookup(j, i).to_bits(), "({i}, {j})");
            }
        }
    }

    #[test]
    fn neighborhood_prefix_matches_filter() {
        let bs = bubbles(30);
        let m = BubbleDistanceMatrix::build(&bs, None);
        for eps in [0.0, 1.0, 10.0, f64::INFINITY] {
            let mut out = Vec::new();
            m.neighborhood_into(3, eps, &mut out);
            let (ids, dists) = m.row(3);
            let expected: Vec<Neighbor> = ids
                .iter()
                .zip(dists)
                .filter(|(_, &d)| d <= eps)
                .map(|(&id, &d)| Neighbor::new(id as usize, d))
                .collect();
            assert_eq!(out, expected, "eps = {eps}");
        }
    }

    #[test]
    fn memory_accounting() {
        let m = BubbleDistanceMatrix::build(&bubbles(8), None);
        assert_eq!(m.memory_bytes(), 8 * 8 * 12);
    }

    #[test]
    #[should_panic(expected = "zero bubbles")]
    fn empty_build_panics() {
        BubbleDistanceMatrix::build(&[], None);
    }
}
