//! Data Bubbles for **metric (non-vector) data** — the paper's §10 future
//! work: "In this setting, we can no longer use a method such as BIRCH to
//! generate sufficient statistics, but we can still apply sampling plus
//! nearest neighbor classification […]. The challenge, however, is then to
//! efficiently determine a good representative, the radius and the average
//! k-nearest neighbor distances."
//!
//! This module implements that programme for any symmetric distance
//! function `d(i, j)`:
//!
//! * the **representative** is the sampled object itself (the natural
//!   medoid surrogate — computing the true medoid costs O(m²) per group);
//! * the **extent** is a high quantile (90%) of the member→representative
//!   distances, so "most objects of X are located within a radius extent
//!   around rep" (Definition 5) holds by construction;
//! * the **expected k-NN distances** for `k = 1..=MinPts` are estimated
//!   empirically from a bounded subsample of the members (instead of
//!   Lemma 1, which needs a vector space).
//!
//! [`MetricBubbleSpace`] then implements [`OpticsSpace`] with the same
//! Definitions 6–8 as the Euclidean version, so OPTICS (and the expansion
//! step) run unchanged.

use db_optics::OpticsSpace;
use db_rng::Rng;
use db_spatial::{id_u32, Neighbor};

/// Upper bound on the number of members sampled per bubble when estimating
/// the k-NN distance table.
const NNDIST_SAMPLE: usize = 64;

/// A Data Bubble over metric data: `(rep, n, extent, nndist(1..=MinPts))`
/// per Definition 5, with empirically estimated components.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDataBubble {
    /// Id (into the original object set) of the representative.
    pub rep_id: usize,
    /// Number of objects summarized.
    pub n: u64,
    /// Radius around the representative containing most members.
    pub extent: f64,
    /// `nndist_table[k-1]` = estimated average k-NN distance among the
    /// members, for `k = 1..=MinPts`.
    pub nndist_table: Vec<f64>,
}

impl MetricDataBubble {
    /// The estimated k-NN distance; clamps `k` to the table (`k` beyond
    /// MinPts returns the last entry, matching the Euclidean bubble's
    /// clamp at the extent).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn nndist(&self, k: usize) -> f64 {
        assert!(k >= 1, "k-NN distance needs k >= 1");
        if self.nndist_table.is_empty() {
            return 0.0;
        }
        self.nndist_table[(k - 1).min(self.nndist_table.len() - 1)]
    }
}

/// The result of compressing a metric data set into bubbles.
#[derive(Debug, Clone)]
pub struct MetricCompression {
    /// The bubbles, one per sampled representative.
    pub bubbles: Vec<MetricDataBubble>,
    /// For each original object, the bubble index it was classified to.
    pub assignment: Vec<u32>,
}

/// Samples `k` representatives from `n` objects, classifies every object to
/// its nearest representative under `dist`, and estimates each group's
/// Data Bubble (§10 programme). `dist` must be symmetric with
/// `dist(i,i) = 0`.
///
/// Runs in O(n·k + k·s²) distance evaluations with `s = min(group size,
/// 64)`.
///
/// # Panics
///
/// Panics if `k == 0`, `k > n`, or `min_pts == 0`.
pub fn compress_metric(
    n: usize,
    k: usize,
    min_pts: usize,
    seed: u64,
    dist: impl Fn(usize, usize) -> f64,
) -> MetricCompression {
    assert!(k >= 1, "need at least one representative");
    assert!(k <= n, "cannot sample {k} of {n}");
    assert!(min_pts >= 1, "MinPts must be positive");
    let _span = db_obs::span!("metric.compress");
    let mut rng = Rng::seed_from_u64(seed);
    let mut rep_ids: Vec<usize> = rng.sample_indices(n, k);
    rep_ids.sort_unstable();

    // One pass: classify each object to the nearest representative. A
    // VP-tree over the k representatives turns the O(n·k) scan into
    // ~O(n·log k) distance evaluations — the efficiency §10 asks for.
    let rep_dist = |a: usize, b: usize| {
        if rep_ids[a] == rep_ids[b] {
            0.0
        } else {
            dist(rep_ids[a], rep_ids[b])
        }
    };
    let tree = db_spatial::VpTree::build(k, &rep_dist);
    let mut assignment = vec![0u32; n];
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, slot) in assignment.iter_mut().enumerate() {
        let dq = |j: usize| {
            if rep_ids[j] == i {
                0.0
            } else {
                dist(i, rep_ids[j])
            }
        };
        let nn = tree.nearest(&dq).expect("k >= 1");
        *slot = id_u32(nn.id);
        members[nn.id].push(i);
    }

    let bubbles = members
        .iter()
        .zip(&rep_ids)
        .map(|(group, &rep_id)| estimate_bubble(rep_id, group, min_pts, &mut rng, &dist))
        .collect();
    MetricCompression { bubbles, assignment }
}

/// Estimates one bubble from its member group.
fn estimate_bubble(
    rep_id: usize,
    group: &[usize],
    min_pts: usize,
    rng: &mut Rng,
    dist: &impl Fn(usize, usize) -> f64,
) -> MetricDataBubble {
    // A representative may classify to an *earlier* representative at
    // distance 0 (duplicate objects), leaving its own group empty; such a
    // bubble carries weight 0 so the total weight stays exact.
    debug_assert!(group.is_empty() || group.contains(&rep_id));
    let m = group.len();
    if m <= 1 {
        return MetricDataBubble {
            rep_id,
            n: m as u64,
            extent: 0.0,
            nndist_table: vec![0.0; min_pts],
        };
    }
    // Extent: 90th percentile of member→rep distances.
    let mut to_rep: Vec<f64> =
        group.iter().filter(|&&i| i != rep_id).map(|&i| dist(i, rep_id)).collect();
    to_rep.sort_by(f64::total_cmp);
    let extent = to_rep[((to_rep.len() - 1) as f64 * 0.9).round() as usize];

    // k-NN distances: subsample members, compute each subsample object's
    // k nearest distances *within the subsample*, then rescale by the
    // thinning (subsampling by factor f inflates k-NN distances; for lack
    // of a dimension we estimate the inflation from the rank statistics
    // themselves — the subsample k-dist at rank ceil(k·s/m) approximates
    // the population k-dist).
    let s = m.min(NNDIST_SAMPLE);
    let sub: Vec<usize> = if m <= NNDIST_SAMPLE {
        group.to_vec()
    } else {
        (0..s).map(|_| group[rng.gen_range(0..m)]).collect()
    };
    // Average sorted distance vectors across subsample members.
    let mut avg_sorted = vec![0.0f64; s - 1];
    for &i in &sub {
        let mut ds: Vec<f64> = sub.iter().filter(|&&j| j != i).map(|&j| dist(i, j)).collect();
        ds.sort_by(f64::total_cmp);
        ds.resize(s - 1, *ds.last().unwrap_or(&0.0));
        for (a, d) in avg_sorted.iter_mut().zip(&ds) {
            *a += d;
        }
    }
    for a in &mut avg_sorted {
        *a /= sub.len() as f64;
    }
    // Population k-dist ≈ subsample (k·s/m)-dist (rank rescaling).
    let table: Vec<f64> = (1..=min_pts)
        .map(|k| {
            let rank = ((k as f64) * (s as f64) / (m as f64)).ceil().max(1.0) as usize;
            avg_sorted[(rank - 1).min(avg_sorted.len() - 1)]
        })
        .collect();
    MetricDataBubble { rep_id, n: m as u64, extent, nndist_table: table }
}

/// A set of metric Data Bubbles as an OPTICS object space (Definitions 6–8
/// with the empirical `nndist`).
#[derive(Debug, Clone)]
pub struct MetricBubbleSpace<D> {
    bubbles: Vec<MetricDataBubble>,
    dist: D,
}

impl<D: Fn(usize, usize) -> f64> MetricBubbleSpace<D> {
    /// Creates the space; `dist` is the *original-object* distance used
    /// between representatives.
    pub fn new(bubbles: Vec<MetricDataBubble>, dist: D) -> Self {
        Self { bubbles, dist }
    }

    /// The bubbles.
    pub fn bubbles(&self) -> &[MetricDataBubble] {
        &self.bubbles
    }

    /// Definition 6 with the empirical components.
    pub fn bubble_distance(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let (b, c) = (&self.bubbles[i], &self.bubbles[j]);
        let center = (self.dist)(b.rep_id, c.rep_id);
        let gap = center - (b.extent + c.extent);
        if gap >= 0.0 {
            gap + b.nndist(1) + c.nndist(1)
        } else {
            b.nndist(1).max(c.nndist(1))
        }
    }
}

impl<D: Fn(usize, usize) -> f64> OpticsSpace for MetricBubbleSpace<D> {
    fn len(&self) -> usize {
        self.bubbles.len()
    }

    fn neighborhood(&self, i: usize, eps: f64, out: &mut Vec<Neighbor>) {
        out.clear();
        for j in 0..self.bubbles.len() {
            let d = self.bubble_distance(i, j);
            if d <= eps {
                out.push(Neighbor::new(j, d));
            }
        }
        db_obs::counter!("optics.distance_calls").add(self.bubbles.len() as u64);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn weight(&self, i: usize) -> u64 {
        self.bubbles[i].n
    }

    fn core_distance(&self, i: usize, min_pts: usize, neighborhood: &[Neighbor]) -> Option<f64> {
        let min_pts_u = min_pts as u64;
        let total: u64 = neighborhood.iter().map(|nb| self.bubbles[nb.id].n).sum();
        if total < min_pts_u {
            return None;
        }
        let b = &self.bubbles[i];
        if b.n >= min_pts_u {
            return Some(b.nndist(min_pts));
        }
        let mut cumulative = 0u64;
        for nb in neighborhood {
            let c = &self.bubbles[nb.id];
            if cumulative + c.n >= min_pts_u {
                let k = (min_pts_u - cumulative) as usize;
                return Some(nb.dist + c.nndist(k));
            }
            cumulative += c.n;
        }
        unreachable!("total >= min_pts guarantees termination")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_optics::{optics, OpticsParams};

    /// 1-d metric data: two groups on a line, via a distance closure only.
    fn line_positions() -> Vec<f64> {
        let mut xs = Vec::new();
        for i in 0..60 {
            xs.push(i as f64 * 0.1);
        }
        for i in 0..60 {
            xs.push(100.0 + i as f64 * 0.1);
        }
        xs
    }

    #[test]
    fn compress_partitions_all_objects() {
        let xs = line_positions();
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(xs.len(), 10, 5, 42, d);
        assert_eq!(c.bubbles.len(), 10);
        assert_eq!(c.assignment.len(), xs.len());
        let total: u64 = c.bubbles.iter().map(|b| b.n).sum();
        assert_eq!(total, xs.len() as u64);
        for (i, &a) in c.assignment.iter().enumerate() {
            assert!((a as usize) < 10, "object {i} unassigned");
        }
    }

    #[test]
    fn bubble_components_are_sane() {
        let xs = line_positions();
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(xs.len(), 6, 5, 7, d);
        for b in &c.bubbles {
            assert!(b.extent >= 0.0);
            assert_eq!(b.nndist_table.len(), 5);
            // nndist is monotone in k and bounded by the group's spread.
            for w in b.nndist_table.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
            assert!(b.nndist(1) <= b.extent + 1e-9 || b.n <= 2);
        }
    }

    #[test]
    fn nndist_estimates_match_uniform_line() {
        // A single group of 100 equally spaced points (spacing 1): true
        // k-NN distance is ~k (one-sided) / averaged ~k; the estimate must
        // be within a small factor.
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(xs.len(), 1, 5, 3, d);
        let b = &c.bubbles[0];
        assert_eq!(b.n, 100);
        let nn1 = b.nndist(1);
        assert!(nn1 > 0.3 && nn1 < 4.0, "nndist(1) = {nn1}");
    }

    #[test]
    fn optics_on_metric_bubbles_separates_groups() {
        let xs = line_positions();
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(xs.len(), 12, 10, 42, d);
        let space = MetricBubbleSpace::new(c.bubbles, d);
        let o = optics(&space, &OpticsParams { eps: f64::INFINITY, min_pts: 10 });
        assert_eq!(o.len(), 12);
        // One big jump between the two groups.
        let jumps =
            o.entries.iter().filter(|e| e.has_reachability() && e.reachability > 50.0).count();
        assert_eq!(jumps, 1, "expected exactly one inter-group jump");
        assert_eq!(o.total_weight(), 120);
    }

    #[test]
    fn metric_distance_symmetry_and_identity() {
        let xs = line_positions();
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(xs.len(), 8, 5, 1, d);
        let space = MetricBubbleSpace::new(c.bubbles, d);
        for i in 0..8 {
            assert_eq!(space.bubble_distance(i, i), 0.0);
            for j in 0..8 {
                let a = space.bubble_distance(i, j);
                let b = space.bubble_distance(j, i);
                assert!((a - b).abs() < 1e-12);
                if i != j {
                    assert!(a >= 0.0);
                }
            }
        }
    }

    #[test]
    fn singleton_groups_are_degenerate() {
        let xs: Vec<f64> = vec![0.0, 1000.0];
        let d = |a: usize, b: usize| (xs[a] - xs[b]).abs();
        let c = compress_metric(2, 2, 3, 5, d);
        for b in &c.bubbles {
            assert_eq!(b.n, 1);
            assert_eq!(b.extent, 0.0);
            assert_eq!(b.nndist(3), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn k_larger_than_n_panics() {
        compress_metric(3, 4, 2, 1, |_, _| 0.0);
    }

    #[test]
    #[should_panic(expected = "k-NN distance needs")]
    fn nndist_zero_panics() {
        MetricDataBubble { rep_id: 0, n: 1, extent: 0.0, nndist_table: vec![0.0] }.nndist(0);
    }
}
