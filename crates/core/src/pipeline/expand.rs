//! The recovery step: expanding a cluster ordering over representatives
//! back into an ordering over *all* original objects (paper §5 for the
//! weighted variants, §8 step 5 for the bubble variants).

use db_optics::ClusterOrdering;
use db_spatial::id_u32;
use db_supervise::{Stop, Supervisor, Ticker};

use crate::distance::virtual_reachability;
use crate::space::BubbleSpace;

/// Cooperative-check cadence of the expansion loops. A weighted step is a
/// cheap member copy; a bubble step may recompute an unbounded
/// core-distance (O(k)); every 64 representatives keeps both well inside
/// the 50ms reaction target.
const EXPAND_TICK: u32 = 64;

/// One original object's position in the expanded cluster ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpandedEntry {
    /// Original object id.
    pub object: u32,
    /// The plotted reachability value for this position.
    pub reachability: f64,
    /// A core-distance estimate for this position (used by flat cluster
    /// extraction to decide whether a jump starts a cluster).
    pub core_estimate: f64,
}

/// A cluster ordering over all original objects, produced by replacing each
/// representative with the set of objects classified to it. Solves the
/// *lost objects* and *size distortion* problems by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedOrdering {
    /// Positions in walk order; `entries.len()` = number of original
    /// objects.
    pub entries: Vec<ExpandedEntry>,
}

impl ExpandedOrdering {
    /// Number of original objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The plotted reachability values in order (the reachability plot of
    /// the full database).
    pub fn reachabilities(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.reachability).collect()
    }

    /// The original object ids in cluster order (the paper's final "sort
    /// the original database according to the position numbers").
    pub fn order(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.object).collect()
    }

    /// Flat cluster extraction at cut level `eps_cut`, returning one label
    /// per *original object id* (`-1` = noise). Same jump logic as
    /// [`db_optics::extract_dbscan`].
    #[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must take the jump branch
    pub fn extract_dbscan(&self, eps_cut: f64) -> Vec<i32> {
        let mut labels = vec![-1i32; self.entries.len()];
        let mut cluster = -1i32;
        for e in &self.entries {
            // `!(r <= cut)` so a NaN reachability reads as a jump instead of
            // silently attaching to the current cluster (see the db-optics
            // version for the full rationale).
            if !(e.reachability <= eps_cut) {
                if e.core_estimate <= eps_cut {
                    cluster += 1;
                    labels[e.object as usize] = cluster;
                } else {
                    labels[e.object as usize] = -1;
                }
            } else if cluster >= 0 {
                labels[e.object as usize] = cluster;
            } else {
                cluster += 1;
                labels[e.object as usize] = cluster;
            }
        }
        labels
    }
}

/// §5 expansion (for `OPTICS-SA/CF weighted`): representative `s_j` at walk
/// position `j` is replaced by its members; the first member keeps
/// `s_j.reachDist`, every other member gets
/// `min(s_j.reachDist, s_{j+1}.reachDist)` — "the reachability we need to
/// first get to `s_j` [… then] approximately the same as the reachability
/// of the next object in the cluster ordering of the sample".
///
/// The core estimate of every member is the representative's
/// core-distance.
///
/// # Panics
///
/// Panics if `members.len()` differs from the number of representatives.
pub fn expand_weighted(ordering: &ClusterOrdering, members: &[Vec<usize>]) -> ExpandedOrdering {
    match expand_weighted_supervised(ordering, members, &Supervisor::unlimited()) {
        Ok(x) => x,
        Err(stop) => panic!("unsupervised weighted expansion stopped: {stop}"),
    }
}

/// [`expand_weighted`] under supervision: consults `sup` every
/// [`EXPAND_TICK`] representatives. On `Err` the partial expansion is
/// discarded; on `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled or past the deadline.
///
/// # Panics
///
/// Panics if `members.len()` differs from the number of representatives.
pub fn expand_weighted_supervised(
    ordering: &ClusterOrdering,
    members: &[Vec<usize>],
    sup: &Supervisor,
) -> Result<ExpandedOrdering, Stop> {
    assert_eq!(members.len(), ordering.len(), "one member list per representative");
    let total: usize = members.iter().map(Vec::len).sum();
    assert!(total <= u32::MAX as usize, "object ids exceed the u32 expansion range");
    let mut ticker = Ticker::new(sup, EXPAND_TICK);
    let mut entries = Vec::with_capacity(total);
    for (j, e) in ordering.entries.iter().enumerate() {
        ticker.tick()?;
        // The paper leaves s_{j+1} undefined for the last representative;
        // its core-distance is the natural in-cluster estimate there.
        let next_reach = ordering.entries.get(j + 1).map_or(e.core_distance, |n| n.reachability);
        let filler = e.reachability.min(next_reach);
        for (m, &obj) in members[e.id].iter().enumerate() {
            entries.push(ExpandedEntry {
                object: id_u32(obj),
                reachability: if m == 0 { e.reachability } else { filler },
                core_estimate: e.core_distance,
            });
        }
    }
    debug_assert_eq!(entries.len(), total);
    Ok(ExpandedOrdering { entries })
}

/// §8-step-5 expansion (for `OPTICS-SA/CF Bubbles`): the first member of
/// bubble `B_j` keeps the bubble's reachDist (marking the jump to `B_j`),
/// the remaining `n−1` members get the bubble's *virtual reachability*
/// (Definition 9).
///
/// # Panics
///
/// Panics if `members.len()` differs from the number of bubbles.
pub fn expand_bubbles(
    ordering: &ClusterOrdering,
    members: &[Vec<usize>],
    space: &BubbleSpace,
    min_pts: usize,
) -> ExpandedOrdering {
    match expand_bubbles_supervised(ordering, members, space, min_pts, &Supervisor::unlimited()) {
        Ok(x) => x,
        Err(stop) => panic!("unsupervised bubble expansion stopped: {stop}"),
    }
}

/// [`expand_bubbles`] under supervision: consults `sup` every
/// [`EXPAND_TICK`] bubbles. On `Err` the partial expansion is discarded;
/// on `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled or past the deadline.
///
/// # Panics
///
/// Panics if `members.len()` differs from the number of bubbles.
pub fn expand_bubbles_supervised(
    ordering: &ClusterOrdering,
    members: &[Vec<usize>],
    space: &BubbleSpace,
    min_pts: usize,
    sup: &Supervisor,
) -> Result<ExpandedOrdering, Stop> {
    assert_eq!(members.len(), ordering.len(), "one member list per bubble");
    let total: usize = members.iter().map(Vec::len).sum();
    assert!(total <= u32::MAX as usize, "object ids exceed the u32 expansion range");
    let mut ticker = Ticker::new(sup, EXPAND_TICK);
    let mut entries = Vec::with_capacity(total);
    for e in &ordering.entries {
        ticker.tick()?;
        let bubble = space.bubble(e.id);
        // Def. 9's second branch wants *the* core-distance of a sub-MinPts
        // bubble, but an ε-bounded walk leaves `core_distance` UNDEFINED
        // (∞) when too few points fell inside ε. Recompute it with
        // unbounded ε in that case; when the walk's value is finite (or
        // the bubble answers from its own nndist) nothing changes.
        let core = if e.core_distance.is_finite() || bubble.n() >= min_pts as u64 {
            e.core_distance
        } else {
            space.core_distance_unbounded(e.id, min_pts).unwrap_or(e.core_distance)
        };
        let vreach = virtual_reachability(bubble, min_pts, core);
        for (m, &obj) in members[e.id].iter().enumerate() {
            entries.push(ExpandedEntry {
                object: id_u32(obj),
                reachability: if m == 0 { e.reachability } else { vreach },
                core_estimate: vreach,
            });
        }
    }
    debug_assert_eq!(entries.len(), total);
    Ok(ExpandedOrdering { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bubble::DataBubble;
    use db_optics::{ClusterOrdering, OrderingEntry, UNDEFINED};

    fn rep_ordering() -> ClusterOrdering {
        ClusterOrdering {
            entries: vec![
                OrderingEntry { id: 0, reachability: UNDEFINED, core_distance: 0.5, weight: 3 },
                OrderingEntry { id: 2, reachability: 0.8, core_distance: 0.4, weight: 2 },
                OrderingEntry { id: 1, reachability: 7.0, core_distance: 0.9, weight: 2 },
            ],
            eps: f64::INFINITY,
            min_pts: 2,
        }
    }

    fn members() -> Vec<Vec<usize>> {
        // Representative 0 -> objects {0, 3, 4}; 1 -> {1, 6}; 2 -> {2, 5}.
        vec![vec![0, 3, 4], vec![1, 6], vec![2, 5]]
    }

    #[test]
    fn weighted_expansion_layout() {
        let x = expand_weighted(&rep_ordering(), &members());
        assert_eq!(x.len(), 7);
        // Walk: rep0's members, rep2's members, rep1's members.
        assert_eq!(x.order(), vec![0, 3, 4, 2, 5, 1, 6]);
        // First member of rep 0 keeps its (undefined) reachability.
        assert!(x.entries[0].reachability.is_infinite());
        // Fillers of rep 0: min(inf, 0.8) = 0.8.
        assert_eq!(x.entries[1].reachability, 0.8);
        assert_eq!(x.entries[2].reachability, 0.8);
        // Rep 2's first member keeps 0.8; filler min(0.8, 7.0) = 0.8.
        assert_eq!(x.entries[3].reachability, 0.8);
        assert_eq!(x.entries[4].reachability, 0.8);
        // Rep 1: jump 7.0; no next rep, so the filler falls back to the
        // core-distance: min(7.0, 0.9) = 0.9.
        assert_eq!(x.entries[5].reachability, 7.0);
        assert_eq!(x.entries[6].reachability, 0.9);
        // Core estimates come from the representative.
        assert_eq!(x.entries[0].core_estimate, 0.5);
        assert_eq!(x.entries[5].core_estimate, 0.9);
    }

    #[test]
    fn bubble_expansion_uses_virtual_reachability() {
        let space = BubbleSpace::new(vec![
            DataBubble::new(vec![0.0], 3, 1.0),  // nndist(2) = (2/3)*1
            DataBubble::new(vec![10.0], 2, 0.5), // nndist(2) = 0.5
            DataBubble::new(vec![5.0], 2, 0.2),  // nndist(2) = 0.2
        ]);
        let x = expand_bubbles(&rep_ordering(), &members(), &space, 2);
        assert_eq!(x.order(), vec![0, 3, 4, 2, 5, 1, 6]);
        // Bubble 0 fillers: nndist(2) of bubble 0 = 2/3.
        assert!((x.entries[1].reachability - 2.0 / 3.0).abs() < 1e-12);
        assert!((x.entries[2].reachability - 2.0 / 3.0).abs() < 1e-12);
        // Bubble 2 filler: 0.2.
        assert!((x.entries[4].reachability - 0.2).abs() < 1e-12);
        // Bubble 1 jump preserved, filler 0.5.
        assert_eq!(x.entries[5].reachability, 7.0);
        assert!((x.entries[6].reachability - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bubble_expansion_small_bubble_falls_back_to_core_distance() {
        // MinPts larger than every bubble: virtual reachability = the
        // entry's core distance.
        let space = BubbleSpace::new(vec![
            DataBubble::new(vec![0.0], 3, 1.0),
            DataBubble::new(vec![10.0], 2, 0.5),
            DataBubble::new(vec![5.0], 2, 0.2),
        ]);
        let x = expand_bubbles(&rep_ordering(), &members(), &space, 10);
        // Filler for bubble 0 = its core_distance in the ordering (0.5).
        assert_eq!(x.entries[1].reachability, 0.5);
    }

    #[test]
    fn extract_dbscan_on_expanded_plot() {
        let x = expand_weighted(&rep_ordering(), &members());
        let labels = x.extract_dbscan(1.0);
        // Objects of reps 0 and 2 form cluster 0 (their reachabilities are
        // ≤ 1), rep 1's objects start cluster 1 after the 7.0 jump
        // (its core estimate 0.9 ≤ 1).
        assert_eq!(labels[0], 0);
        assert_eq!(labels[3], 0);
        assert_eq!(labels[2], 0);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[6], 1);
    }

    #[test]
    fn extract_dbscan_marks_noise() {
        let mut o = rep_ordering();
        o.entries[2].core_distance = 100.0; // rep 1 not dense
        let x = expand_weighted(&o, &members());
        let labels = x.extract_dbscan(1.0);
        assert_eq!(labels[1], -1); // first member of rep 1 is noise
    }

    #[test]
    fn expansion_covers_every_object_once() {
        let x = expand_weighted(&rep_ordering(), &members());
        let mut seen = x.order();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<u32>>());
        assert!(!x.is_empty());
    }

    #[test]
    #[should_panic(expected = "one member list per representative")]
    fn member_count_mismatch_panics() {
        expand_weighted(&rep_ordering(), &[vec![0]]);
    }
}
