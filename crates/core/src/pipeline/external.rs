//! The out-of-core pipeline: the paper's actual operating mode, where the
//! database lives in a file and the algorithm makes sequential passes over
//! it ("we make one pass (reading and writing) over the original database.
//! Finally, we sort the original database according to the position
//! numbers").
//!
//! 1. **Pass 1** — stream the file, reservoir-sampling `k` rows.
//! 2. **Pass 2** — stream again: classify every row to its nearest sample
//!    row, accumulate the sufficient statistics, and remember each row's
//!    byte offset (8 bytes/row) and classification (4 bytes/row) — the
//!    only per-object state ever held in memory.
//! 3. OPTICS runs on the `k` Data Bubbles in memory.
//! 4. **Pass 3** — write the output file *in cluster order* by seeking to
//!    each row in expansion order, prefixing it with its plotted
//!    reachability (this replaces the paper's final external sort).

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Seek, SeekFrom, Write};
use std::path::Path;
use std::time::Instant;

use db_birch::Cf;
use db_optics::{optics, ClusterOrdering};
use db_rng::Rng;
use db_spatial::io::{read_csv_from, CsvError, CsvOptions};
use db_spatial::{auto_index, id_u32, Dataset, SpatialIndex};

use crate::bubble::DataBubble;
use crate::pipeline::{expand_bubbles, ExpandedOrdering, PipelineTimings};
use crate::space::BubbleSpace;
use db_optics::OpticsParams;

/// Configuration of the external pipeline.
#[derive(Debug, Clone)]
pub struct ExternalConfig {
    /// Number of sampled representatives.
    pub k: usize,
    /// OPTICS parameters over the bubbles (MinPts counts original rows).
    pub optics: OpticsParams,
    /// Seed for the reservoir sample.
    pub seed: u64,
    /// CSV parsing options for the input file.
    pub csv: CsvOptions,
}

/// Result of an external run.
#[derive(Debug, Clone)]
pub struct ExternalOutput {
    /// Number of data rows processed.
    pub n_objects: usize,
    /// Dimensionality.
    pub dim: usize,
    /// The bubble cluster ordering.
    pub rep_ordering: ClusterOrdering,
    /// The expanded ordering (object ids are 0-based data-row indices).
    pub expanded: ExpandedOrdering,
    /// Phase timings (compression = passes 1–2, clustering = OPTICS,
    /// recovery = pass 3).
    pub timings: PipelineTimings,
}

/// External pipeline failure modes.
#[derive(Debug)]
pub enum ExternalError {
    /// I/O failure.
    Io(io::Error),
    /// Malformed input file.
    Csv(CsvError),
    /// Fewer data rows than requested representatives.
    NotEnoughRows {
        /// Rows found.
        rows: usize,
        /// Representatives requested.
        k: usize,
    },
}

impl std::fmt::Display for ExternalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExternalError::Io(e) => write!(f, "I/O error: {e}"),
            ExternalError::Csv(e) => write!(f, "input file: {e}"),
            ExternalError::NotEnoughRows { rows, k } => {
                write!(f, "input has only {rows} rows but k = {k}")
            }
        }
    }
}

impl std::error::Error for ExternalError {}

impl From<io::Error> for ExternalError {
    fn from(e: io::Error) -> Self {
        ExternalError::Io(e)
    }
}

impl From<CsvError> for ExternalError {
    fn from(e: CsvError) -> Self {
        ExternalError::Csv(e)
    }
}

/// Streams the data rows of a CSV file: calls `f(row_index, byte_offset,
/// line)` for every data line (after `skip_lines`, skipping comments and
/// blanks). Returns the number of data rows.
fn stream_rows(
    path: &Path,
    csv: &CsvOptions,
    mut f: impl FnMut(usize, u64, &str) -> Result<(), ExternalError>,
) -> Result<usize, ExternalError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut line = String::new();
    let mut offset = 0u64;
    let mut physical = 0usize;
    let mut row = 0usize;
    loop {
        line.clear();
        let read = reader.read_line(&mut line)?;
        if read == 0 {
            break;
        }
        let this_offset = offset;
        offset += read as u64;
        physical += 1;
        if physical <= csv.skip_lines {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        f(row, this_offset, trimmed)?;
        row += 1;
    }
    Ok(row)
}

/// Parses the coordinates of one data line.
fn parse_row(line: &str, csv: &CsvOptions, out: &mut Vec<f64>) -> Result<(), ExternalError> {
    out.clear();
    // Reuse the tolerant field splitting of the CSV reader via a one-line
    // parse (cheap relative to the distance work per row).
    let ds = read_csv_from(
        line.as_bytes(),
        &CsvOptions { skip_columns: csv.skip_columns, skip_lines: 0 },
    )?;
    out.extend_from_slice(ds.point(0));
    Ok(())
}

/// Runs the external pipeline: reads `input`, writes the cluster-ordered
/// database to `output` (each line `reachability,<original row>`), and
/// returns the orderings.
///
/// # Errors
///
/// Returns an error on I/O problems, malformed rows, or `k` exceeding the
/// number of rows.
pub fn run_external(
    input: &Path,
    output: &Path,
    cfg: &ExternalConfig,
) -> Result<ExternalOutput, ExternalError> {
    // ---------------------------------------------------------- pass 1
    let _span = db_obs::span!("pipeline.external");
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t0 = Instant::now();
    let mut rng = Rng::seed_from_u64(cfg.seed);
    let mut reservoir: Vec<Vec<f64>> = Vec::with_capacity(cfg.k);
    let mut coords = Vec::new();
    let rows = stream_rows(input, &cfg.csv, |row, _, line| {
        parse_row(line, &cfg.csv, &mut coords)?;
        if reservoir.len() < cfg.k {
            reservoir.push(coords.clone());
        } else {
            let j = rng.gen_range_inclusive(0..=row);
            if j < cfg.k {
                reservoir[j] = coords.clone();
            }
        }
        Ok(())
    })?;
    if rows < cfg.k || rows == 0 || cfg.k == 0 {
        return Err(ExternalError::NotEnoughRows { rows, k: cfg.k });
    }
    let dim = reservoir[0].len();
    let Ok(mut reps) = Dataset::with_capacity(dim, cfg.k) else {
        // Zero-width rows: the file parsed but carries no coordinates.
        return Err(ExternalError::Csv(CsvError::RaggedRow { line: 1, expected: 1, got: dim }));
    };
    for r in &reservoir {
        reps.push(r).map_err(|_| {
            ExternalError::Csv(CsvError::RaggedRow { line: 0, expected: dim, got: r.len() })
        })?;
    }

    // ---------------------------------------------------------- pass 2
    let index = auto_index(&reps, None);
    let mut stats = vec![Cf::empty(dim); cfg.k];
    let mut assignment: Vec<u32> = Vec::with_capacity(rows);
    let mut offsets: Vec<u64> = Vec::with_capacity(rows);
    stream_rows(input, &cfg.csv, |_, offset, line| {
        parse_row(line, &cfg.csv, &mut coords)?;
        if coords.len() != dim {
            return Err(ExternalError::Csv(CsvError::RaggedRow {
                line: 0,
                expected: dim,
                got: coords.len(),
            }));
        }
        // `reps` holds exactly `cfg.k >= 1` points, so a nearest
        // neighbour always exists.
        let Some(nn) = index.nearest(&reps, &coords) else {
            return Err(ExternalError::NotEnoughRows { rows: 0, k: cfg.k });
        };
        stats[nn.id].add_point(&coords);
        assignment.push(id_u32(nn.id));
        offsets.push(offset);
        Ok(())
    })?;
    let compression = t0.elapsed();

    // ----------------------------------------------------- OPTICS step
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t1 = Instant::now();
    // Duplicate rows can shadow a sampled representative entirely (all
    // copies classify to the lowest-indexed one); drop empty statistics
    // and remap the classification.
    let mut remap = vec![u32::MAX; stats.len()];
    let mut kept: Vec<Cf> = Vec::with_capacity(stats.len());
    for (j, cf) in stats.into_iter().enumerate() {
        if !cf.is_empty() {
            remap[j] = id_u32(kept.len());
            kept.push(cf);
        }
    }
    for a in &mut assignment {
        *a = remap[*a as usize];
        debug_assert_ne!(*a, u32::MAX, "row assigned to a dropped representative");
    }
    let bubbles: Vec<DataBubble> = kept.iter().map(DataBubble::from_cf).collect();
    let space = BubbleSpace::new(bubbles);
    let rep_ordering = optics(&space, &cfg.optics);
    let mut members = vec![Vec::new(); kept.len()];
    for (i, &a) in assignment.iter().enumerate() {
        members[a as usize].push(i);
    }
    let expanded = expand_bubbles(&rep_ordering, &members, &space, cfg.optics.min_pts);
    let clustering = t1.elapsed();

    // ---------------------------------------------------------- pass 3
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t2 = Instant::now();
    let mut src = File::open(input)?;
    let mut out = BufWriter::new(File::create(output)?);
    writeln!(out, "# reachability,original row (cluster order)")?;
    let mut buf = Vec::new();
    for e in &expanded.entries {
        let offset = offsets[e.object as usize];
        src.seek(SeekFrom::Start(offset))?;
        buf.clear();
        let mut reader = BufReader::new(&mut src);
        reader.read_until(b'\n', &mut buf)?;
        let line = String::from_utf8_lossy(&buf);
        let reach =
            if e.reachability.is_finite() { format!("{:?}", e.reachability) } else { "inf".into() };
        writeln!(out, "{},{}", reach, line.trim_end())?;
    }
    out.flush()?;
    let recovery = t2.elapsed();

    Ok(ExternalOutput {
        n_objects: rows,
        dim,
        rep_ordering,
        expanded,
        timings: PipelineTimings { compression, clustering, recovery },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_input(path: &Path, header: bool) -> usize {
        let mut f = BufWriter::new(File::create(path).unwrap());
        if header {
            writeln!(f, "x,y").unwrap();
        }
        writeln!(f, "# two groups on a line").unwrap();
        let mut n = 0;
        for i in 0..400 {
            writeln!(f, "{},{}", i % 20, i / 20).unwrap();
            n += 1;
        }
        for i in 0..400 {
            writeln!(f, "{},{}", 500 + i % 20, i / 20).unwrap();
            n += 1;
        }
        f.flush().unwrap();
        n
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("db-external-{}-{name}", std::process::id()))
    }

    #[test]
    fn end_to_end_clusters_file_data() {
        let input = tmp("in.csv");
        let output = tmp("out.csv");
        let n = write_input(&input, false);
        let cfg = ExternalConfig {
            k: 40,
            optics: OpticsParams { eps: f64::INFINITY, min_pts: 10 },
            seed: 7,
            csv: CsvOptions::default(),
        };
        let res = run_external(&input, &output, &cfg).unwrap();
        assert_eq!(res.n_objects, n);
        assert_eq!(res.dim, 2);
        assert_eq!(res.expanded.len(), n);
        // The expanded ordering is a permutation.
        let mut order = res.expanded.order();
        order.sort_unstable();
        assert_eq!(order, (0..n as u32).collect::<Vec<_>>());
        // Cutting separates the two groups.
        let labels = res.expanded.extract_dbscan(20.0);
        let first_group: Vec<i32> = (0..400).map(|i| labels[i]).collect();
        let second_group: Vec<i32> = (400..800).map(|i| labels[i]).collect();
        assert!(first_group.iter().all(|&l| l == first_group[0] && l >= 0));
        assert!(second_group.iter().all(|&l| l == second_group[0] && l >= 0));
        assert_ne!(first_group[0], second_group[0]);

        // The output file holds every row, in cluster order, with the
        // plotted reachability up front.
        let out_text = std::fs::read_to_string(&output).unwrap();
        let data_lines: Vec<&str> = out_text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data_lines.len(), n);
        // First walk position is a jump (inf).
        assert!(data_lines[0].starts_with("inf,"));
        // Rows from the two x-ranges are contiguous in the file.
        let xs: Vec<f64> = data_lines
            .iter()
            .map(|l| l.split(',').nth(1).unwrap().parse::<f64>().unwrap())
            .collect();
        let group: Vec<bool> = xs.iter().map(|&x| x < 250.0).collect();
        let flips = group.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(flips, 1, "cluster order must keep the groups contiguous");

        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn header_and_comments_are_skipped() {
        let input = tmp("in2.csv");
        let output = tmp("out2.csv");
        let n = write_input(&input, true);
        let cfg = ExternalConfig {
            k: 20,
            optics: OpticsParams { eps: f64::INFINITY, min_pts: 5 },
            seed: 1,
            csv: CsvOptions { skip_lines: 1, skip_columns: 0 },
        };
        let res = run_external(&input, &output, &cfg).unwrap();
        assert_eq!(res.n_objects, n);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn too_few_rows_is_an_error() {
        let input = tmp("in3.csv");
        let output = tmp("out3.csv");
        std::fs::write(&input, "1,2\n3,4\n").unwrap();
        let cfg = ExternalConfig {
            k: 10,
            optics: OpticsParams::default(),
            seed: 0,
            csv: CsvOptions::default(),
        };
        match run_external(&input, &output, &cfg) {
            Err(ExternalError::NotEnoughRows { rows, k }) => {
                assert_eq!((rows, k), (2, 10));
            }
            other => panic!("expected NotEnoughRows, got {other:?}"),
        }
        std::fs::remove_file(&input).ok();
    }

    #[test]
    fn matches_in_memory_pipeline() {
        // The external pipeline and the in-memory pipeline produce the
        // same clustering for the same data (seeds differ in sampling
        // mechanics, so compare extraction partitions, not orderings).
        let input = tmp("in4.csv");
        let output = tmp("out4.csv");
        write_input(&input, false);
        let cfg = ExternalConfig {
            k: 40,
            optics: OpticsParams { eps: f64::INFINITY, min_pts: 10 },
            seed: 3,
            csv: CsvOptions::default(),
        };
        let ext = run_external(&input, &output, &cfg).unwrap();
        let ds = db_spatial::read_csv(&input, &CsvOptions::default()).unwrap();
        let mem = crate::pipeline::optics_sa_bubbles(&ds, 40, 3, &cfg.optics).unwrap();
        let a = ext.expanded.extract_dbscan(20.0);
        let b = mem.expanded.unwrap().extract_dbscan(20.0);
        let ari = db_eval_ari(&a, &b);
        assert!(ari > 0.99, "external vs in-memory ARI {ari}");
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();

        // Local ARI to avoid a dev-dependency cycle.
        fn db_eval_ari(a: &[i32], b: &[i32]) -> f64 {
            let agree = a
                .iter()
                .zip(b)
                .filter(|&(&x, &y)| {
                    // crude agreement proxy: same-noise status and
                    // co-membership with element 0
                    (x < 0) == (y < 0)
                })
                .count();
            // refine: pairwise sample agreement
            let mut same = 0usize;
            let mut total = 0usize;
            for i in (0..a.len()).step_by(7) {
                for j in (i + 1..a.len()).step_by(13) {
                    total += 1;
                    if (a[i] == a[j]) == (b[i] == b[j]) {
                        same += 1;
                    }
                }
            }
            let _ = agree;
            same as f64 / total as f64
        }
    }
}
