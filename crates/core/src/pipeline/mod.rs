//! The six evaluation pipelines of the paper:
//! `OPTICS-{SA,CF}-{naive,weighted,Bubbles}` (Figures 5, 8 and 13).
//!
//! All six share the same three phases —
//!
//! 1. **compress** the database into ≤ `k` representative objects, either
//!    by random sampling + NN classification (`SA`) or by BIRCH (`CF`);
//! 2. **cluster** the representatives with OPTICS — as plain points
//!    (naive/weighted) or as Data Bubbles (Bubbles);
//! 3. **recover** — nothing (naive), or replace each representative by its
//!    classified member objects in the cluster ordering (weighted: §5;
//!    Bubbles: §8 step 5 with virtual reachabilities).
//!
//! Phase wall-clock timings are recorded for the runtime experiments
//! (Figures 16–18).

mod expand;
pub mod external;

use std::fmt;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use db_birch::{birch, BirchParams, Cf};
use db_optics::{optics, optics_points, ClusterOrdering, OpticsParams};
use db_rng::Rng;
use db_sampling::{
    bfr_compress, compress_by_sampling_threaded, nn_classify_parallel, squash_compress, BfrParams,
    SamplingError,
};
use db_spatial::{Dataset, SpatialError};

pub use expand::{expand_bubbles, expand_weighted, ExpandedEntry, ExpandedOrdering};
pub use external::{run_external, ExternalConfig, ExternalError, ExternalOutput};

use crate::bubble::{BubbleError, DataBubble};
use crate::matrix::DEFAULT_MAX_MATRIX_K;
use crate::space::BubbleSpace;

/// How the database is compressed into representative objects (step 1).
#[derive(Debug, Clone)]
pub enum Compressor {
    /// Random sample of exactly `k` objects + one-pass NN classification.
    Sample {
        /// RNG seed for the sample.
        seed: u64,
    },
    /// BIRCH CF-tree condensed to at most `k` leaf entries (may produce
    /// fewer — the threshold-heuristic overshoot the paper reports).
    Birch(BirchParams),
    /// Bradley–Fayyad–Reina compression (paper §2, reference \[2\]): DS/CS/RS
    /// sufficient statistics. The number of representatives is governed by
    /// the BFR parameters, not by `k`.
    Bfr(BfrParams),
    /// Grid squashing (paper §2, reference \[4\]): per-region moments over an
    /// equal-width grid with `bins_per_dim` bins in every dimension. The
    /// number of representatives is the number of occupied regions, not
    /// `k`.
    GridSquash {
        /// Bins per dimension.
        bins_per_dim: usize,
    },
}

/// How the clustering structure of the full database is recovered (steps
/// 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// OPTICS on representative points; no recovery (suffers from all
    /// three problems: size distortion, lost objects, structural
    /// distortion).
    Naive,
    /// OPTICS on representative points + §5 post-processing (solves size
    /// distortion and lost objects, not structural distortion).
    Weighted,
    /// OPTICS on Data Bubbles + virtual-reachability expansion (solves all
    /// three problems).
    Bubbles,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target number of representative objects.
    pub k: usize,
    /// Compression method (`SA` or `CF`).
    pub compressor: Compressor,
    /// Recovery method (naive / weighted / Bubbles).
    pub recovery: Recovery,
    /// OPTICS parameters used on the representatives. `min_pts` counts
    /// *original* objects for the bubble variants (Def. 7).
    pub optics: OpticsParams,
    /// Worker threads for the parallel hot paths (classification,
    /// statistics accumulation, distance-matrix build). `None` = available
    /// parallelism. Every output is bit-for-bit identical for every
    /// setting, including `Some(1)`.
    pub threads: Option<NonZeroUsize>,
    /// Largest bubble count for which the clustering phase precomputes the
    /// bubble-distance matrix ([`DEFAULT_MAX_MATRIX_K`] by default; `0`
    /// disables the matrix). Above the cap the space evaluates distances
    /// on the fly with identical results.
    pub matrix_max_k: usize,
}

impl PipelineConfig {
    /// A configuration with the default execution knobs: available
    /// parallelism and the default matrix cap.
    pub fn new(k: usize, compressor: Compressor, recovery: Recovery, optics: OpticsParams) -> Self {
        Self { k, compressor, recovery, optics, threads: None, matrix_max_k: DEFAULT_MAX_MATRIX_K }
    }
}

/// Wall-clock timings of the three phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// Step 1: sampling/BIRCH + classification + sufficient statistics.
    pub compression: Duration,
    /// Step 2: OPTICS on the representatives.
    pub clustering: Duration,
    /// Step 3: classification reuse + expansion.
    pub recovery: Duration,
}

impl PipelineTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.compression + self.clustering + self.recovery
    }
}

/// The output of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Cluster ordering over the representatives (what a user of the naive
    /// variants would look at).
    pub rep_ordering: ClusterOrdering,
    /// Cluster ordering expanded to all original objects (`None` for the
    /// naive variants, which lose the objects).
    pub expanded: Option<ExpandedOrdering>,
    /// Actual number of representatives (≤ `k`; BIRCH may undershoot).
    pub n_representatives: usize,
    /// Phase timings.
    pub timings: PipelineTimings,
    /// Trace run id of this pipeline execution: every trace event the run
    /// emitted carries it, so `db_obs::trace::events_for_run(run_id)` is
    /// the run's self-contained event stream. Ids are process-unique and
    /// assigned even when tracing is compiled out or disabled.
    pub run_id: u64,
}

/// Pipeline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The dataset was empty.
    EmptyDataset,
    /// `k` was zero.
    ZeroK,
    /// The sampling compressor failed.
    Sampling(SamplingError),
    /// The dataset violated the ingest invariants (e.g. a non-finite
    /// coordinate smuggled past validation); checked defensively before
    /// any compression runs.
    Spatial(SpatialError),
    /// A summary stage produced or received an invalid Data Bubble.
    Bubble(BubbleError),
    /// An internal invariant was violated (a bug in the pipeline itself,
    /// not in its input).
    Internal(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyDataset => write!(f, "cannot cluster an empty dataset"),
            PipelineError::ZeroK => write!(f, "number of representatives must be positive"),
            PipelineError::Sampling(e) => write!(f, "sampling failed: {e}"),
            PipelineError::Spatial(e) => write!(f, "invalid dataset: {e}"),
            PipelineError::Bubble(e) => write!(f, "invalid bubble summary: {e}"),
            PipelineError::Internal(what) => {
                write!(f, "internal pipeline invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SamplingError> for PipelineError {
    fn from(e: SamplingError) -> Self {
        PipelineError::Sampling(e)
    }
}

impl From<SpatialError> for PipelineError {
    fn from(e: SpatialError) -> Self {
        PipelineError::Spatial(e)
    }
}

impl From<BubbleError> for PipelineError {
    fn from(e: BubbleError) -> Self {
        PipelineError::Bubble(e)
    }
}

/// Runs one of the six pipelines.
///
/// # Errors
///
/// Returns an error when the dataset is empty, `k == 0`, sampling is
/// impossible (`k` larger than the dataset), the dataset contains
/// non-finite coordinates (possible only through
/// [`Dataset::from_flat_unchecked`]), or a compression stage yields a
/// degenerate summary.
pub fn run_pipeline(ds: &Dataset, cfg: &PipelineConfig) -> Result<PipelineOutput, PipelineError> {
    if ds.is_empty() {
        return Err(PipelineError::EmptyDataset);
    }
    if cfg.k == 0 {
        return Err(PipelineError::ZeroK);
    }
    // Defensive re-validation: `Dataset` constructors reject non-finite
    // coordinates, but the `from_flat_unchecked` escape hatch (and any
    // future zero-copy ingest) can bypass that. A NaN here would silently
    // poison every distance downstream, so fail with a typed error instead.
    ds.validate()?;
    // Every span and instant below records under this run's id (worker
    // threads inherit it through linked span handles), so concurrent and
    // consecutive runs stay separable in one trace buffer.
    let run_id = db_obs::RunId::next();
    let _run = run_id.enter();
    let _span = db_obs::span!("pipeline.run");
    db_obs::counter!("pipeline.runs").incr();
    db_obs::trace_instant!("pipeline.start", "n_points", ds.len());
    db_obs::log_debug!(
        "pipeline: n={} k={} recovery={:?} min_pts={}",
        ds.len(),
        cfg.k,
        cfg.recovery,
        cfg.optics.min_pts
    );

    // ------------------------------------------------------ step 1
    let t0 = Instant::now();
    let span_compression = db_obs::span!("pipeline.compression");
    let needs_members = cfg.recovery != Recovery::Naive;
    let (stats, reps, assignment): (Vec<Cf>, Dataset, Option<Vec<u32>>) = match &cfg.compressor {
        Compressor::Sample { seed } => {
            // `Bubbles` implies `needs_members` (it is non-naive), so the
            // member-recovering route is gated on `needs_members` alone.
            if needs_members {
                let c = compress_by_sampling_threaded(ds, cfg.k, *seed, cfg.threads)?;
                (c.stats, c.reps, Some(c.assignment))
            } else {
                // Naive SA: just the sample, no classification pass.
                if cfg.k > ds.len() {
                    return Err(
                        SamplingError::SampleLargerThanData { k: cfg.k, n: ds.len() }.into()
                    );
                }
                let mut rng = Rng::seed_from_u64(*seed);
                let mut ids: Vec<usize> = rng.sample_indices(ds.len(), cfg.k);
                ids.sort_unstable();
                let reps = ds.subset(&ids);
                let stats = reps.iter().map(Cf::from_point).collect();
                (stats, reps, None)
            }
        }
        Compressor::Birch(params) => {
            let cfs = birch(ds, cfg.k, params);
            let reps = centroids_of(ds.dim(), &cfs)?;
            // Step 4 of Fig. 13 / step 4 of Fig. 8: the CF variants must
            // classify the original objects to recover them. The bubbles
            // themselves always come from the CFs (Fig. 13 step 2), not
            // from the re-classification.
            let assignment = needs_members.then(|| nn_classify_parallel(ds, &reps, cfg.threads));
            (cfs, reps, assignment)
        }
        Compressor::Bfr(params) => {
            let cfs = bfr_compress(ds, params).all_cfs();
            let reps = centroids_of(ds.dim(), &cfs)?;
            let assignment = needs_members.then(|| nn_classify_parallel(ds, &reps, cfg.threads));
            (cfs, reps, assignment)
        }
        Compressor::GridSquash { bins_per_dim } => {
            // Squashing knows the exact region membership of every point;
            // no re-classification pass is needed.
            let r = squash_compress(ds, *bins_per_dim);
            let reps = centroids_of(ds.dim(), &r.regions)?;
            (r.regions, reps, needs_members.then_some(r.assignment))
        }
    };
    drop(span_compression);
    let compression = t0.elapsed();
    db_obs::trace_instant!("pipeline.compressed", "n_representatives", reps.len());

    // ------------------------------------------------------ step 2
    let t1 = Instant::now();
    let span_clustering = db_obs::span!("pipeline.clustering");
    let (rep_ordering, bubble_space) = match cfg.recovery {
        Recovery::Naive | Recovery::Weighted => (optics_points(&reps, &cfg.optics), None),
        Recovery::Bubbles => {
            let bubbles: Vec<DataBubble> =
                stats.iter().map(DataBubble::try_from_cf).collect::<Result<_, _>>()?;
            let mut space = BubbleSpace::try_new(bubbles)?;
            // All k² distances once, in parallel rows, instead of O(k)
            // scan-and-sorts per walk step; results are bit-identical.
            space.precompute_matrix(cfg.threads, cfg.matrix_max_k);
            let ordering = optics(&space, &cfg.optics);
            (ordering, Some(space))
        }
    };
    drop(span_clustering);
    let clustering = t1.elapsed();

    // ------------------------------------------------------ step 3
    let t2 = Instant::now();
    let span_recovery = db_obs::span!("pipeline.recovery");
    let expanded = match cfg.recovery {
        Recovery::Naive => None,
        Recovery::Weighted | Recovery::Bubbles => {
            let Some(assignment) = assignment.as_ref() else {
                return Err(PipelineError::Internal("classification did not run before recovery"));
            };
            let mut members = vec![Vec::new(); reps.len()];
            for (i, &a) in assignment.iter().enumerate() {
                members[a as usize].push(i);
            }
            Some(match cfg.recovery {
                Recovery::Weighted => expand_weighted(&rep_ordering, &members),
                Recovery::Bubbles => {
                    let Some(space) = bubble_space.as_ref() else {
                        return Err(PipelineError::Internal(
                            "bubble space missing for bubble recovery",
                        ));
                    };
                    expand_bubbles(&rep_ordering, &members, space, cfg.optics.min_pts)
                }
                Recovery::Naive => unreachable!(),
            })
        }
    };
    drop(span_recovery);
    let recovery = t2.elapsed();

    Ok(PipelineOutput {
        rep_ordering,
        expanded,
        n_representatives: reps.len(),
        timings: PipelineTimings { compression, clustering, recovery },
        run_id: run_id.get(),
    })
}

/// Centroid dataset of a CF collection. Fallible: a compressor handed
/// degenerate statistics would surface here as a non-finite centroid,
/// which the `Dataset` ingest boundary rejects.
fn centroids_of(dim: usize, cfs: &[Cf]) -> Result<Dataset, PipelineError> {
    let mut reps = Dataset::with_capacity(dim, cfs.len())?;
    let mut buf = Vec::with_capacity(dim);
    for cf in cfs {
        cf.centroid_into(&mut buf);
        reps.push(&buf)?;
    }
    Ok(reps)
}

/// `OPTICS-SA naive` (Fig. 5): OPTICS on a plain random sample.
pub fn optics_sa_naive(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(ds, &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Naive, *optics))
}

/// `OPTICS-CF naive` (Fig. 5): OPTICS on BIRCH CF centers.
pub fn optics_cf_naive(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Birch(birch_params.clone()), Recovery::Naive, *optics),
    )
}

/// `OPTICS-SA weighted` (Fig. 8): sample + §5 post-processing.
pub fn optics_sa_weighted(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Weighted, *optics),
    )
}

/// `OPTICS-CF weighted` (Fig. 8): CF centers + §5 post-processing.
pub fn optics_cf_weighted(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(
            k,
            Compressor::Birch(birch_params.clone()),
            Recovery::Weighted,
            *optics,
        ),
    )
}

/// `OPTICS-SA Bubbles` (Fig. 13): Data Bubbles from sampled sufficient
/// statistics.
pub fn optics_sa_bubbles(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Bubbles, *optics),
    )
}

/// `OPTICS-CF Bubbles` (Fig. 13): Data Bubbles from BIRCH CFs.
pub fn optics_cf_bubbles(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(
            k,
            Compressor::Birch(birch_params.clone()),
            Recovery::Bubbles,
            *optics,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense squares far apart, 800 points each.
    fn two_squares() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..800 {
            let (x, y) = ((i % 40) as f64 * 0.25, (i / 40) as f64 * 0.25);
            ds.push(&[x, y]).unwrap();
            ds.push(&[x + 200.0, y]).unwrap();
        }
        ds
    }

    fn params() -> OpticsParams {
        OpticsParams { eps: f64::INFINITY, min_pts: 20 }
    }

    fn two_cluster_check(labels: &[i32], ds: &Dataset) {
        // Points with even index belong to square A, odd to square B.
        let mut a_labels: Vec<i32> = Vec::new();
        let mut b_labels: Vec<i32> = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                a_labels.push(l);
            } else {
                b_labels.push(l);
            }
        }
        let a_major = majority(&a_labels);
        let b_major = majority(&b_labels);
        assert_ne!(a_major, b_major, "squares merged");
        assert!(a_major >= 0 && b_major >= 0);
        let agree = labels
            .iter()
            .enumerate()
            .filter(|&(i, &l)| l == if i % 2 == 0 { a_major } else { b_major })
            .count();
        assert!(
            agree as f64 / ds.len() as f64 > 0.95,
            "only {agree}/{} correctly clustered",
            ds.len()
        );
    }

    fn majority(labels: &[i32]) -> i32 {
        let mut counts = std::collections::HashMap::new();
        for &l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l).unwrap()
    }

    #[test]
    fn sa_bubbles_recovers_structure() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
        assert_eq!(out.n_representatives, 40);
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn cf_bubbles_recovers_structure() {
        let ds = two_squares();
        let out = optics_cf_bubbles(&ds, 40, &BirchParams::default(), &params()).unwrap();
        assert!(out.n_representatives <= 40);
        assert!(out.n_representatives >= 2);
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn weighted_variants_recover_all_objects() {
        let ds = two_squares();
        for out in [
            optics_sa_weighted(&ds, 40, 7, &params()).unwrap(),
            optics_cf_weighted(&ds, 40, &BirchParams::default(), &params()).unwrap(),
        ] {
            let expanded = out.expanded.as_ref().unwrap();
            assert_eq!(expanded.len(), ds.len());
            let mut order = expanded.order();
            order.sort_unstable();
            assert_eq!(order, (0..ds.len() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn naive_variants_lose_objects() {
        let ds = two_squares();
        let sa = optics_sa_naive(&ds, 40, 7, &params()).unwrap();
        assert!(sa.expanded.is_none());
        assert_eq!(sa.rep_ordering.len(), 40);
        let cf = optics_cf_naive(&ds, 40, &BirchParams::default(), &params()).unwrap();
        assert!(cf.expanded.is_none());
        assert!(cf.rep_ordering.len() <= 40);
    }

    #[test]
    fn timings_are_recorded() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 30, 1, &params()).unwrap();
        assert!(out.timings.total() >= out.timings.clustering);
        assert!(out.timings.compression > Duration::ZERO);
    }

    #[test]
    fn errors_on_bad_input() {
        let empty = Dataset::new(2).unwrap();
        assert_eq!(
            run_pipeline(
                &empty,
                &PipelineConfig::new(5, Compressor::Sample { seed: 0 }, Recovery::Naive, params())
            )
            .unwrap_err(),
            PipelineError::EmptyDataset
        );
        let ds = two_squares();
        assert_eq!(optics_sa_naive(&ds, 0, 0, &params()).unwrap_err(), PipelineError::ZeroK);
        assert!(matches!(
            optics_sa_naive(&ds, ds.len() + 1, 0, &params()).unwrap_err(),
            PipelineError::Sampling(_)
        ));
        // Display impls.
        assert!(PipelineError::EmptyDataset.to_string().contains("empty"));
        assert!(PipelineError::ZeroK.to_string().contains("positive"));
    }

    #[test]
    fn smuggled_nan_yields_typed_spatial_error() {
        // `from_flat_unchecked` bypasses the ingest validation; the
        // pipeline's defensive re-check must catch the NaN for every
        // compressor instead of poisoning distances or panicking.
        let ds = Dataset::from_flat_unchecked(2, vec![0.0, 0.0, 1.0, f64::NAN, 2.0, 0.0]);
        for compressor in [
            Compressor::Sample { seed: 0 },
            Compressor::Birch(BirchParams::default()),
            Compressor::GridSquash { bins_per_dim: 4 },
        ] {
            let err =
                run_pipeline(&ds, &PipelineConfig::new(2, compressor, Recovery::Bubbles, params()))
                    .unwrap_err();
            assert_eq!(
                err,
                PipelineError::Spatial(SpatialError::NonFiniteCoordinate { point: 1, coord: 1 })
            );
        }
    }

    #[test]
    fn bfr_compressor_pipeline_recovers_structure() {
        let ds = two_squares();
        let out = run_pipeline(
            &ds,
            &PipelineConfig::new(
                40,
                Compressor::Bfr(db_sampling::BfrParams {
                    primary_clusters: 16,
                    ..db_sampling::BfrParams::default()
                }),
                Recovery::Bubbles,
                params(),
            ),
        )
        .unwrap();
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn squash_compressor_pipeline_recovers_structure() {
        let ds = two_squares();
        let out = run_pipeline(
            &ds,
            &PipelineConfig::new(
                1,
                Compressor::GridSquash { bins_per_dim: 24 },
                Recovery::Bubbles,
                params(),
            ),
        )
        .unwrap();
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
        // Squash keeps exact membership: the representative count equals
        // the number of occupied regions.
        assert!(out.n_representatives > 2);
    }

    #[test]
    fn naive_sa_sample_matches_weighted_sample() {
        // The naive and weighted SA variants draw the same sample for the
        // same seed (step 1 is shared), so their rep orderings coincide.
        let ds = two_squares();
        let naive = optics_sa_naive(&ds, 25, 3, &params()).unwrap();
        let weighted = optics_sa_weighted(&ds, 25, 3, &params()).unwrap();
        let ids_n: Vec<usize> = naive.rep_ordering.entries.iter().map(|e| e.id).collect();
        let ids_w: Vec<usize> = weighted.rep_ordering.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids_n, ids_w);
    }

    #[test]
    fn bubble_jump_is_preserved_in_expansion() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 40, 11, &params()).unwrap();
        let expanded = out.expanded.unwrap();
        let reach = expanded.reachabilities();
        // Exactly one inter-cluster jump of ~200 among the finite values.
        let big = reach.iter().filter(|r| r.is_finite() && **r > 100.0).count();
        assert_eq!(big, 1, "expected exactly one big jump");
    }
}
