//! The six evaluation pipelines of the paper:
//! `OPTICS-{SA,CF}-{naive,weighted,Bubbles}` (Figures 5, 8 and 13).
//!
//! All six share the same three phases —
//!
//! 1. **compress** the database into ≤ `k` representative objects, either
//!    by random sampling + NN classification (`SA`) or by BIRCH (`CF`);
//! 2. **cluster** the representatives with OPTICS — as plain points
//!    (naive/weighted) or as Data Bubbles (Bubbles);
//! 3. **recover** — nothing (naive), or replace each representative by its
//!    classified member objects in the cluster ordering (weighted: §5;
//!    Bubbles: §8 step 5 with virtual reachabilities).
//!
//! Phase wall-clock timings are recorded for the runtime experiments
//! (Figures 16–18).

mod expand;
pub mod external;

use std::fmt;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use db_birch::{birch_supervised, BirchParams, Cf};
use db_optics::{optics_points_supervised, optics_supervised, ClusterOrdering, OpticsParams};
use db_rng::Rng;
use db_sampling::{
    bfr_compress, compress_by_sampling_supervised, nn_classify_supervised, squash_compress,
    BfrParams, CompressStop, IncrementalCompression, SamplingError,
};
use db_spatial::{Dataset, SpatialError};
use db_supervise::{fault, Stop, Supervisor};
pub use db_supervise::{CancelToken, RunBudget};

pub use expand::{
    expand_bubbles, expand_bubbles_supervised, expand_weighted, expand_weighted_supervised,
    ExpandedEntry, ExpandedOrdering,
};
pub use external::{run_external, ExternalConfig, ExternalError, ExternalOutput};

use crate::bubble::{BubbleError, DataBubble};
use crate::matrix::DEFAULT_MAX_MATRIX_K;
use crate::space::BubbleSpace;

/// How the database is compressed into representative objects (step 1).
#[derive(Debug, Clone)]
pub enum Compressor {
    /// Random sample of exactly `k` objects + one-pass NN classification.
    Sample {
        /// RNG seed for the sample.
        seed: u64,
    },
    /// BIRCH CF-tree condensed to at most `k` leaf entries (may produce
    /// fewer — the threshold-heuristic overshoot the paper reports).
    Birch(BirchParams),
    /// Bradley–Fayyad–Reina compression (paper §2, reference \[2\]): DS/CS/RS
    /// sufficient statistics. The number of representatives is governed by
    /// the BFR parameters, not by `k`.
    Bfr(BfrParams),
    /// Grid squashing (paper §2, reference \[4\]): per-region moments over an
    /// equal-width grid with `bins_per_dim` bins in every dimension. The
    /// number of representatives is the number of occupied regions, not
    /// `k`.
    GridSquash {
        /// Bins per dimension.
        bins_per_dim: usize,
    },
}

/// How the clustering structure of the full database is recovered (steps
/// 2–3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// OPTICS on representative points; no recovery (suffers from all
    /// three problems: size distortion, lost objects, structural
    /// distortion).
    Naive,
    /// OPTICS on representative points + §5 post-processing (solves size
    /// distortion and lost objects, not structural distortion).
    Weighted,
    /// OPTICS on Data Bubbles + virtual-reachability expansion (solves all
    /// three problems).
    Bubbles,
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Target number of representative objects.
    pub k: usize,
    /// Compression method (`SA` or `CF`).
    pub compressor: Compressor,
    /// Recovery method (naive / weighted / Bubbles).
    pub recovery: Recovery,
    /// OPTICS parameters used on the representatives. `min_pts` counts
    /// *original* objects for the bubble variants (Def. 7).
    pub optics: OpticsParams,
    /// Worker threads for the parallel hot paths (classification,
    /// statistics accumulation, distance-matrix build). `None` = available
    /// parallelism. Every output is bit-for-bit identical for every
    /// setting, including `Some(1)`.
    pub threads: Option<NonZeroUsize>,
    /// Largest bubble count for which the clustering phase precomputes the
    /// bubble-distance matrix ([`DEFAULT_MAX_MATRIX_K`] by default; `0`
    /// disables the matrix). Above the cap the space evaluates distances
    /// on the fly with identical results.
    pub matrix_max_k: usize,
    /// Resource envelope of the run: an optional wall-clock deadline
    /// (typed [`PipelineError::DeadlineExceeded`] when overrun) and an
    /// optional byte cap on the precomputed distance matrix (skipping the
    /// matrix, with bit-identical results). Unlimited by default — with
    /// nothing armed, supervision costs one amortized atomic load per
    /// check tick and the output is bit-for-bit the pre-supervision one.
    pub budget: RunBudget,
    /// Shared cancellation token: cancel it from any thread and the run
    /// stops at the next cooperative check with
    /// [`PipelineError::Cancelled`]. `None` = not externally cancellable.
    pub cancel: Option<CancelToken>,
}

impl PipelineConfig {
    /// A configuration with the default execution knobs: available
    /// parallelism, the default matrix cap, and no budget.
    pub fn new(k: usize, compressor: Compressor, recovery: Recovery, optics: OpticsParams) -> Self {
        Self {
            k,
            compressor,
            recovery,
            optics,
            threads: None,
            matrix_max_k: DEFAULT_MAX_MATRIX_K,
            budget: RunBudget::unlimited(),
            cancel: None,
        }
    }
}

/// Wall-clock timings of the three phases.
#[derive(Debug, Clone, Copy, Default)]
pub struct PipelineTimings {
    /// Step 1: sampling/BIRCH + classification + sufficient statistics.
    pub compression: Duration,
    /// Step 2: OPTICS on the representatives.
    pub clustering: Duration,
    /// Step 3: classification reuse + expansion.
    pub recovery: Duration,
}

impl PipelineTimings {
    /// Total pipeline time.
    pub fn total(&self) -> Duration {
        self.compression + self.clustering + self.recovery
    }
}

/// The pipeline phase a supervised stop was observed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelinePhase {
    /// Step 1: sampling/BIRCH/BFR/squash + classification + statistics.
    Compression,
    /// Step 2: matrix build + OPTICS on the representatives.
    Clustering,
    /// Step 3: expansion back to the original objects.
    Recovery,
}

impl fmt::Display for PipelinePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelinePhase::Compression => write!(f, "compression"),
            PipelinePhase::Clustering => write!(f, "clustering"),
            PipelinePhase::Recovery => write!(f, "recovery"),
        }
    }
}

/// One rung of the degradation ladder taken by [`run_pipeline_supervised`]:
/// why the previous attempt stopped and what the retry coarsened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Degradation {
    /// The typed error that triggered this retry.
    pub cause: PipelineError,
    /// Human-readable description of the coarsening applied (e.g.
    /// "halved k to 20").
    pub action: String,
}

/// The output of a pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Cluster ordering over the representatives (what a user of the naive
    /// variants would look at).
    pub rep_ordering: ClusterOrdering,
    /// Cluster ordering expanded to all original objects (`None` for the
    /// naive variants, which lose the objects).
    pub expanded: Option<ExpandedOrdering>,
    /// Actual number of representatives (≤ `k`; BIRCH may undershoot).
    pub n_representatives: usize,
    /// Phase timings.
    pub timings: PipelineTimings,
    /// Trace run id of this pipeline execution: every trace event the run
    /// emitted carries it, so `db_obs::trace::events_for_run(run_id)` is
    /// the run's self-contained event stream. Ids are process-unique and
    /// assigned even when tracing is compiled out or disabled.
    pub run_id: u64,
    /// Degradation-ladder rungs taken before this output was produced.
    /// Always empty for [`run_pipeline`] (which never retries); populated
    /// by [`run_pipeline_supervised`] when earlier attempts overran their
    /// deadline.
    pub degradations: Vec<Degradation>,
}

/// Pipeline failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The dataset was empty.
    EmptyDataset,
    /// `k` was zero.
    ZeroK,
    /// The sampling compressor failed.
    Sampling(SamplingError),
    /// The dataset violated the ingest invariants (e.g. a non-finite
    /// coordinate smuggled past validation); checked defensively before
    /// any compression runs.
    Spatial(SpatialError),
    /// A summary stage produced or received an invalid Data Bubble.
    Bubble(BubbleError),
    /// An internal invariant was violated (a bug in the pipeline itself,
    /// not in its input).
    Internal(&'static str),
    /// The run's [`CancelToken`] was cancelled; the named phase observed
    /// it at a cooperative check and discarded its partial output.
    Cancelled {
        /// The phase that observed the cancellation.
        phase: PipelinePhase,
    },
    /// The run overran its [`RunBudget::deadline`].
    DeadlineExceeded {
        /// The phase that observed the overrun.
        phase: PipelinePhase,
        /// Time since the run started when the overrun was observed.
        elapsed: Duration,
    },
    /// A worker thread panicked; the panic was captured (the process
    /// survives) and the phase's partial results were discarded.
    WorkerPanic {
        /// The phase whose worker panicked.
        phase: PipelinePhase,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::EmptyDataset => write!(f, "cannot cluster an empty dataset"),
            PipelineError::ZeroK => write!(f, "number of representatives must be positive"),
            PipelineError::Sampling(e) => write!(f, "sampling failed: {e}"),
            PipelineError::Spatial(e) => write!(f, "invalid dataset: {e}"),
            PipelineError::Bubble(e) => write!(f, "invalid bubble summary: {e}"),
            PipelineError::Internal(what) => {
                write!(f, "internal pipeline invariant violated: {what}")
            }
            PipelineError::Cancelled { phase } => write!(f, "run cancelled during {phase}"),
            PipelineError::DeadlineExceeded { phase, elapsed } => {
                write!(f, "deadline exceeded during {phase} after {:.3}s", elapsed.as_secs_f64())
            }
            PipelineError::WorkerPanic { phase, message } => {
                write!(f, "worker panicked during {phase}: {message}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<SamplingError> for PipelineError {
    fn from(e: SamplingError) -> Self {
        PipelineError::Sampling(e)
    }
}

impl From<SpatialError> for PipelineError {
    fn from(e: SpatialError) -> Self {
        PipelineError::Spatial(e)
    }
}

impl From<BubbleError> for PipelineError {
    fn from(e: BubbleError) -> Self {
        PipelineError::Bubble(e)
    }
}

/// Maps a supervised [`Stop`] to its typed pipeline error with phase
/// attribution, bumping the matching counter and leaving a trace instant
/// so stopped runs are visible in metrics and traces.
fn stop_error(stop: Stop, phase: PipelinePhase) -> PipelineError {
    match stop {
        Stop::Cancelled => {
            db_obs::counter!("pipeline.cancelled").incr();
            db_obs::trace_instant!("pipeline.cancelled", "phase", phase as usize);
            PipelineError::Cancelled { phase }
        }
        Stop::DeadlineExceeded { elapsed } => {
            db_obs::counter!("pipeline.deadline_exceeded").incr();
            db_obs::trace_instant!("pipeline.deadline_exceeded", "phase", phase as usize);
            PipelineError::DeadlineExceeded { phase, elapsed }
        }
        Stop::Panicked { message } => {
            db_obs::counter!("pipeline.worker_panics").incr();
            db_obs::trace_instant!("pipeline.worker_panic", "phase", phase as usize);
            PipelineError::WorkerPanic { phase, message }
        }
    }
}

/// Maps a supervised compression outcome into the pipeline error space.
fn compress_error(e: CompressStop, phase: PipelinePhase) -> PipelineError {
    match e {
        CompressStop::Sampling(e) => PipelineError::Sampling(e),
        CompressStop::Stopped(stop) => stop_error(stop, phase),
    }
}

/// Runs one of the six pipelines.
///
/// The run is supervised by [`PipelineConfig::budget`] and
/// [`PipelineConfig::cancel`]: every phase consults the supervisor on an
/// amortized tick, worker panics in the parallel hot paths are captured
/// as [`PipelineError::WorkerPanic`], and a stopped run discards all
/// partial output. A run that completes is bit-for-bit identical to a run
/// with no budget armed. This entry point never retries — see
/// [`run_pipeline_supervised`] for the degradation ladder.
///
/// # Errors
///
/// Returns an error when the dataset is empty, `k == 0`, sampling is
/// impossible (`k` larger than the dataset), the dataset contains
/// non-finite coordinates (possible only through
/// [`Dataset::from_flat_unchecked`]), a compression stage yields a
/// degenerate summary, or the supervisor stopped the run
/// ([`PipelineError::Cancelled`] / [`PipelineError::DeadlineExceeded`] /
/// [`PipelineError::WorkerPanic`]).
pub fn run_pipeline(ds: &Dataset, cfg: &PipelineConfig) -> Result<PipelineOutput, PipelineError> {
    if ds.is_empty() {
        return Err(PipelineError::EmptyDataset);
    }
    if cfg.k == 0 {
        return Err(PipelineError::ZeroK);
    }
    // Defensive re-validation: `Dataset` constructors reject non-finite
    // coordinates, but the `from_flat_unchecked` escape hatch (and any
    // future zero-copy ingest) can bypass that. A NaN here would silently
    // poison every distance downstream, so fail with a typed error instead.
    ds.validate()?;
    // Arm the supervisor: the caller's token (or a private one) plus the
    // budget deadline, measured from here. With nothing armed every check
    // is one atomic load, amortized over the tick cadence.
    let token = cfg.cancel.clone().unwrap_or_default();
    let sup = Supervisor::new(token, cfg.budget.deadline);
    // Every span and instant below records under this run's id (worker
    // threads inherit it through linked span handles), so concurrent and
    // consecutive runs stay separable in one trace buffer.
    let run_id = db_obs::RunId::next();
    let _run = run_id.enter();
    let _span = db_obs::span!("pipeline.run");
    db_obs::counter!("pipeline.runs").incr();
    db_obs::trace_instant!("pipeline.start", "n_points", ds.len());
    db_obs::log_debug!(
        "pipeline: n={} k={} recovery={:?} min_pts={}",
        ds.len(),
        cfg.k,
        cfg.recovery,
        cfg.optics.min_pts
    );

    // ------------------------------------------------------ step 1
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t0 = Instant::now();
    let span_compression = db_obs::span!("pipeline.compression");
    fault::inject("compression", sup.token());
    let needs_members = cfg.recovery != Recovery::Naive;
    let compression_stop = |stop| stop_error(stop, PipelinePhase::Compression);
    let (stats, reps, assignment): (Vec<Cf>, Dataset, Option<Vec<u32>>) = match &cfg.compressor {
        Compressor::Sample { seed } => {
            // `Bubbles` implies `needs_members` (it is non-naive), so the
            // member-recovering route is gated on `needs_members` alone.
            if needs_members {
                let c = compress_by_sampling_supervised(ds, cfg.k, *seed, cfg.threads, &sup)
                    .map_err(|e| compress_error(e, PipelinePhase::Compression))?;
                (c.stats, c.reps, Some(c.assignment))
            } else {
                // Naive SA: just the sample, no classification pass.
                if cfg.k > ds.len() {
                    return Err(
                        SamplingError::SampleLargerThanData { k: cfg.k, n: ds.len() }.into()
                    );
                }
                sup.check().map_err(compression_stop)?;
                let mut rng = Rng::seed_from_u64(*seed);
                let mut ids: Vec<usize> = rng.sample_indices(ds.len(), cfg.k);
                ids.sort_unstable();
                let reps = ds.subset(&ids);
                let stats = reps.iter().map(Cf::from_point).collect();
                (stats, reps, None)
            }
        }
        Compressor::Birch(params) => {
            let cfs = birch_supervised(ds, cfg.k, params, &sup).map_err(compression_stop)?;
            let reps = centroids_of(ds.dim(), &cfs)?;
            // Step 4 of Fig. 13 / step 4 of Fig. 8: the CF variants must
            // classify the original objects to recover them. The bubbles
            // themselves always come from the CFs (Fig. 13 step 2), not
            // from the re-classification.
            let assignment = match needs_members {
                true => Some(
                    nn_classify_supervised(ds, &reps, cfg.threads, &sup)
                        .map_err(compression_stop)?,
                ),
                false => None,
            };
            (cfs, reps, assignment)
        }
        Compressor::Bfr(params) => {
            // BFR's internal passes are short; supervision brackets them.
            sup.check().map_err(compression_stop)?;
            let cfs = bfr_compress(ds, params).all_cfs();
            let reps = centroids_of(ds.dim(), &cfs)?;
            let assignment = match needs_members {
                true => Some(
                    nn_classify_supervised(ds, &reps, cfg.threads, &sup)
                        .map_err(compression_stop)?,
                ),
                false => None,
            };
            (cfs, reps, assignment)
        }
        Compressor::GridSquash { bins_per_dim } => {
            // Squashing knows the exact region membership of every point;
            // no re-classification pass is needed.
            sup.check().map_err(compression_stop)?;
            let r = squash_compress(ds, *bins_per_dim);
            let reps = centroids_of(ds.dim(), &r.regions)?;
            (r.regions, reps, needs_members.then_some(r.assignment))
        }
    };
    drop(span_compression);
    let compression = t0.elapsed();
    db_obs::trace_instant!("pipeline.compressed", "n_representatives", reps.len());

    // ------------------------------------------------------ steps 2–3
    let cr = cluster_and_recover(&reps, &stats, assignment.as_deref(), cfg, &sup)?;

    Ok(PipelineOutput {
        rep_ordering: cr.rep_ordering,
        expanded: cr.expanded,
        n_representatives: reps.len(),
        timings: PipelineTimings { compression, clustering: cr.clustering, recovery: cr.recovery },
        run_id: run_id.get(),
        degradations: Vec::new(),
    })
}

/// Output of the shared clustering + recovery stages (steps 2–3).
struct ClusterRecover {
    rep_ordering: ClusterOrdering,
    expanded: Option<ExpandedOrdering>,
    clustering: Duration,
    recovery: Duration,
}

/// Steps 2–3 shared by [`run_pipeline`] and
/// [`recluster_from_compression`]: OPTICS over the representatives (as
/// points or Data Bubbles, with the supervised matrix precompute) followed
/// by the configured recovery expansion. `assignment` maps every original
/// object to its representative and is required for non-naive recoveries.
fn cluster_and_recover(
    reps: &Dataset,
    stats: &[Cf],
    assignment: Option<&[u32]>,
    cfg: &PipelineConfig,
    sup: &Supervisor,
) -> Result<ClusterRecover, PipelineError> {
    // ------------------------------------------------------ step 2
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t1 = Instant::now();
    let span_clustering = db_obs::span!("pipeline.clustering");
    fault::inject("clustering", sup.token());
    let clustering_stop = |stop| stop_error(stop, PipelinePhase::Clustering);
    let (rep_ordering, bubble_space) = match cfg.recovery {
        Recovery::Naive | Recovery::Weighted => {
            (optics_points_supervised(reps, &cfg.optics, sup).map_err(clustering_stop)?, None)
        }
        Recovery::Bubbles => {
            let bubbles: Vec<DataBubble> =
                stats.iter().map(DataBubble::try_from_cf).collect::<Result<_, _>>()?;
            let mut space = BubbleSpace::try_new(bubbles)?;
            // All k² distances once, in parallel rows, instead of O(k)
            // scan-and-sorts per walk step; results are bit-identical.
            // Skipped (still bit-identical) when the budget's matrix byte
            // cap would be exceeded.
            space
                .precompute_matrix_supervised(
                    cfg.threads,
                    cfg.matrix_max_k,
                    cfg.budget.max_matrix_bytes,
                    sup,
                )
                .map_err(clustering_stop)?;
            let ordering = optics_supervised(&space, &cfg.optics, sup).map_err(clustering_stop)?;
            (ordering, Some(space))
        }
    };
    drop(span_clustering);
    let clustering = t1.elapsed();

    // ------------------------------------------------------ step 3
    // db-audit: allow(no-wallclock-in-core) -- PipelineTimings metadata:
    // phase wall times are reported in the output, never steer computation.
    let t2 = Instant::now();
    let span_recovery = db_obs::span!("pipeline.recovery");
    fault::inject("recovery", sup.token());
    let recovery_stop = |stop| stop_error(stop, PipelinePhase::Recovery);
    let expanded = match cfg.recovery {
        Recovery::Naive => None,
        Recovery::Weighted | Recovery::Bubbles => {
            let Some(assignment) = assignment else {
                return Err(PipelineError::Internal("classification did not run before recovery"));
            };
            let mut members = vec![Vec::new(); reps.len()];
            for (i, &a) in assignment.iter().enumerate() {
                members[a as usize].push(i);
            }
            Some(match cfg.recovery {
                Recovery::Weighted => expand_weighted_supervised(&rep_ordering, &members, sup)
                    .map_err(recovery_stop)?,
                Recovery::Bubbles => {
                    let Some(space) = bubble_space.as_ref() else {
                        return Err(PipelineError::Internal(
                            "bubble space missing for bubble recovery",
                        ));
                    };
                    expand_bubbles_supervised(
                        &rep_ordering,
                        &members,
                        space,
                        cfg.optics.min_pts,
                        sup,
                    )
                    .map_err(recovery_stop)?
                }
                Recovery::Naive => unreachable!(),
            })
        }
    };
    drop(span_recovery);
    let recovery = t2.elapsed();

    Ok(ClusterRecover { rep_ordering, expanded, clustering, recovery })
}

/// Re-runs the clustering and recovery stages (steps 2–3) on a live
/// [`IncrementalCompression`] — the paper's warehouse loop: absorb inserts
/// via CF additivity, then re-run OPTICS on the (cheap) compressed set
/// whenever a fresh cluster ordering is wanted. No compression pass runs:
/// the representatives, sufficient statistics and classification come
/// from `inc` as-is, so on a compression with zero absorbs the output is
/// bit-for-bit the [`run_pipeline`] output the compression came from
/// (same reps, stats and assignment ⇒ same ordering and expansion).
///
/// `cfg.k` and `cfg.compressor` are ignored (the compression fixes both);
/// `cfg.recovery`, `cfg.optics` and the execution/budget knobs apply
/// exactly as in [`run_pipeline`]. [`PipelineTimings::compression`] is
/// zero.
///
/// # Errors
///
/// As [`run_pipeline`], except the compression-argument errors cannot
/// occur. [`PipelineError::Cancelled`] / [`PipelineError::DeadlineExceeded`]
/// / [`PipelineError::WorkerPanic`] surface exactly as there.
pub fn recluster_from_compression(
    inc: &IncrementalCompression,
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let reps = inc.representatives();
    if reps.is_empty() {
        return Err(PipelineError::EmptyDataset);
    }
    // The absorb boundary validates every point, but re-check the
    // representatives defensively, mirroring `run_pipeline`.
    reps.validate()?;
    let token = cfg.cancel.clone().unwrap_or_default();
    let sup = Supervisor::new(token, cfg.budget.deadline);
    let run_id = db_obs::RunId::next();
    let _run = run_id.enter();
    let _span = db_obs::span!("pipeline.recluster");
    db_obs::counter!("pipeline.reclusters").incr();
    db_obs::trace_instant!("pipeline.recluster.start", "n_objects", inc.n_objects());

    let cr = cluster_and_recover(reps, inc.stats(), Some(inc.assignment()), cfg, &sup)?;
    Ok(PipelineOutput {
        rep_ordering: cr.rep_ordering,
        expanded: cr.expanded,
        n_representatives: reps.len(),
        timings: PipelineTimings {
            compression: Duration::ZERO,
            clustering: cr.clustering,
            recovery: cr.recovery,
        },
        run_id: run_id.get(),
        degradations: Vec::new(),
    })
}

/// [`recluster_from_compression`] with the degradation ladder of
/// [`run_pipeline_supervised`], minus the halve-`k` rung (the compression
/// fixes `k`): on [`PipelineError::DeadlineExceeded`] the retry first
/// disables the precomputed distance matrix, then drops to a single
/// thread, each attempt under a fresh deadline. Cancellations and worker
/// panics are never retried. The outcome is reported to
/// [`db_obs::health`] exactly as for supervised pipeline runs — except
/// for cancellations, which are a caller decision, not a service failure.
///
/// # Errors
///
/// As [`recluster_from_compression`];
/// [`PipelineError::DeadlineExceeded`] only after both rungs failed.
pub fn recluster_supervised(
    inc: &IncrementalCompression,
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let mut attempt = cfg.clone();
    let mut degradations: Vec<Degradation> = Vec::new();
    loop {
        match recluster_from_compression(inc, &attempt) {
            Ok(mut out) => {
                out.degradations = degradations;
                if out.degradations.is_empty() {
                    db_obs::health::report_ok();
                } else {
                    db_obs::health::report_degraded(format!(
                        "recluster degraded {} rung(s): {}",
                        out.degradations.len(),
                        out.degradations
                            .iter()
                            .map(|d| d.action.as_str())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ));
                }
                return Ok(out);
            }
            Err(cause @ PipelineError::DeadlineExceeded { .. }) if degradations.len() < 2 => {
                let action = match degradations.len() {
                    0 => {
                        attempt.matrix_max_k = 0;
                        "disabled the distance matrix".to_string()
                    }
                    _ => {
                        attempt.threads = NonZeroUsize::new(1);
                        "dropped to a single thread".to_string()
                    }
                };
                db_obs::counter!("pipeline.degradations").incr();
                db_obs::trace_instant!("pipeline.degraded", "rung", degradations.len() + 1);
                db_obs::log_warn!("recluster over budget ({cause}); retrying coarser: {action}");
                degradations.push(Degradation { cause, action });
            }
            Err(e @ PipelineError::Cancelled { .. }) => {
                // A superseded or withdrawn recluster is not a health
                // event: the cache keeps serving and a newer run owns the
                // health slot.
                return Err(e);
            }
            Err(e) => {
                db_obs::health::report_failing(e.to_string());
                return Err(e);
            }
        }
    }
}

/// Maximum number of degradation-ladder retries of
/// [`run_pipeline_supervised`] (halve `k`; disable the distance matrix;
/// drop to a single thread).
const MAX_DEGRADATIONS: usize = 3;

/// Runs a pipeline under its budget with BIRCH-style graceful degradation:
/// when an attempt overruns [`RunBudget::deadline`], it is retried with a
/// coarser configuration — the paper's own quality-vs-cost dial — instead
/// of failing outright. The rungs, applied cumulatively:
///
/// 1. halve `k` (fewer representatives: quadratic savings in the
///    clustering phase, linear in classification);
/// 2. disable the precomputed distance matrix (`matrix_max_k = 0`:
///    bounded memory, on-the-fly distances);
/// 3. drop to a single worker thread (no spawn overhead on tiny budgets).
///
/// Each attempt gets a fresh deadline of the same duration. Rungs taken
/// are recorded in [`PipelineOutput::degradations`], counted under
/// `pipeline.degradations`, and visible as `pipeline.degraded` trace
/// instants; the outcome is reported to [`db_obs::health`] (served by
/// `db-obsd`'s `/healthz`). Cancellations and worker panics are **not**
/// retried: a cancel is a caller decision and a panic is a bug a coarser
/// config would only mask.
///
/// # Errors
///
/// As [`run_pipeline`]; [`PipelineError::DeadlineExceeded`] only after
/// the whole ladder is exhausted.
pub fn run_pipeline_supervised(
    ds: &Dataset,
    cfg: &PipelineConfig,
) -> Result<PipelineOutput, PipelineError> {
    let mut attempt = cfg.clone();
    let mut degradations: Vec<Degradation> = Vec::new();
    loop {
        match run_pipeline(ds, &attempt) {
            Ok(mut out) => {
                out.degradations = degradations;
                if out.degradations.is_empty() {
                    db_obs::health::report_ok();
                } else {
                    db_obs::health::report_degraded(format!(
                        "pipeline degraded {} rung(s): {}",
                        out.degradations.len(),
                        out.degradations
                            .iter()
                            .map(|d| d.action.as_str())
                            .collect::<Vec<_>>()
                            .join("; ")
                    ));
                }
                return Ok(out);
            }
            Err(cause @ PipelineError::DeadlineExceeded { .. })
                if degradations.len() < MAX_DEGRADATIONS =>
            {
                let action = match degradations.len() {
                    0 => {
                        attempt.k = (attempt.k / 2).max(1);
                        format!("halved k to {}", attempt.k)
                    }
                    1 => {
                        attempt.matrix_max_k = 0;
                        "disabled the distance matrix".to_string()
                    }
                    _ => {
                        attempt.threads = NonZeroUsize::new(1);
                        "dropped to a single thread".to_string()
                    }
                };
                db_obs::counter!("pipeline.degradations").incr();
                db_obs::trace_instant!("pipeline.degraded", "rung", degradations.len() + 1);
                db_obs::log_warn!("pipeline over budget ({cause}); retrying coarser: {action}");
                degradations.push(Degradation { cause, action });
            }
            Err(e) => {
                db_obs::health::report_failing(e.to_string());
                return Err(e);
            }
        }
    }
}

/// Centroid dataset of a CF collection. Fallible: a compressor handed
/// degenerate statistics would surface here as a non-finite centroid,
/// which the `Dataset` ingest boundary rejects.
fn centroids_of(dim: usize, cfs: &[Cf]) -> Result<Dataset, PipelineError> {
    let mut reps = Dataset::with_capacity(dim, cfs.len())?;
    let mut buf = Vec::with_capacity(dim);
    for cf in cfs {
        cf.centroid_into(&mut buf);
        reps.push(&buf)?;
    }
    Ok(reps)
}

/// `OPTICS-SA naive` (Fig. 5): OPTICS on a plain random sample.
pub fn optics_sa_naive(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(ds, &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Naive, *optics))
}

/// `OPTICS-CF naive` (Fig. 5): OPTICS on BIRCH CF centers.
pub fn optics_cf_naive(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Birch(birch_params.clone()), Recovery::Naive, *optics),
    )
}

/// `OPTICS-SA weighted` (Fig. 8): sample + §5 post-processing.
pub fn optics_sa_weighted(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Weighted, *optics),
    )
}

/// `OPTICS-CF weighted` (Fig. 8): CF centers + §5 post-processing.
pub fn optics_cf_weighted(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(
            k,
            Compressor::Birch(birch_params.clone()),
            Recovery::Weighted,
            *optics,
        ),
    )
}

/// `OPTICS-SA Bubbles` (Fig. 13): Data Bubbles from sampled sufficient
/// statistics.
pub fn optics_sa_bubbles(
    ds: &Dataset,
    k: usize,
    seed: u64,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(k, Compressor::Sample { seed }, Recovery::Bubbles, *optics),
    )
}

/// `OPTICS-CF Bubbles` (Fig. 13): Data Bubbles from BIRCH CFs.
pub fn optics_cf_bubbles(
    ds: &Dataset,
    k: usize,
    birch_params: &BirchParams,
    optics: &OpticsParams,
) -> Result<PipelineOutput, PipelineError> {
    run_pipeline(
        ds,
        &PipelineConfig::new(
            k,
            Compressor::Birch(birch_params.clone()),
            Recovery::Bubbles,
            *optics,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense squares far apart, 800 points each.
    fn two_squares() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..800 {
            let (x, y) = ((i % 40) as f64 * 0.25, (i / 40) as f64 * 0.25);
            ds.push(&[x, y]).unwrap();
            ds.push(&[x + 200.0, y]).unwrap();
        }
        ds
    }

    fn params() -> OpticsParams {
        OpticsParams { eps: f64::INFINITY, min_pts: 20 }
    }

    fn two_cluster_check(labels: &[i32], ds: &Dataset) {
        // Points with even index belong to square A, odd to square B.
        let mut a_labels: Vec<i32> = Vec::new();
        let mut b_labels: Vec<i32> = Vec::new();
        for (i, &l) in labels.iter().enumerate() {
            if i % 2 == 0 {
                a_labels.push(l);
            } else {
                b_labels.push(l);
            }
        }
        let a_major = majority(&a_labels);
        let b_major = majority(&b_labels);
        assert_ne!(a_major, b_major, "squares merged");
        assert!(a_major >= 0 && b_major >= 0);
        let agree = labels
            .iter()
            .enumerate()
            .filter(|&(i, &l)| l == if i % 2 == 0 { a_major } else { b_major })
            .count();
        assert!(
            agree as f64 / ds.len() as f64 > 0.95,
            "only {agree}/{} correctly clustered",
            ds.len()
        );
    }

    fn majority(labels: &[i32]) -> i32 {
        let mut counts = std::collections::HashMap::new();
        for &l in labels {
            *counts.entry(l).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l).unwrap()
    }

    #[test]
    fn sa_bubbles_recovers_structure() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 40, 7, &params()).unwrap();
        assert_eq!(out.n_representatives, 40);
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn cf_bubbles_recovers_structure() {
        let ds = two_squares();
        let out = optics_cf_bubbles(&ds, 40, &BirchParams::default(), &params()).unwrap();
        assert!(out.n_representatives <= 40);
        assert!(out.n_representatives >= 2);
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn weighted_variants_recover_all_objects() {
        let ds = two_squares();
        for out in [
            optics_sa_weighted(&ds, 40, 7, &params()).unwrap(),
            optics_cf_weighted(&ds, 40, &BirchParams::default(), &params()).unwrap(),
        ] {
            let expanded = out.expanded.as_ref().unwrap();
            assert_eq!(expanded.len(), ds.len());
            let mut order = expanded.order();
            order.sort_unstable();
            assert_eq!(order, (0..ds.len() as u32).collect::<Vec<_>>());
        }
    }

    #[test]
    fn naive_variants_lose_objects() {
        let ds = two_squares();
        let sa = optics_sa_naive(&ds, 40, 7, &params()).unwrap();
        assert!(sa.expanded.is_none());
        assert_eq!(sa.rep_ordering.len(), 40);
        let cf = optics_cf_naive(&ds, 40, &BirchParams::default(), &params()).unwrap();
        assert!(cf.expanded.is_none());
        assert!(cf.rep_ordering.len() <= 40);
    }

    #[test]
    fn timings_are_recorded() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 30, 1, &params()).unwrap();
        assert!(out.timings.total() >= out.timings.clustering);
        assert!(out.timings.compression > Duration::ZERO);
    }

    #[test]
    fn errors_on_bad_input() {
        let empty = Dataset::new(2).unwrap();
        assert_eq!(
            run_pipeline(
                &empty,
                &PipelineConfig::new(5, Compressor::Sample { seed: 0 }, Recovery::Naive, params())
            )
            .unwrap_err(),
            PipelineError::EmptyDataset
        );
        let ds = two_squares();
        assert_eq!(optics_sa_naive(&ds, 0, 0, &params()).unwrap_err(), PipelineError::ZeroK);
        assert!(matches!(
            optics_sa_naive(&ds, ds.len() + 1, 0, &params()).unwrap_err(),
            PipelineError::Sampling(_)
        ));
        // Display impls.
        assert!(PipelineError::EmptyDataset.to_string().contains("empty"));
        assert!(PipelineError::ZeroK.to_string().contains("positive"));
    }

    #[test]
    fn smuggled_nan_yields_typed_spatial_error() {
        // `from_flat_unchecked` bypasses the ingest validation; the
        // pipeline's defensive re-check must catch the NaN for every
        // compressor instead of poisoning distances or panicking.
        let ds = Dataset::from_flat_unchecked(2, vec![0.0, 0.0, 1.0, f64::NAN, 2.0, 0.0]);
        for compressor in [
            Compressor::Sample { seed: 0 },
            Compressor::Birch(BirchParams::default()),
            Compressor::GridSquash { bins_per_dim: 4 },
        ] {
            let err =
                run_pipeline(&ds, &PipelineConfig::new(2, compressor, Recovery::Bubbles, params()))
                    .unwrap_err();
            assert_eq!(
                err,
                PipelineError::Spatial(SpatialError::NonFiniteCoordinate { point: 1, coord: 1 })
            );
        }
    }

    #[test]
    fn bfr_compressor_pipeline_recovers_structure() {
        let ds = two_squares();
        let out = run_pipeline(
            &ds,
            &PipelineConfig::new(
                40,
                Compressor::Bfr(db_sampling::BfrParams {
                    primary_clusters: 16,
                    ..db_sampling::BfrParams::default()
                }),
                Recovery::Bubbles,
                params(),
            ),
        )
        .unwrap();
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
    }

    #[test]
    fn squash_compressor_pipeline_recovers_structure() {
        let ds = two_squares();
        let out = run_pipeline(
            &ds,
            &PipelineConfig::new(
                1,
                Compressor::GridSquash { bins_per_dim: 24 },
                Recovery::Bubbles,
                params(),
            ),
        )
        .unwrap();
        let expanded = out.expanded.as_ref().unwrap();
        assert_eq!(expanded.len(), ds.len());
        two_cluster_check(&expanded.extract_dbscan(5.0), &ds);
        // Squash keeps exact membership: the representative count equals
        // the number of occupied regions.
        assert!(out.n_representatives > 2);
    }

    #[test]
    fn naive_sa_sample_matches_weighted_sample() {
        // The naive and weighted SA variants draw the same sample for the
        // same seed (step 1 is shared), so their rep orderings coincide.
        let ds = two_squares();
        let naive = optics_sa_naive(&ds, 25, 3, &params()).unwrap();
        let weighted = optics_sa_weighted(&ds, 25, 3, &params()).unwrap();
        let ids_n: Vec<usize> = naive.rep_ordering.entries.iter().map(|e| e.id).collect();
        let ids_w: Vec<usize> = weighted.rep_ordering.entries.iter().map(|e| e.id).collect();
        assert_eq!(ids_n, ids_w);
    }

    #[test]
    fn bubble_jump_is_preserved_in_expansion() {
        let ds = two_squares();
        let out = optics_sa_bubbles(&ds, 40, 11, &params()).unwrap();
        let expanded = out.expanded.unwrap();
        let reach = expanded.reachabilities();
        // Exactly one inter-cluster jump of ~200 among the finite values.
        let big = reach.iter().filter(|r| r.is_finite() && **r > 100.0).count();
        assert_eq!(big, 1, "expected exactly one big jump");
    }
}
