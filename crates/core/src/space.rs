//! [`BubbleSpace`]: the [`OpticsSpace`] implementation over Data Bubbles
//! (Definitions 6–8), letting the unmodified OPTICS walk cluster bubbles.

use std::num::NonZeroUsize;

use db_optics::OpticsSpace;
use db_spatial::Neighbor;
use db_supervise::{Stop, Supervisor};

use crate::bubble::{BubbleError, DataBubble};
use crate::distance::bubble_distance;
use crate::matrix::BubbleDistanceMatrix;

/// A set of Data Bubbles viewed as an OPTICS object space.
///
/// Neighbourhood queries are exhaustive O(k): "Because of the rather
/// complex distance measure between Data Bubbles, we cannot use an index…
/// it runs in O(k·k). However, the purpose of our approach is to make k
/// very small so that this is acceptable" (paper §8). Since the walk
/// visits every bubble, the k² evaluations can equivalently be done once
/// up front: [`BubbleSpace::precompute_matrix`] builds a
/// [`BubbleDistanceMatrix`] (optionally in parallel) and every subsequent
/// neighbourhood query becomes a binary search over a pre-sorted row —
/// with bit-for-bit identical results.
#[derive(Debug, Clone)]
pub struct BubbleSpace {
    bubbles: Vec<DataBubble>,
    /// Total point count over all bubbles, cached so unbounded
    /// core-distance queries need no neighbourhood scan in the common case.
    total_n: u64,
    matrix: Option<BubbleDistanceMatrix>,
}

impl BubbleSpace {
    /// Fallible form of [`BubbleSpace::new`] for bubble sets assembled from
    /// untrusted summaries.
    ///
    /// # Errors
    ///
    /// Returns [`BubbleError::MixedDimensions`] when bubbles disagree on
    /// dimensionality. An empty set is a valid (empty) space.
    pub fn try_new(bubbles: Vec<DataBubble>) -> Result<Self, BubbleError> {
        if let Some(first) = bubbles.first() {
            let dim = first.dim();
            if let Some(bad) = bubbles.iter().find(|b| b.dim() != dim) {
                return Err(BubbleError::MixedDimensions { expected: dim, got: bad.dim() });
            }
        }
        let total_n = bubbles.iter().map(DataBubble::n).sum();
        Ok(Self { bubbles, total_n, matrix: None })
    }

    /// Creates the space. **Validated input only** — use
    /// [`BubbleSpace::try_new`] for untrusted bubble sets.
    ///
    /// # Panics
    ///
    /// Panics if bubbles have inconsistent dimensionality.
    pub fn new(bubbles: Vec<DataBubble>) -> Self {
        match Self::try_new(bubbles) {
            Ok(s) => s,
            Err(_) => panic!("all bubbles must share one dimensionality"),
        }
    }

    /// The bubbles, in id order.
    pub fn bubbles(&self) -> &[DataBubble] {
        &self.bubbles
    }

    /// The bubble with id `i`.
    pub fn bubble(&self, i: usize) -> &DataBubble {
        &self.bubbles[i]
    }

    /// Total number of original points summarized by the space.
    pub fn total_weight(&self) -> u64 {
        self.total_n
    }

    /// Precomputes the full distance matrix with `threads` workers
    /// (`None` = available parallelism) so neighbourhood and unbounded
    /// core-distance queries are served from sorted rows. Skipped (returns
    /// `false`) when the space is empty or holds more than `max_k` bubbles
    /// — the on-the-fly path stays in place with identical results.
    pub fn precompute_matrix(&mut self, threads: Option<NonZeroUsize>, max_k: usize) -> bool {
        match self.precompute_matrix_supervised(threads, max_k, None, &Supervisor::unlimited()) {
            Ok(built) => built,
            Err(stop) => panic!("unsupervised matrix precompute stopped: {stop}"),
        }
    }

    /// [`BubbleSpace::precompute_matrix`] under supervision and an
    /// optional memory budget. When `max_bytes` is set and the matrix
    /// would exceed it, the build is skipped (returns `Ok(false)`, counted
    /// under `pipeline.matrix_skipped_budget`) and the on-the-fly path
    /// stays in place — a quality-preserving degradation: results are
    /// bit-identical, only the query cost changes.
    ///
    /// # Errors
    ///
    /// [`Stop`] when the build was cancelled, overran the deadline, or a
    /// row worker panicked. The space is left matrix-free in that case.
    pub fn precompute_matrix_supervised(
        &mut self,
        threads: Option<NonZeroUsize>,
        max_k: usize,
        max_bytes: Option<usize>,
        sup: &Supervisor,
    ) -> Result<bool, Stop> {
        if self.bubbles.is_empty() || self.bubbles.len() > max_k {
            return Ok(false);
        }
        if let Some(cap) = max_bytes {
            // 12 bytes per cell: u32 id + f64 distance (see
            // `BubbleDistanceMatrix::memory_bytes`).
            let projected = self.bubbles.len() * self.bubbles.len() * 12;
            if projected > cap {
                db_obs::counter!("pipeline.matrix_skipped_budget").incr();
                db_obs::log_debug!(
                    "matrix skipped: projected {projected} bytes > budget {cap} bytes \
                     (falling back to on-the-fly distances, results unchanged)"
                );
                return Ok(false);
            }
        }
        let m = BubbleDistanceMatrix::build_supervised(&self.bubbles, threads, sup)?;
        db_obs::gauge!("optics.matrix_bytes").set(m.memory_bytes() as i64);
        self.matrix = Some(m);
        Ok(true)
    }

    /// Whether neighbourhood queries are matrix-backed.
    pub fn has_matrix(&self) -> bool {
        self.matrix.is_some()
    }

    /// Definition 7 applied outside a walk: the core-distance of bubble `i`
    /// with an unbounded ε (used for the virtual reachability of
    /// sub-MinPts bubbles during expansion).
    ///
    /// Unlike the in-walk [`OpticsSpace::core_distance`], this needs no
    /// neighbourhood scan in the common cases: the cached total weight
    /// answers the `None` case, and a bubble holding ≥ MinPts points
    /// answers from its own `nndist`. Only a sub-MinPts bubble needs the
    /// sorted distance row — served from the precomputed matrix when
    /// present, otherwise evaluated on the fly under the
    /// `optics.unbounded_core_distance_calls` counter (its own metric:
    /// these are recovery-phase evaluations, not part of the walk's
    /// `optics.distance_calls`).
    pub fn core_distance_unbounded(&self, i: usize, min_pts: usize) -> Option<f64> {
        db_obs::counter!("optics.unbounded_core_calls").incr();
        let min_pts = min_pts as u64;
        if self.total_n < min_pts {
            return None;
        }
        let b = &self.bubbles[i];
        if b.n() >= min_pts {
            return Some(b.nndist(min_pts));
        }
        // Sub-MinPts bubble: accumulate neighbours ascending by distance
        // until MinPts points are covered (Def. 7's rare case with ε = ∞).
        let accumulate = |pairs: &mut dyn Iterator<Item = (usize, f64)>| -> Option<f64> {
            let mut cumulative = 0u64;
            for (id, dist) in pairs {
                let c = &self.bubbles[id];
                if cumulative + c.n() >= min_pts {
                    let k = min_pts - cumulative;
                    return Some(dist + c.nndist(k));
                }
                cumulative += c.n();
            }
            unreachable!("total_n >= min_pts guarantees the loop terminates");
        };
        if let Some(m) = &self.matrix {
            let (ids, dists) = m.row(i);
            return accumulate(&mut ids.iter().zip(dists).map(|(&id, &d)| (id as usize, d)));
        }
        // Fallback: one exhaustive scan-and-sort for this bubble only.
        db_obs::counter!("optics.unbounded_core_distance_calls").add(self.bubbles.len() as u64);
        let mut row: Vec<(f64, usize)> = self
            .bubbles
            .iter()
            .enumerate()
            .map(|(j, c)| (bubble_distance(b, c, i == j), j))
            .collect();
        row.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        accumulate(&mut row.into_iter().map(|(d, id)| (id, d)))
    }
}

impl OpticsSpace for BubbleSpace {
    fn len(&self) -> usize {
        self.bubbles.len()
    }

    fn neighborhood(&self, i: usize, eps: f64, out: &mut Vec<Neighbor>) {
        out.clear();
        if let Some(m) = &self.matrix {
            // Pre-sorted row: the ε prefix is exactly the filtered scan
            // below, and the k distance evaluations were already counted
            // at matrix-build time.
            m.neighborhood_into(i, eps, out);
            return;
        }
        let b = &self.bubbles[i];
        for (j, c) in self.bubbles.iter().enumerate() {
            let d = bubble_distance(b, c, i == j);
            if d <= eps {
                out.push(Neighbor::new(j, d));
            }
        }
        // One bubble-distance evaluation per pair scanned (exhaustive O(k)).
        db_obs::counter!("optics.distance_calls").add(self.bubbles.len() as u64);
        out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    }

    fn weight(&self, i: usize) -> u64 {
        self.bubbles[i].n()
    }

    /// Definition 7. With the neighbourhood sorted ascending by distance:
    ///
    /// * ∞ (None) when the bubbles within ε together hold < MinPts points;
    /// * `nndist(MinPts, B)` when the bubble itself holds ≥ MinPts points
    ///   (the common case);
    /// * otherwise `dist(B, C) + nndist(k, C)` where `C` is the closest
    ///   bubble at which the cumulative point count reaches MinPts and
    ///   `k = MinPts −` (points of all bubbles strictly closer than `C`).
    fn core_distance(&self, i: usize, min_pts: usize, neighborhood: &[Neighbor]) -> Option<f64> {
        let min_pts = min_pts as u64;
        let total: u64 = neighborhood.iter().map(|nb| self.bubbles[nb.id].n()).sum();
        if total < min_pts {
            return None;
        }
        let b = &self.bubbles[i];
        if b.n() >= min_pts {
            return Some(b.nndist(min_pts));
        }
        // Rare case: accumulate neighbours (the bubble itself is the first
        // entry at distance 0) until MinPts points are covered.
        let mut cumulative = 0u64;
        for nb in neighborhood {
            let c = &self.bubbles[nb.id];
            if cumulative + c.n() >= min_pts {
                let k = min_pts - cumulative;
                return Some(nb.dist + c.nndist(k));
            }
            cumulative += c.n();
        }
        unreachable!("total >= min_pts guarantees the loop terminates");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn singleton(x: f64) -> DataBubble {
        DataBubble::new(vec![x, 0.0], 1, 0.0)
    }

    fn space_three_groups() -> BubbleSpace {
        BubbleSpace::new(vec![
            DataBubble::new(vec![0.0, 0.0], 100, 1.0),
            DataBubble::new(vec![5.0, 0.0], 50, 1.0),
            DataBubble::new(vec![100.0, 0.0], 80, 2.0),
        ])
    }

    #[test]
    fn neighborhood_sorted_includes_self_first() {
        let s = space_three_groups();
        let mut out = Vec::new();
        s.neighborhood(1, 10.0, &mut out);
        assert_eq!(out[0].id, 1);
        assert_eq!(out[0].dist, 0.0);
        assert_eq!(out.len(), 2); // self and bubble 0; bubble 2 is too far
        assert!(out.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn weights_are_bubble_counts() {
        let s = space_three_groups();
        assert_eq!(s.weight(0), 100);
        assert_eq!(s.weight(2), 80);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn core_distance_common_case_is_nndist() {
        let s = space_three_groups();
        let mut nb = Vec::new();
        s.neighborhood(0, 10.0, &mut nb);
        // Bubble 0 holds 100 >= MinPts=10 points.
        let core = s.core_distance(0, 10, &nb).unwrap();
        assert!((core - s.bubble(0).nndist(10)).abs() < 1e-12);
    }

    #[test]
    fn core_distance_undefined_when_sparse() {
        // Three singleton bubbles far apart; eps small -> only self in the
        // neighbourhood -> 1 point < MinPts=2.
        let s = BubbleSpace::new(vec![singleton(0.0), singleton(50.0), singleton(100.0)]);
        let mut nb = Vec::new();
        s.neighborhood(0, 1.0, &mut nb);
        assert_eq!(nb.len(), 1);
        assert!(s.core_distance(0, 2, &nb).is_none());
    }

    #[test]
    fn core_distance_rare_case_accumulates_neighbours() {
        // Bubble 0 is a singleton; MinPts=5 must borrow 4 points from the
        // closest bubble holding >= 4.
        let b0 = singleton(0.0);
        let b1 = DataBubble::new(vec![10.0, 0.0], 100, 2.0);
        let s = BubbleSpace::new(vec![b0, b1.clone()]);
        let mut nb = Vec::new();
        s.neighborhood(0, 100.0, &mut nb);
        let core = s.core_distance(0, 5, &nb).unwrap();
        let d01 = bubble_distance(s.bubble(0), &b1, false);
        assert!((core - (d01 + b1.nndist(4))).abs() < 1e-12);
    }

    #[test]
    fn core_distance_rare_case_multiple_hops() {
        // Singletons at 0, 1, 2, 3 and MinPts=3: the third-closest bubble
        // (distance 2) supplies the last point, k = 1, nndist(1)=0.
        let s =
            BubbleSpace::new(vec![singleton(0.0), singleton(1.0), singleton(2.0), singleton(3.0)]);
        let mut nb = Vec::new();
        s.neighborhood(0, 100.0, &mut nb);
        let core = s.core_distance(0, 3, &nb).unwrap();
        assert!((core - 2.0).abs() < 1e-12, "core {core}");
    }

    #[test]
    fn core_distance_unbounded_matches_manual() {
        let s = space_three_groups();
        let mut nb = Vec::new();
        s.neighborhood(2, f64::INFINITY, &mut nb);
        assert_eq!(s.core_distance_unbounded(2, 10), s.core_distance(2, 10, &nb));
    }

    #[test]
    fn optics_over_bubbles_groups_nearby_bubbles() {
        use db_optics::{optics, OpticsParams};
        // Two groups of bubbles: around x=0 and x=100.
        let s = BubbleSpace::new(vec![
            DataBubble::new(vec![0.0, 0.0], 40, 1.0),
            DataBubble::new(vec![2.0, 0.0], 40, 1.0),
            DataBubble::new(vec![4.0, 0.0], 40, 1.0),
            DataBubble::new(vec![100.0, 0.0], 40, 1.0),
            DataBubble::new(vec![102.0, 0.0], 40, 1.0),
        ]);
        let o = optics(&s, &OpticsParams { eps: f64::INFINITY, min_pts: 20 });
        assert_eq!(o.len(), 5);
        // Walk order keeps each group contiguous.
        let walk: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        let group: Vec<bool> = walk.iter().map(|&id| id < 3).collect();
        assert!(group.windows(2).filter(|w| w[0] != w[1]).count() <= 1);
        // There is one big reachability jump (between the groups).
        let jumps =
            o.entries.iter().filter(|e| e.has_reachability() && e.reachability > 50.0).count();
        assert_eq!(jumps, 1);
        // Weights carried through.
        assert_eq!(o.total_weight(), 200);
    }

    #[test]
    #[should_panic(expected = "share one dimensionality")]
    fn mixed_dims_panic() {
        BubbleSpace::new(vec![
            DataBubble::new(vec![0.0], 1, 0.0),
            DataBubble::new(vec![0.0, 0.0], 1, 0.0),
        ]);
    }

    #[test]
    fn empty_space_is_fine() {
        let s = BubbleSpace::new(vec![]);
        assert!(s.is_empty());
    }

    #[test]
    fn matrix_backed_neighborhood_is_bit_identical() {
        let mut with = space_three_groups();
        let without = space_three_groups();
        assert!(with.precompute_matrix(None, usize::MAX));
        assert!(with.has_matrix() && !without.has_matrix());
        for i in 0..3 {
            for eps in [0.0, 6.0, 99.0, f64::INFINITY] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                with.neighborhood(i, eps, &mut a);
                without.neighborhood(i, eps, &mut b);
                assert_eq!(a, b, "i = {i}, eps = {eps}");
            }
        }
    }

    #[test]
    fn matrix_cap_falls_back_to_on_the_fly() {
        let mut s = space_three_groups();
        assert!(!s.precompute_matrix(None, 2), "3 bubbles > cap 2");
        assert!(!s.has_matrix());
        let mut empty = BubbleSpace::new(vec![]);
        assert!(!empty.precompute_matrix(None, usize::MAX));
    }

    #[test]
    fn unbounded_core_distance_agrees_with_and_without_matrix() {
        // Mix of sub-MinPts and large bubbles to hit the accumulation path.
        let make = || {
            BubbleSpace::new(vec![
                singleton(0.0),
                DataBubble::new(vec![3.0, 0.0], 2, 0.4),
                DataBubble::new(vec![8.0, 0.0], 30, 1.5),
                singleton(9.0),
            ])
        };
        let plain = make();
        let mut cached = make();
        assert!(cached.precompute_matrix(None, usize::MAX));
        for i in 0..4 {
            for min_pts in [1usize, 2, 5, 20, 100] {
                let a = plain.core_distance_unbounded(i, min_pts);
                let b = cached.core_distance_unbounded(i, min_pts);
                assert_eq!(a.map(f64::to_bits), b.map(f64::to_bits), "i = {i}, mp = {min_pts}");
            }
        }
        // And both agree with Definition 7 computed via the full
        // neighbourhood (the pre-optimization formulation).
        let mut nb = Vec::new();
        for i in 0..4 {
            for min_pts in [1usize, 2, 5, 20] {
                plain.neighborhood(i, f64::INFINITY, &mut nb);
                assert_eq!(
                    plain.core_distance_unbounded(i, min_pts),
                    plain.core_distance(i, min_pts, &nb),
                    "i = {i}, mp = {min_pts}"
                );
            }
        }
    }

    #[test]
    fn unbounded_core_needs_no_scan_for_large_bubbles() {
        let s = space_three_groups();
        assert_eq!(s.total_weight(), 230);
        // Sub-MinPts totals answer None without touching distances.
        assert!(s.core_distance_unbounded(0, 1000).is_none());
        // A bubble holding >= MinPts answers from its own nndist.
        assert_eq!(s.core_distance_unbounded(0, 10), Some(s.bubble(0).nndist(10)));
    }

    #[test]
    fn try_new_reports_mixed_dimensions() {
        let err = BubbleSpace::try_new(vec![
            DataBubble::new(vec![0.0], 1, 0.0),
            DataBubble::new(vec![0.0, 0.0], 1, 0.0),
        ])
        .unwrap_err();
        assert_eq!(err, BubbleError::MixedDimensions { expected: 1, got: 2 });
        assert!(BubbleSpace::try_new(vec![]).is_ok());
    }
}
