//! Boundary behavior of the precomputed bubble-distance matrix: ε-queries
//! whose ε equals a realized distance exactly, and `(dist, id)` tie
//! ordering, must match the on-the-fly evaluation bit for bit.
//!
//! The matrix path answers a neighborhood query with
//! `partition_point(|&d| d <= eps)` over a presorted row; the on-the-fly
//! path filters `d <= eps` and sorts. Both predicates act on the *same*
//! f64 values (both sides call `bubble_distance` on identical inputs), so
//! any divergence — a `<` vs `<=` slip, an unstable tie sort — is a bug.

use data_bubbles::{bubble_distance, BubbleSpace, DataBubble};
use db_datagen::Rng;
use db_optics::OpticsSpace;
use db_spatial::Neighbor;

fn oracle_iters() -> usize {
    std::env::var("ORACLE_ITERS").ok().and_then(|s| s.parse().ok()).unwrap_or(100)
}

/// Random bubbles with deliberate duplicates: identical (rep, n, extent)
/// triples produce exactly tied distances, the regime where ordering
/// divergence would show first.
fn random_bubbles(rng: &mut Rng, k: usize, dim: usize) -> Vec<DataBubble> {
    let mut out: Vec<DataBubble> = Vec::with_capacity(k);
    for i in 0..k {
        if i >= 2 && rng.below(4) == 0 {
            // Duplicate an earlier bubble verbatim.
            let j = rng.below(out.len());
            out.push(out[j].clone());
            continue;
        }
        let rep: Vec<f64> = (0..dim).map(|_| rng.uniform_in(-20.0, 20.0)).collect();
        let n = 1 + rng.below(50) as u64;
        let extent = rng.uniform_in(0.0, 3.0);
        out.push(DataBubble::new(rep, n, extent));
    }
    out
}

#[test]
fn matrix_neighborhoods_match_on_the_fly_at_exact_boundaries() {
    let mut rng = Rng::new(777);
    for it in 0..oracle_iters() {
        let k = 2 + rng.below(14); // small k: every pair is a boundary candidate
        let dim = 1 + rng.below(3);
        let bubbles = random_bubbles(&mut rng, k, dim);

        let plain = BubbleSpace::new(bubbles.clone());
        let mut with_matrix = BubbleSpace::new(bubbles.clone());
        assert!(with_matrix.precompute_matrix(None, usize::MAX), "matrix should build");

        // Every realized pairwise distance is an exact-boundary ε; add the
        // degenerate and surrounding values.
        let mut eps_values: Vec<f64> = Vec::new();
        for i in 0..k {
            for j in 0..k {
                eps_values.push(bubble_distance(&bubbles[i], &bubbles[j], i == j));
            }
        }
        eps_values.push(0.0);
        eps_values.push(f64::INFINITY);
        let extra: Vec<f64> = eps_values.iter().map(|d| d * 1.0000001 + 1e-9).collect();
        eps_values.extend(extra);

        let mut a: Vec<Neighbor> = Vec::new();
        let mut b: Vec<Neighbor> = Vec::new();
        for i in 0..k {
            for &eps in &eps_values {
                plain.neighborhood(i, eps, &mut a);
                with_matrix.neighborhood(i, eps, &mut b);
                assert_eq!(
                    a, b,
                    "iter {it}: neighborhood({i}, {eps}) diverged between \
                     on-the-fly and matrix paths"
                );
            }
            // Core-distances derive from the neighborhood; equal inputs must
            // give bit-equal outputs for a spread of MinPts.
            plain.neighborhood(i, f64::INFINITY, &mut a);
            for min_pts in [1usize, 3, 10, 100] {
                let c0 = plain.core_distance(i, min_pts, &a);
                let c1 = with_matrix.core_distance(i, min_pts, &a);
                assert_eq!(
                    c0.map(f64::to_bits),
                    c1.map(f64::to_bits),
                    "iter {it}: core_distance({i}, {min_pts}) diverged"
                );
            }
        }
    }
}

#[test]
fn exact_boundary_epsilon_includes_the_boundary_neighbor_in_both_paths() {
    // Construct two bubbles at a known distance and query with ε exactly
    // equal to it: `d <= eps` must include the neighbor on both paths.
    let bubbles = vec![
        DataBubble::new(vec![0.0, 0.0], 10, 1.0),
        DataBubble::new(vec![7.0, 0.0], 10, 1.0),
        DataBubble::new(vec![100.0, 0.0], 10, 1.0),
    ];
    let d = bubble_distance(&bubbles[0], &bubbles[1], false);
    let plain = BubbleSpace::new(bubbles.clone());
    let mut with_matrix = BubbleSpace::new(bubbles);
    assert!(with_matrix.precompute_matrix(None, usize::MAX));

    let mut a = Vec::new();
    let mut b = Vec::new();
    plain.neighborhood(0, d, &mut a);
    with_matrix.neighborhood(0, d, &mut b);
    assert_eq!(a, b);
    assert!(a.iter().any(|nb| nb.id == 1), "neighbor at exactly ε must be included (d = {d})");
    // One ulp below ε excludes it — in both paths.
    let below = f64::from_bits(d.to_bits() - 1);
    plain.neighborhood(0, below, &mut a);
    with_matrix.neighborhood(0, below, &mut b);
    assert_eq!(a, b);
    assert!(a.iter().all(|nb| nb.id != 1), "neighbor above ε must be excluded");
}

#[test]
fn tied_distances_order_by_id_in_both_paths() {
    // Four identical bubbles: every cross distance is the same value, so
    // the neighborhood order is decided purely by the id tiebreak.
    let b = DataBubble::new(vec![1.0, 2.0], 5, 0.5);
    let bubbles = vec![b.clone(), b.clone(), b.clone(), b];
    let plain = BubbleSpace::new(bubbles.clone());
    let mut with_matrix = BubbleSpace::new(bubbles);
    assert!(with_matrix.precompute_matrix(None, usize::MAX));

    let mut a = Vec::new();
    let mut bo = Vec::new();
    for i in 0..4 {
        plain.neighborhood(i, f64::INFINITY, &mut a);
        with_matrix.neighborhood(i, f64::INFINITY, &mut bo);
        assert_eq!(a, bo, "query {i}");
        // Self first (distance 0), then the tied others in id order.
        assert_eq!(a[0].id, i);
        let rest: Vec<usize> = a[1..].iter().map(|nb| nb.id).collect();
        let mut expect: Vec<usize> = (0..4).filter(|&j| j != i).collect();
        expect.sort_unstable();
        assert_eq!(rest, expect, "query {i}: tie ordering");
    }
}
