//! Fault-injection corpora for the chaos suite: deterministic generators
//! of hostile inputs that real deployments produce — sensor glitches
//! (NaN/±∞), far-from-origin data that breaks sum-of-squares statistics,
//! zero-variance duplicates, singleton floods and ragged rows.
//!
//! Each corpus is a raw row collection, *not* a [`Dataset`]: several are
//! deliberately invalid, and the point of the suite is to observe where
//! the ingest boundary (or the pipeline's defensive re-validation)
//! rejects them with a typed error rather than panicking or producing
//! poisoned output.

use db_spatial::{Dataset, SpatialError};

use crate::rng::Rng;

/// A named adversarial input: raw rows that may violate every dataset
/// invariant (non-finite values, ragged lengths, emptiness).
#[derive(Debug, Clone)]
pub struct AdversarialCorpus {
    /// Stable name for test diagnostics.
    pub name: &'static str,
    /// Nominal dimensionality (rows may disagree in the ragged corpus).
    pub dim: usize,
    /// The raw rows.
    pub rows: Vec<Vec<f64>>,
}

impl AdversarialCorpus {
    /// Attempts to assemble the rows into a [`Dataset`] through the
    /// validating ingest boundary.
    ///
    /// # Errors
    ///
    /// Returns the [`SpatialError`] of the first rejected row — the
    /// expected outcome for the invalid corpora.
    pub fn build(&self) -> Result<Dataset, SpatialError> {
        let mut ds = Dataset::new(self.dim)?;
        for row in &self.rows {
            ds.push(row)?;
        }
        Ok(ds)
    }

    /// Whether any row contains a NaN or ±∞ coordinate.
    pub fn has_non_finite(&self) -> bool {
        self.rows.iter().any(|r| r.iter().any(|x| !x.is_finite()))
    }

    /// Whether any row disagrees with the nominal dimensionality.
    pub fn has_ragged_rows(&self) -> bool {
        self.rows.iter().any(|r| r.len() != self.dim)
    }
}

/// Two clean Gaussian blobs with NaN coordinates sprinkled into ~5% of
/// the rows (a stuck sensor channel).
pub fn nan_injected(seed: u64) -> AdversarialCorpus {
    let mut rows = two_blobs(seed, 200, 0.0);
    let mut rng = Rng::new(seed ^ 0x5eed_0001);
    for _ in 0..rows.len() / 20 {
        let i = rng.below(rows.len());
        let j = rng.below(rows[i].len());
        rows[i][j] = f64::NAN;
    }
    AdversarialCorpus { name: "nan_injected", dim: 2, rows }
}

/// Two clean blobs with ±∞ coordinates in ~5% of the rows (overflowed
/// upstream aggregation).
pub fn inf_injected(seed: u64) -> AdversarialCorpus {
    let mut rows = two_blobs(seed, 200, 0.0);
    let mut rng = Rng::new(seed ^ 0x5eed_0002);
    for k in 0..rows.len() / 20 {
        let i = rng.below(rows.len());
        let j = rng.below(rows[i].len());
        rows[i][j] = if k % 2 == 0 { f64::INFINITY } else { f64::NEG_INFINITY };
    }
    AdversarialCorpus { name: "inf_injected", dim: 2, rows }
}

/// Valid but numerically hostile: two tight blobs offset by 1e8 from the
/// origin. The naive sum-of-squares clustering feature loses all extent
/// precision here (catastrophic cancellation); the stable representation
/// must not.
pub fn far_offset_clusters(seed: u64) -> AdversarialCorpus {
    AdversarialCorpus { name: "far_offset_clusters", dim: 2, rows: two_blobs(seed, 300, 1.0e8) }
}

/// Valid but degenerate: every point is one of two exact duplicates
/// (zero within-cluster variance → zero extents, zero nndist).
pub fn zero_variance_duplicates(_seed: u64) -> AdversarialCorpus {
    let mut rows = Vec::with_capacity(240);
    for i in 0..240 {
        rows.push(if i % 2 == 0 { vec![1.0, 2.0] } else { vec![50.0, -3.0] });
    }
    AdversarialCorpus { name: "zero_variance_duplicates", dim: 2, rows }
}

/// Valid but pathological for compression: every point is far from every
/// other (a flood of singletons — n=1 bubbles with extent 0 everywhere).
pub fn singleton_flood(seed: u64) -> AdversarialCorpus {
    let mut rng = Rng::new(seed ^ 0x5eed_0003);
    let rows = (0..150)
        .map(|i| vec![i as f64 * 1000.0 + rng.uniform(), (i % 13) as f64 * 777.0 + rng.uniform()])
        .collect();
    AdversarialCorpus { name: "singleton_flood", dim: 2, rows }
}

/// Structurally broken: rows of inconsistent length (a truncated record
/// mid-stream). Must be rejected at ingest with a dimension mismatch.
pub fn dim_mismatch(seed: u64) -> AdversarialCorpus {
    let mut rows = two_blobs(seed, 60, 0.0);
    rows.insert(30, vec![1.0]); // truncated row
    rows.push(vec![1.0, 2.0, 3.0]); // over-long row
    AdversarialCorpus { name: "dim_mismatch", dim: 2, rows }
}

/// No rows at all: the pipeline must answer with its empty-dataset error.
pub fn empty(_seed: u64) -> AdversarialCorpus {
    AdversarialCorpus { name: "empty", dim: 2, rows: Vec::new() }
}

/// Every adversarial corpus, for exhaustive chaos sweeps.
pub fn all_corpora(seed: u64) -> Vec<AdversarialCorpus> {
    vec![
        nan_injected(seed),
        inf_injected(seed),
        far_offset_clusters(seed),
        zero_variance_duplicates(seed),
        singleton_flood(seed),
        dim_mismatch(seed),
        empty(seed),
    ]
}

/// Two 2-d Gaussian blobs (at `offset` and `offset + 60`), `n` rows total.
fn two_blobs(seed: u64, n: usize, offset: f64) -> Vec<Vec<f64>> {
    let mut rng = Rng::new(seed);
    (0..n)
        .map(|i| {
            let c = if i % 2 == 0 { offset } else { offset + 60.0 };
            vec![rng.gaussian_with(c, 1.0), rng.gaussian_with(c, 1.0)]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        // Bitwise comparison: `==` on the rows would be false at every
        // injected NaN even for identical corpora.
        let bits = |c: &AdversarialCorpus| -> Vec<Vec<u64>> {
            c.rows.iter().map(|r| r.iter().map(|x| x.to_bits()).collect()).collect()
        };
        for (a, b) in all_corpora(7).iter().zip(all_corpora(7).iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn corpora_have_the_advertised_defects() {
        assert!(nan_injected(1).has_non_finite());
        assert!(inf_injected(1).has_non_finite());
        assert!(dim_mismatch(1).has_ragged_rows());
        assert!(!far_offset_clusters(1).has_non_finite());
        assert!(!zero_variance_duplicates(1).has_non_finite());
        assert!(empty(1).rows.is_empty());
    }

    #[test]
    fn build_accepts_valid_and_rejects_invalid() {
        assert!(far_offset_clusters(3).build().is_ok());
        assert!(zero_variance_duplicates(3).build().is_ok());
        assert!(singleton_flood(3).build().is_ok());
        assert!(matches!(nan_injected(3).build(), Err(SpatialError::NonFiniteCoordinate { .. })));
        assert!(matches!(dim_mismatch(3).build(), Err(SpatialError::DimensionMismatch { .. })));
        // Empty builds fine — it fails later, at the pipeline boundary.
        assert_eq!(empty(3).build().unwrap().len(), 0);
    }

    #[test]
    fn far_offset_blobs_are_tight_and_far() {
        let c = far_offset_clusters(5);
        assert!(c.rows.iter().all(|r| r.iter().all(|&x| x > 9.0e7)));
    }
}
