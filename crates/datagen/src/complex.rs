//! Arbitrarily shaped 2-d clusters (rings, moons, spirals) — the cluster
//! shapes density-based methods handle and centroid methods cannot (the
//! contrast the OPTICS line of work is motivated by). Used by examples and
//! tests that check Data Bubbles preserve *non-convex* structure.

use crate::ds1::shuffle_in_unison;
use crate::labeled::{LabeledDataset, NOISE_LABEL};
use crate::rng::Rng;
use crate::shapes;
use db_spatial::Dataset;

/// Parameters for [`nested_rings`].
#[derive(Debug, Clone)]
pub struct RingsParams {
    /// Total number of points.
    pub n: usize,
    /// Radii of the concentric rings (each gets an equal share).
    pub radii: Vec<f64>,
    /// Gaussian thickness of each ring.
    pub thickness: f64,
    /// Fraction of uniform background noise.
    pub noise_fraction: f64,
}

impl Default for RingsParams {
    fn default() -> Self {
        Self { n: 10_000, radii: vec![5.0, 15.0, 30.0], thickness: 0.5, noise_fraction: 0.02 }
    }
}

/// Concentric rings around the origin: cluster `i` lies on
/// `radii[i] ± thickness`. A centroid-based method merges them (all share
/// the same mean); a density-based method separates them.
///
/// # Panics
///
/// Panics if `radii` is empty or `noise_fraction ∉ [0, 1)`.
pub fn nested_rings(params: &RingsParams, seed: u64) -> LabeledDataset {
    assert!(!params.radii.is_empty(), "need at least one ring");
    assert!((0.0..1.0).contains(&params.noise_fraction), "noise_fraction must be in [0,1)");
    let mut rng = Rng::new(seed);
    let n_noise = (params.n as f64 * params.noise_fraction).round() as usize;
    let counts = shapes::partition_counts(params.n - n_noise, &vec![1.0; params.radii.len()]);
    let mut data = Dataset::with_capacity(2, params.n).expect("dim > 0");
    let mut labels = Vec::with_capacity(params.n);
    for (label, (&count, &radius)) in counts.iter().zip(&params.radii).enumerate() {
        for _ in 0..count {
            let theta = rng.uniform_in(0.0, std::f64::consts::TAU);
            let r = radius + rng.gaussian_with(0.0, params.thickness);
            data.push(&[r * theta.cos(), r * theta.sin()]).expect("dim matches");
            labels.push(label as i32);
        }
    }
    let extent = params.radii.iter().copied().fold(0.0f64, f64::max) * 1.3;
    let mut p = Vec::with_capacity(2);
    for _ in 0..n_noise {
        shapes::uniform_box(&mut rng, &[-extent, -extent], &[extent, extent], &mut p);
        data.push(&p).expect("dim matches");
    }
    labels.extend(std::iter::repeat_n(NOISE_LABEL, n_noise));
    shuffle_in_unison(&mut rng, data, labels)
}

/// The classic "two moons": two interleaved half-circles that no single
/// linear/centroidal split separates.
pub fn two_moons(n: usize, noise_std: f64, seed: u64) -> LabeledDataset {
    let mut rng = Rng::new(seed);
    let counts = shapes::partition_counts(n, &[1.0, 1.0]);
    let mut data = Dataset::with_capacity(2, n).expect("dim > 0");
    let mut labels = Vec::with_capacity(n);
    for _ in 0..counts[0] {
        let t = rng.uniform_in(0.0, std::f64::consts::PI);
        data.push(&[
            t.cos() + rng.gaussian_with(0.0, noise_std),
            t.sin() + rng.gaussian_with(0.0, noise_std),
        ])
        .expect("dim matches");
    }
    labels.extend(std::iter::repeat_n(0, counts[0]));
    for _ in 0..counts[1] {
        let t = rng.uniform_in(0.0, std::f64::consts::PI);
        data.push(&[
            1.0 - t.cos() + rng.gaussian_with(0.0, noise_std),
            0.5 - t.sin() + rng.gaussian_with(0.0, noise_std),
        ])
        .expect("dim matches");
    }
    labels.extend(std::iter::repeat_n(1, counts[1]));
    shuffle_in_unison(&mut rng, data, labels)
}

/// Two interleaved Archimedean spirals.
pub fn two_spirals(n: usize, turns: f64, noise_std: f64, seed: u64) -> LabeledDataset {
    let mut rng = Rng::new(seed);
    let counts = shapes::partition_counts(n, &[1.0, 1.0]);
    let mut data = Dataset::with_capacity(2, n).expect("dim > 0");
    let mut labels = Vec::with_capacity(n);
    for (label, &count) in counts.iter().enumerate() {
        let phase = label as f64 * std::f64::consts::PI;
        for _ in 0..count {
            let t = rng.uniform_in(0.25, 1.0);
            let angle = t * turns * std::f64::consts::TAU + phase;
            let r = t * 10.0;
            data.push(&[
                r * angle.cos() + rng.gaussian_with(0.0, noise_std),
                r * angle.sin() + rng.gaussian_with(0.0, noise_std),
            ])
            .expect("dim matches");
            labels.push(label as i32);
        }
    }
    shuffle_in_unison(&mut rng, data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rings_lie_on_their_radii() {
        let params =
            RingsParams { n: 3_000, radii: vec![5.0, 20.0], thickness: 0.3, noise_fraction: 0.0 };
        let l = nested_rings(&params, 1);
        assert_eq!(l.n_clusters(), 2);
        for (i, &lab) in l.labels.iter().enumerate() {
            let p = l.data.point(i);
            let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
            let expected = params.radii[lab as usize];
            assert!(
                (r - expected).abs() < 5.0 * params.thickness,
                "point at radius {r}, expected ring {expected}"
            );
        }
        // All rings share the same centroid (the death of k-means).
        let c = l.data.centroid().unwrap();
        assert!(c[0].abs() < 1.0 && c[1].abs() < 1.0);
    }

    #[test]
    fn rings_include_noise() {
        let l = nested_rings(
            &RingsParams { n: 1_000, noise_fraction: 0.1, ..RingsParams::default() },
            2,
        );
        assert!((80..=120).contains(&l.n_noise()), "noise {}", l.n_noise());
    }

    #[test]
    fn moons_interleave() {
        let l = two_moons(2_000, 0.05, 3);
        assert_eq!(l.n_clusters(), 2);
        assert_eq!(l.len(), 2_000);
        // The bounding boxes of the two moons overlap horizontally.
        let xs0: Vec<f64> =
            (0..l.len()).filter(|&i| l.labels[i] == 0).map(|i| l.data.point(i)[0]).collect();
        let xs1: Vec<f64> =
            (0..l.len()).filter(|&i| l.labels[i] == 1).map(|i| l.data.point(i)[0]).collect();
        let max0 = xs0.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min1 = xs1.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(min1 < max0, "moons do not interleave");
    }

    #[test]
    fn spirals_have_two_arms() {
        let l = two_spirals(2_000, 1.5, 0.05, 4);
        assert_eq!(l.n_clusters(), 2);
        assert_eq!(l.cluster_sizes(), vec![1_000, 1_000]);
    }

    #[test]
    fn deterministic() {
        let p = RingsParams::default();
        assert_eq!(nested_rings(&p, 9), nested_rings(&p, 9));
        assert_eq!(two_moons(500, 0.1, 9), two_moons(500, 0.1, 9));
        assert_eq!(two_spirals(500, 2.0, 0.1, 9), two_spirals(500, 2.0, 0.1, 9));
    }

    #[test]
    #[should_panic(expected = "at least one ring")]
    fn empty_radii_panics() {
        nested_rings(&RingsParams { radii: vec![], ..RingsParams::default() }, 1);
    }
}
