//! A synthetic stand-in for the Corel Image Features "Color Moments" data
//! set (UCI KDD Archive; 68,040 images × 9 HSV first-order color moments).
//!
//! The original data is not redistributable here, so we synthesize a data
//! set with the *same challenge profile* the paper selected it for (§9.3):
//! "it contains no significant clustering structure, apart from two very
//! small clusters, i.e. the two tiny clusters are embedded in an area of
//! lower, almost uniform density."
//!
//! The substitute therefore consists of:
//!
//! * a large background body (~99.5%) drawn from a mildly anisotropic,
//!   heavy-shouldered distribution (sum of a dominant uniform box and a
//!   broad Gaussian halo) — almost uniform density, no significant
//!   structure;
//! * two *tiny*, very dense Gaussian clusters placed inside low-density
//!   border regions of the body.

use crate::ds1::shuffle_in_unison;
use crate::labeled::{LabeledDataset, NOISE_LABEL};
use crate::rng::Rng;
use crate::shapes;
use db_spatial::Dataset;

/// Parameters for [`corel_like`].
#[derive(Debug, Clone)]
pub struct CorelParams {
    /// Total number of points (the real data set has 68,040).
    pub n: usize,
    /// Dimensionality (the real data set has 9 color moments).
    pub dim: usize,
    /// Size of each of the two tiny clusters.
    pub tiny_cluster_size: usize,
}

impl Default for CorelParams {
    fn default() -> Self {
        Self { n: 68_040, dim: 9, tiny_cluster_size: 150 }
    }
}

/// Generates the Corel substitute. Labels: `0` and `1` for the two tiny
/// clusters, [`NOISE_LABEL`] for the unstructured background.
///
/// # Panics
///
/// Panics if `2 * tiny_cluster_size > n` or `dim == 0`.
pub fn corel_like(params: &CorelParams, seed: u64) -> LabeledDataset {
    assert!(params.dim > 0, "dim must be positive");
    assert!(2 * params.tiny_cluster_size <= params.n, "tiny clusters larger than data set");
    let mut rng = Rng::new(seed);
    let n_background = params.n - 2 * params.tiny_cluster_size;

    let mut data = Dataset::with_capacity(params.dim, params.n).expect("dim > 0");
    let mut labels = Vec::with_capacity(params.n);
    let mut p = Vec::with_capacity(params.dim);

    // Background: 80% uniform box [0,1]^d + 20% broad central Gaussian.
    // The mixture produces gentle density variation (the paper's plot shows
    // a slowly varying reachability floor) without forming clusters.
    let center = vec![0.5; params.dim];
    for _ in 0..n_background {
        if rng.uniform() < 0.8 {
            shapes::uniform_box(&mut rng, &vec![0.0; params.dim], &vec![1.0; params.dim], &mut p);
        } else {
            shapes::gaussian_blob(&mut rng, &center, 0.22, &mut p);
        }
        data.push(&p).expect("dim matches");
        labels.push(NOISE_LABEL);
    }

    // Two tiny dense clusters near opposite low-density corners, just
    // outside the bulk of the background (the paper's clusters sit in an
    // area of low density).
    let c0 = vec![1.18; params.dim];
    let mut c1 = vec![-0.18; params.dim];
    // Make the second cluster geometrically distinct from a pure corner.
    if params.dim >= 2 {
        c1[1] = 1.18;
    }
    for (label, c) in [(0i32, &c0), (1i32, &c1)] {
        for _ in 0..params.tiny_cluster_size {
            shapes::gaussian_blob(&mut rng, c, 0.01, &mut p);
            data.push(&p).expect("dim matches");
            labels.push(label);
        }
    }

    shuffle_in_unison(&mut rng, data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorelParams {
        CorelParams { n: 5_000, dim: 9, tiny_cluster_size: 100 }
    }

    #[test]
    fn shape_and_counts() {
        let l = corel_like(&small(), 42);
        assert_eq!(l.len(), 5_000);
        assert_eq!(l.data.dim(), 9);
        assert_eq!(l.n_clusters(), 2);
        assert_eq!(l.cluster_sizes(), vec![100, 100]);
        assert_eq!(l.n_noise(), 4_800);
    }

    #[test]
    fn tiny_clusters_are_tight_and_far_from_background_bulk() {
        let l = corel_like(&small(), 7);
        for (i, &lab) in l.labels.iter().enumerate() {
            if lab >= 0 {
                let p = l.data.point(i);
                let c: Vec<f64> = if lab == 0 {
                    vec![1.18; 9]
                } else {
                    let mut c = vec![-0.18; 9];
                    c[1] = 1.18;
                    c
                };
                let d = db_spatial::euclidean(p, &c);
                assert!(d < 0.1, "tiny-cluster point strays: {d}");
            }
        }
    }

    #[test]
    fn background_occupies_unit_cube_region() {
        let l = corel_like(&small(), 3);
        let mut inside = 0usize;
        let mut total = 0usize;
        for (i, &lab) in l.labels.iter().enumerate() {
            if lab == NOISE_LABEL {
                total += 1;
                let p = l.data.point(i);
                if p.iter().all(|&x| (-0.2..=1.2).contains(&x)) {
                    inside += 1;
                }
            }
        }
        assert!(inside as f64 / total as f64 > 0.95);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(corel_like(&small(), 5), corel_like(&small(), 5));
    }

    #[test]
    #[should_panic(expected = "tiny clusters larger")]
    fn rejects_oversized_tiny_clusters() {
        corel_like(&CorelParams { n: 100, dim: 2, tiny_cluster_size: 60 }, 1);
    }
}
