//! Small seeded corpora for the oracle differential and metamorphic
//! harnesses (`tests/oracle_differential.rs`, `tests/oracle_metamorphic.rs`).
//!
//! The oracles in `db-oracle` are O(n²)–O(n³), so these corpora stay in the
//! hundreds of points: big enough for density structure to be real, small
//! enough that brute force is instant.

use crate::ds1::shuffle_in_unison;
use crate::labeled::LabeledDataset;
use crate::rng::Rng;
use crate::shapes;
use crate::{ds1, ds2, gaussian_family, Ds1Params, Ds2Params, GaussianFamilyParams};
use db_spatial::Dataset;

/// Parameters for [`separated_blobs`].
#[derive(Debug, Clone)]
pub struct SeparatedBlobsParams {
    /// Total number of points.
    pub n: usize,
    /// Number of blobs.
    pub n_clusters: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Radius of each blob (points are uniform in a ball, so this is a hard
    /// bound, not a standard deviation).
    pub radius: f64,
    /// Guaranteed minimum gap between the closest points of any two blobs.
    pub separation: f64,
}

impl Default for SeparatedBlobsParams {
    fn default() -> Self {
        Self { n: 120, n_clusters: 3, dim: 2, radius: 1.0, separation: 8.0 }
    }
}

/// Generates blobs with a *guaranteed* separation: each blob samples
/// uniformly from a ball of `radius`, and blob centers sit on a grid with
/// spacing `2·radius + separation`, so any inter-blob point pair is at least
/// `separation` apart while intra-blob pairs are at most `2·radius` apart.
///
/// The metamorphic suite relies on this hard margin: a translation or
/// permutation can perturb distances by at most a few ulps, which can never
/// flip a point across a gap that wide, so cluster recovery must be exactly
/// invariant.
///
/// # Panics
///
/// Panics if `n_clusters == 0`, `dim == 0`, or the geometry is degenerate
/// (non-positive radius/separation).
pub fn separated_blobs(params: &SeparatedBlobsParams, seed: u64) -> LabeledDataset {
    assert!(params.n_clusters > 0, "need at least one blob");
    assert!(params.dim > 0, "dimension must be positive");
    assert!(
        params.radius > 0.0 && params.separation > 0.0,
        "radius and separation must be positive"
    );
    let mut rng = Rng::new(seed);
    let spacing = 2.0 * params.radius + params.separation;
    // Blob centers on an axis-aligned grid with side length just large
    // enough that side^dim >= n_clusters; center i gets the mixed-radix
    // digits of i as its grid coordinates.
    let mut side = 1usize;
    while side.saturating_pow(params.dim as u32) < params.n_clusters {
        side += 1;
    }
    let centers: Vec<Vec<f64>> = (0..params.n_clusters)
        .map(|i| {
            let mut rest = i;
            (0..params.dim)
                .map(|_| {
                    let c = rest % side;
                    rest /= side;
                    c as f64 * spacing
                })
                .collect()
        })
        .collect();
    let counts = shapes::partition_counts(params.n, &vec![1.0; params.n_clusters]);
    let mut data = Dataset::with_capacity(params.dim, params.n).expect("dim > 0");
    let mut labels = Vec::with_capacity(params.n);
    let mut p = Vec::with_capacity(params.dim);
    for (label, (&count, center)) in counts.iter().zip(&centers).enumerate() {
        for _ in 0..count {
            shapes::uniform_ball(&mut rng, center, params.radius, &mut p);
            data.push(&p).expect("dim matches");
            labels.push(label as i32);
        }
    }
    shuffle_in_unison(&mut rng, data, labels)
}

/// A named corpus for the differential harness.
pub struct Corpus {
    /// Short identifier used in assertion messages.
    pub name: &'static str,
    /// The points and ground-truth labels.
    pub labeled: LabeledDataset,
}

/// The standard differential-harness corpora: a small DS1 (nested densities
/// plus noise), a small DS2 (five well-separated Gaussians), a
/// low-dimensional Gaussian family slice, and hard-margin separated blobs.
/// Every corpus is a few hundred points so the O(n²) oracles stay fast.
pub fn differential_corpora(seed: u64) -> Vec<Corpus> {
    vec![
        Corpus {
            name: "ds1-small",
            labeled: ds1(&Ds1Params { n: 300, noise_fraction: 0.05 }, seed),
        },
        Corpus {
            name: "ds2-small",
            labeled: ds2(&Ds2Params { n: 250, sigma: 2.0 }, seed.wrapping_add(1)),
        },
        Corpus {
            name: "family-3d",
            labeled: gaussian_family(
                &GaussianFamilyParams {
                    n: 240,
                    dim: 3,
                    clusters: 5,
                    ..GaussianFamilyParams::default()
                },
                seed.wrapping_add(2),
            ),
        },
        Corpus {
            name: "blobs",
            labeled: separated_blobs(&SeparatedBlobsParams::default(), seed.wrapping_add(3)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_spatial::euclidean;

    #[test]
    fn blobs_respect_the_separation_guarantee() {
        let params =
            SeparatedBlobsParams { n: 150, n_clusters: 4, dim: 2, radius: 1.0, separation: 6.0 };
        let l = separated_blobs(&params, 7);
        assert_eq!(l.len(), 150);
        assert_eq!(l.n_clusters(), 4);
        for i in 0..l.len() {
            for j in (i + 1)..l.len() {
                let d = euclidean(l.data.point(i), l.data.point(j));
                if l.labels[i] == l.labels[j] {
                    assert!(d <= 2.0 * params.radius + 1e-9, "intra-blob pair too far: {d}");
                } else {
                    assert!(d >= params.separation - 1e-9, "inter-blob pair too close: {d}");
                }
            }
        }
    }

    #[test]
    fn blobs_handle_many_clusters_in_one_dimension() {
        let params =
            SeparatedBlobsParams { n: 60, n_clusters: 5, dim: 1, radius: 0.5, separation: 4.0 };
        let l = separated_blobs(&params, 11);
        assert_eq!(l.n_clusters(), 5);
    }

    #[test]
    fn blobs_deterministic_per_seed() {
        let p = SeparatedBlobsParams::default();
        assert_eq!(separated_blobs(&p, 3), separated_blobs(&p, 3));
    }

    #[test]
    fn corpora_are_small_and_named() {
        let cs = differential_corpora(42);
        assert_eq!(cs.len(), 4);
        for c in &cs {
            assert!(!c.name.is_empty());
            assert!(c.labeled.len() <= 400, "{} too large for O(n^2) oracles", c.name);
            assert!(!c.labeled.is_empty());
        }
    }
}
