//! DS1: the paper's 2-d benchmark with *nested* clusters of different
//! densities and distributions (uniform and Gaussian) plus noise
//! (1,000,000 points in the paper).
//!
//! The exact generator of the paper is unpublished; this reconstruction
//! follows its description (§3, Fig. 4a): several top-level clusters, some
//! containing denser sub-clusters, drawn from uniform (disk/box) and
//! Gaussian distributions, embedded in uniform background noise. The
//! component table is fixed so the hierarchical structure — and therefore
//! the qualitative reachability plot — is stable across sizes and seeds.

use crate::labeled::{LabeledDataset, NOISE_LABEL};
use crate::rng::Rng;
use crate::shapes;
use db_spatial::Dataset;

/// Parameters for [`ds1`].
#[derive(Debug, Clone)]
pub struct Ds1Params {
    /// Total number of points (paper: 1,000,000).
    pub n: usize,
    /// Fraction of points that are uniform background noise (paper shows a
    /// visible noise floor; we default to 9%).
    pub noise_fraction: f64,
}

impl Default for Ds1Params {
    fn default() -> Self {
        Self { n: 1_000_000, noise_fraction: 0.09 }
    }
}

/// The shape of one DS1 component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ds1Shape {
    /// Uniform density disk: center, radius.
    UniformDisk { cx: f64, cy: f64, r: f64 },
    /// Uniform density axis-aligned box.
    UniformBox { x0: f64, y0: f64, x1: f64, y1: f64 },
    /// Isotropic Gaussian: center, standard deviation.
    Gaussian { cx: f64, cy: f64, sigma: f64 },
}

/// One DS1 cluster component with its mixture weight, ground-truth label and
/// (for nested sub-clusters) the label of the enclosing top-level cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ds1Component {
    /// Shape and placement.
    pub shape: Ds1Shape,
    /// Fraction of non-noise points drawn from this component.
    pub weight: f64,
    /// Ground-truth label (index into [`DS1_COMPONENTS`]).
    pub label: i32,
    /// Label of the top-level parent, or `None` for top-level components.
    pub parent: Option<i32>,
}

/// The fixed component table of DS1 (domain `[0, 100]^2`).
///
/// Hierarchy: A (disk, labels 1–2 nested), B (Gaussian, labels 4–5 nested),
/// C (box, labels 7–8 nested), D (free-standing Gaussian).
pub const DS1_COMPONENTS: &[Ds1Component] = &[
    // A: large sparse uniform disk with two dense children.
    Ds1Component {
        shape: Ds1Shape::UniformDisk { cx: 25.0, cy: 70.0, r: 12.0 },
        weight: 0.20,
        label: 0,
        parent: None,
    },
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 20.0, cy: 66.0, sigma: 1.2 },
        weight: 0.065,
        label: 1,
        parent: Some(0),
    },
    Ds1Component {
        shape: Ds1Shape::UniformDisk { cx: 30.0, cy: 74.0, r: 2.5 },
        weight: 0.055,
        label: 2,
        parent: Some(0),
    },
    // B: broad Gaussian with two tight Gaussian children.
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 70.0, cy: 70.0, sigma: 6.0 },
        weight: 0.165,
        label: 3,
        parent: None,
    },
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 66.0, cy: 68.0, sigma: 0.8 },
        weight: 0.055,
        label: 4,
        parent: Some(3),
    },
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 75.0, cy: 73.0, sigma: 1.0 },
        weight: 0.055,
        label: 5,
        parent: Some(3),
    },
    // C: uniform box with two dense Gaussian children.
    Ds1Component {
        shape: Ds1Shape::UniformBox { x0: 55.0, y0: 15.0, x1: 90.0, y1: 35.0 },
        weight: 0.13,
        label: 6,
        parent: None,
    },
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 62.0, cy: 25.0, sigma: 1.5 },
        weight: 0.065,
        label: 7,
        parent: Some(6),
    },
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 80.0, cy: 28.0, sigma: 1.2 },
        weight: 0.055,
        label: 8,
        parent: Some(6),
    },
    // D: a free-standing medium Gaussian.
    Ds1Component {
        shape: Ds1Shape::Gaussian { cx: 20.0, cy: 25.0, sigma: 3.0 },
        weight: 0.155,
        label: 9,
        parent: None,
    },
];

/// Generates DS1. Points are shuffled, so any prefix is an unbiased
/// subsample (used by the size-scaling experiment of Fig. 17).
///
/// # Panics
///
/// Panics if `noise_fraction` is outside `[0, 1)`.
pub fn ds1(params: &Ds1Params, seed: u64) -> LabeledDataset {
    assert!(
        (0.0..1.0).contains(&params.noise_fraction),
        "noise_fraction must be in [0,1), got {}",
        params.noise_fraction
    );
    let mut rng = Rng::new(seed);
    let n_noise = (params.n as f64 * params.noise_fraction).round() as usize;
    let n_clustered = params.n - n_noise;

    let weights: Vec<f64> = DS1_COMPONENTS.iter().map(|c| c.weight).collect();
    let counts = shapes::partition_counts(n_clustered, &weights);

    let mut data = Dataset::with_capacity(2, params.n).expect("dim > 0");
    let mut labels: Vec<i32> = Vec::with_capacity(params.n);
    let mut p = Vec::with_capacity(2);

    for (comp, &count) in DS1_COMPONENTS.iter().zip(&counts) {
        for _ in 0..count {
            match comp.shape {
                Ds1Shape::UniformDisk { cx, cy, r } => {
                    shapes::uniform_ball(&mut rng, &[cx, cy], r, &mut p)
                }
                Ds1Shape::UniformBox { x0, y0, x1, y1 } => {
                    shapes::uniform_box(&mut rng, &[x0, y0], &[x1, y1], &mut p)
                }
                Ds1Shape::Gaussian { cx, cy, sigma } => {
                    shapes::gaussian_blob(&mut rng, &[cx, cy], sigma, &mut p)
                }
            }
            data.push(&p).expect("dim matches");
            labels.push(comp.label);
        }
    }
    for _ in 0..n_noise {
        shapes::uniform_box(&mut rng, &[0.0, 0.0], &[100.0, 100.0], &mut p);
        data.push(&p).expect("dim matches");
    }
    labels.extend(std::iter::repeat_n(NOISE_LABEL, n_noise));

    shuffle_in_unison(&mut rng, data, labels)
}

/// Shuffles points and labels with the same permutation.
pub(crate) fn shuffle_in_unison(rng: &mut Rng, data: Dataset, labels: Vec<i32>) -> LabeledDataset {
    let mut order: Vec<usize> = (0..data.len()).collect();
    rng.shuffle(&mut order);
    let shuffled = data.subset(&order);
    let shuffled_labels: Vec<i32> = order.iter().map(|&i| labels[i]).collect();
    LabeledDataset::new(shuffled, shuffled_labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_sum_to_one() {
        let total: f64 = DS1_COMPONENTS.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-12, "weights sum to {total}");
    }

    #[test]
    fn parents_are_top_level() {
        for c in DS1_COMPONENTS {
            if let Some(p) = c.parent {
                let parent = &DS1_COMPONENTS[p as usize];
                assert_eq!(parent.label, p);
                assert!(parent.parent.is_none(), "nesting is only one level deep");
            }
        }
    }

    #[test]
    fn generates_requested_size_with_labels() {
        let l = ds1(&Ds1Params { n: 5_000, noise_fraction: 0.1 }, 42);
        assert_eq!(l.len(), 5_000);
        assert_eq!(l.data.dim(), 2);
        assert_eq!(l.n_clusters(), DS1_COMPONENTS.len());
        let noise = l.n_noise();
        assert!((450..=550).contains(&noise), "noise {noise}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ds1(&Ds1Params { n: 1_000, noise_fraction: 0.05 }, 7);
        let b = ds1(&Ds1Params { n: 1_000, noise_fraction: 0.05 }, 7);
        assert_eq!(a, b);
        let c = ds1(&Ds1Params { n: 1_000, noise_fraction: 0.05 }, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn nested_components_lie_inside_parents() {
        // The dense disk child of A (label 2) must lie within A's disk.
        let l = ds1(&Ds1Params { n: 20_000, noise_fraction: 0.0 }, 3);
        for (i, &lab) in l.labels.iter().enumerate() {
            if lab == 2 {
                let p = l.data.point(i);
                let d = db_spatial::euclidean(p, &[25.0, 70.0]);
                assert!(d <= 12.0 + 1e-9, "child point escapes parent disk: {d}");
            }
        }
    }

    #[test]
    fn prefix_subsample_keeps_structure() {
        let l = ds1(&Ds1Params { n: 10_000, noise_fraction: 0.05 }, 5);
        let half = l.prefix(5_000);
        // The shuffle means a prefix still contains every component.
        assert_eq!(half.n_clusters(), DS1_COMPONENTS.len());
    }

    #[test]
    #[should_panic(expected = "noise_fraction")]
    fn rejects_bad_noise_fraction() {
        ds1(&Ds1Params { n: 100, noise_fraction: 1.5 }, 1);
    }
}
