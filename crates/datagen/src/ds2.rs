//! DS2: five well-separated Gaussian clusters of equal size (the paper uses
//! 100,000 points, 20,000 per cluster; §3, Fig. 4b).

use crate::ds1::shuffle_in_unison;
use crate::labeled::LabeledDataset;
use crate::rng::Rng;
use crate::shapes;
use db_spatial::Dataset;

/// Parameters for [`ds2`].
#[derive(Debug, Clone)]
pub struct Ds2Params {
    /// Total number of points (paper: 100,000).
    pub n: usize,
    /// Standard deviation of each Gaussian cluster.
    pub sigma: f64,
}

impl Default for Ds2Params {
    fn default() -> Self {
        Self { n: 100_000, sigma: 2.0 }
    }
}

/// Cluster centers of DS2 (domain `[0, 100]^2`), chosen well separated as in
/// the paper ("the clusters in this data set are well separated").
pub(crate) const DS2_CENTERS: [[f64; 2]; 5] =
    [[15.0, 15.0], [80.0, 20.0], [50.0, 50.0], [20.0, 85.0], [85.0, 80.0]];

/// Generates DS2: 5 equal-sized Gaussian clusters, shuffled.
pub fn ds2(params: &Ds2Params, seed: u64) -> LabeledDataset {
    let mut rng = Rng::new(seed);
    let counts = shapes::partition_counts(params.n, &[1.0; 5]);
    let mut data = Dataset::with_capacity(2, params.n).expect("dim > 0");
    let mut labels = Vec::with_capacity(params.n);
    let mut p = Vec::with_capacity(2);
    for (label, (&count, center)) in counts.iter().zip(DS2_CENTERS.iter()).enumerate() {
        for _ in 0..count {
            shapes::gaussian_blob(&mut rng, center, params.sigma, &mut p);
            data.push(&p).expect("dim matches");
            labels.push(label as i32);
        }
    }
    shuffle_in_unison(&mut rng, data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_equal_clusters_no_noise() {
        let l = ds2(&Ds2Params { n: 10_000, sigma: 2.0 }, 1);
        assert_eq!(l.len(), 10_000);
        assert_eq!(l.n_clusters(), 5);
        assert_eq!(l.n_noise(), 0);
        assert_eq!(l.cluster_sizes(), vec![2_000; 5]);
    }

    #[test]
    fn uneven_n_still_sums() {
        let l = ds2(&Ds2Params { n: 10_003, sigma: 1.0 }, 2);
        assert_eq!(l.cluster_sizes().iter().sum::<usize>(), 10_003);
    }

    #[test]
    fn clusters_are_around_their_centers() {
        let l = ds2(&Ds2Params { n: 5_000, sigma: 2.0 }, 3);
        let mut sums = [[0.0f64; 2]; 5];
        let mut counts = [0usize; 5];
        for (i, &lab) in l.labels.iter().enumerate() {
            let p = l.data.point(i);
            sums[lab as usize][0] += p[0];
            sums[lab as usize][1] += p[1];
            counts[lab as usize] += 1;
        }
        for c in 0..5 {
            let mx = sums[c][0] / counts[c] as f64;
            let my = sums[c][1] / counts[c] as f64;
            assert!((mx - DS2_CENTERS[c][0]).abs() < 0.5, "cluster {c} mean x {mx}");
            assert!((my - DS2_CENTERS[c][1]).abs() < 0.5, "cluster {c} mean y {my}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            ds2(&Ds2Params { n: 500, sigma: 2.0 }, 9),
            ds2(&Ds2Params { n: 500, sigma: 2.0 }, 9)
        );
    }
}
