//! The dimension-scaling workload of §9.1/§9.2: `k` Gaussian clusters of
//! random location and random size in `d` dimensions.
//!
//! The paper generates these so that "the 10-dim data set is equal to the
//! 20-dim data set projected onto the first 10 dimensions". We reproduce
//! that: generate once at `max_dim` and obtain lower-dimensional variants
//! with [`crate::LabeledDataset::project`].

use crate::ds1::shuffle_in_unison;
use crate::labeled::LabeledDataset;
use crate::rng::Rng;
use crate::shapes;
use db_spatial::Dataset;

/// Parameters for [`gaussian_family`].
#[derive(Debug, Clone)]
pub struct GaussianFamilyParams {
    /// Total number of points (paper: 1,000,000).
    pub n: usize,
    /// Dimensionality to generate at (paper: up to 20). Project down for
    /// the lower-dimensional variants.
    pub dim: usize,
    /// Number of Gaussian clusters (paper: 15).
    pub clusters: usize,
    /// Range of cluster standard deviations (drawn uniformly per cluster).
    pub sigma_range: (f64, f64),
    /// Side length of the cube cluster centers are drawn from.
    pub domain: f64,
    /// Minimum pairwise center distance, as a multiple of the larger of the
    /// two clusters' σ. Ensures clusters are separable, as the paper's
    /// plots (15 clean dents) imply.
    pub min_separation_sigmas: f64,
}

impl Default for GaussianFamilyParams {
    fn default() -> Self {
        Self {
            n: 1_000_000,
            dim: 20,
            clusters: 15,
            sigma_range: (1.0, 3.0),
            domain: 100.0,
            min_separation_sigmas: 8.0,
        }
    }
}

/// Generates the Gaussian-cluster family: `clusters` isotropic Gaussians
/// with random centers (rejection-sampled for separation) and random sizes
/// (mixture weights drawn uniformly from `[0.5, 1.5]` and normalized, so
/// clusters differ in size by up to 3×, "randomly sized").
///
/// # Panics
///
/// Panics if `dim == 0`, `clusters == 0`, or the separation constraint
/// cannot be satisfied within the domain after many attempts.
pub fn gaussian_family(params: &GaussianFamilyParams, seed: u64) -> LabeledDataset {
    assert!(params.dim > 0, "dim must be positive");
    assert!(params.clusters > 0, "clusters must be positive");
    let mut rng = Rng::new(seed);

    // Cluster σ values.
    let sigmas: Vec<f64> = (0..params.clusters)
        .map(|_| rng.uniform_in(params.sigma_range.0, params.sigma_range.1))
        .collect();

    // Rejection-sample separated centers. Separation is checked in the
    // *lowest projected* dimensionality callers care about; to stay simple
    // and conservative we check the first 2 coordinates as well as the full
    // vector, so projections remain separated too.
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(params.clusters);
    let mut attempts = 0usize;
    while centers.len() < params.clusters {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "could not place separated cluster centers; shrink sigma or clusters"
        );
        let cand: Vec<f64> = (0..params.dim).map(|_| rng.uniform_in(0.0, params.domain)).collect();
        let s_new = sigmas[centers.len()];
        let ok = centers.iter().enumerate().all(|(j, c)| {
            let req = params.min_separation_sigmas * s_new.max(sigmas[j]);
            // Full-dimensional separation…
            let d_full = db_spatial::euclidean(&cand, c);
            // …and separation in the 2-d projection (the smallest variant
            // the experiments use).
            let d2 = db_spatial::euclidean(&cand[..2.min(cand.len())], &c[..2.min(c.len())]);
            d_full >= req && d2 >= req
        });
        if ok {
            centers.push(cand);
        }
    }

    // Random sizes.
    let weights: Vec<f64> = (0..params.clusters).map(|_| rng.uniform_in(0.5, 1.5)).collect();
    let counts = shapes::partition_counts(params.n, &weights);

    let mut data = Dataset::with_capacity(params.dim, params.n).expect("dim > 0");
    let mut labels = Vec::with_capacity(params.n);
    let mut p = Vec::with_capacity(params.dim);
    for (label, (&count, center)) in counts.iter().zip(&centers).enumerate() {
        for _ in 0..count {
            shapes::gaussian_blob(&mut rng, center, sigmas[label], &mut p);
            data.push(&p).expect("dim matches");
            labels.push(label as i32);
        }
    }
    shuffle_in_unison(&mut rng, data, labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> GaussianFamilyParams {
        GaussianFamilyParams {
            n: 6_000,
            dim: 10,
            clusters: 15,
            domain: 200.0,
            ..GaussianFamilyParams::default()
        }
    }

    #[test]
    fn generates_all_clusters() {
        let l = gaussian_family(&small_params(), 42);
        assert_eq!(l.len(), 6_000);
        assert_eq!(l.data.dim(), 10);
        assert_eq!(l.n_clusters(), 15);
        assert_eq!(l.n_noise(), 0);
        // Random sizes: not all equal.
        let sizes = l.cluster_sizes();
        assert!(sizes.iter().any(|&s| s != sizes[0]));
    }

    #[test]
    fn projections_share_labels_and_prefix_coords() {
        let l = gaussian_family(&small_params(), 1);
        let p5 = l.project(5);
        let p2 = l.project(2);
        assert_eq!(p5.labels, l.labels);
        assert_eq!(p2.data.point(17), &l.data.point(17)[..2]);
    }

    #[test]
    fn clusters_are_separated_in_projection() {
        let l = gaussian_family(&small_params(), 7);
        let p2 = l.project(2);
        // Compute per-cluster centroid distances in 2-d; all pairs must be
        // farther apart than a few sigma.
        let k = 15;
        let mut sums = vec![[0.0f64; 2]; k];
        let mut counts = vec![0usize; k];
        for (i, &lab) in p2.labels.iter().enumerate() {
            let pt = p2.data.point(i);
            sums[lab as usize][0] += pt[0];
            sums[lab as usize][1] += pt[1];
            counts[lab as usize] += 1;
        }
        let cents: Vec<[f64; 2]> =
            sums.iter().zip(&counts).map(|(s, &c)| [s[0] / c as f64, s[1] / c as f64]).collect();
        for i in 0..k {
            for j in (i + 1)..k {
                let d = db_spatial::euclidean(&cents[i], &cents[j]);
                assert!(d > 8.0, "clusters {i},{j} too close in projection: {d}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = small_params();
        assert_eq!(gaussian_family(&p, 3), gaussian_family(&p, 3));
    }

    #[test]
    #[should_panic(expected = "could not place separated cluster centers")]
    fn impossible_separation_panics() {
        let p = GaussianFamilyParams {
            n: 10,
            dim: 2,
            clusters: 50,
            domain: 1.0,
            sigma_range: (5.0, 5.0),
            min_separation_sigmas: 100.0,
        };
        gaussian_family(&p, 1);
    }
}
