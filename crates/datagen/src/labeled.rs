use db_spatial::Dataset;

/// Ground-truth label used for noise points.
pub const NOISE_LABEL: i32 = -1;

/// A dataset together with its generating ground truth: one label per point,
/// where `label >= 0` identifies the generating cluster component and
/// [`NOISE_LABEL`] marks noise.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledDataset {
    /// The points.
    pub data: Dataset,
    /// One ground-truth label per point (`-1` = noise).
    pub labels: Vec<i32>,
}

impl LabeledDataset {
    /// Creates a labeled dataset.
    ///
    /// # Panics
    ///
    /// Panics if the number of labels differs from the number of points.
    pub fn new(data: Dataset, labels: Vec<i32>) -> Self {
        assert_eq!(data.len(), labels.len(), "labels/points mismatch");
        Self { data, labels }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of distinct non-noise cluster labels.
    pub fn n_clusters(&self) -> usize {
        let mut seen: Vec<i32> = self.labels.iter().copied().filter(|&l| l >= 0).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Number of noise points.
    pub fn n_noise(&self) -> usize {
        self.labels.iter().filter(|&&l| l == NOISE_LABEL).count()
    }

    /// Sizes of the clusters, indexed by label (labels are assumed to be
    /// contiguous `0..n_clusters`).
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let k = self.labels.iter().copied().max().map_or(0, |m| (m.max(-1) + 1) as usize);
        let mut sizes = vec![0usize; k];
        for &l in &self.labels {
            if l >= 0 {
                sizes[l as usize] += 1;
            }
        }
        sizes
    }

    /// Keeps only the first `d` coordinates of every point (exact
    /// projection; labels unchanged). See [`db_spatial::Dataset::project`].
    pub fn project(&self, d: usize) -> LabeledDataset {
        LabeledDataset { data: self.data.project(d), labels: self.labels.clone() }
    }

    /// A new labeled dataset with the first `n` points (generators shuffle
    /// points, so a prefix is an unbiased subsample — used by the
    /// database-size scaling experiment, Fig. 17).
    ///
    /// # Panics
    ///
    /// Panics if `n > self.len()`.
    pub fn prefix(&self, n: usize) -> LabeledDataset {
        assert!(n <= self.len(), "prefix {n} larger than dataset {}", self.len());
        let ids: Vec<usize> = (0..n).collect();
        LabeledDataset { data: self.data.subset(&ids), labels: self.labels[..n].to_vec() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LabeledDataset {
        let data =
            Dataset::from_rows(2, &[&[0.0, 0.0], &[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        LabeledDataset::new(data, vec![0, 1, 1, NOISE_LABEL])
    }

    #[test]
    fn basic_accessors() {
        let l = sample();
        assert_eq!(l.len(), 4);
        assert!(!l.is_empty());
        assert_eq!(l.n_clusters(), 2);
        assert_eq!(l.n_noise(), 1);
        assert_eq!(l.cluster_sizes(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "labels/points mismatch")]
    fn mismatched_lengths_panic() {
        let data = Dataset::from_rows(1, &[&[0.0]]).unwrap();
        LabeledDataset::new(data, vec![0, 1]);
    }

    #[test]
    fn prefix_takes_leading_points() {
        let l = sample();
        let p = l.prefix(2);
        assert_eq!(p.len(), 2);
        assert_eq!(p.labels, vec![0, 1]);
        assert_eq!(p.data.point(1), &[1.0, 1.0]);
    }

    #[test]
    fn project_keeps_labels() {
        let l = sample();
        let p = l.project(1);
        assert_eq!(p.data.dim(), 1);
        assert_eq!(p.labels, l.labels);
    }

    #[test]
    fn all_noise_has_zero_clusters() {
        let data = Dataset::from_rows(1, &[&[0.0], &[1.0]]).unwrap();
        let l = LabeledDataset::new(data, vec![NOISE_LABEL, NOISE_LABEL]);
        assert_eq!(l.n_clusters(), 0);
        assert_eq!(l.cluster_sizes(), Vec::<usize>::new());
    }
}
