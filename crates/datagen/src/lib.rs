//! Seeded synthetic workloads reproducing the data sets of the Data Bubbles
//! paper (SIGMOD 2001, §3 and §9).
//!
//! * [`ds1`] — the paper's DS1: nested clusters of different densities and
//!   distributions (uniform and Gaussian) plus noise, 2-dimensional
//!   (1,000,000 points in the paper; the size is a parameter here).
//! * [`ds2`] — DS2: five well-separated Gaussian clusters of equal size,
//!   2-dimensional (5 × 20,000 in the paper).
//! * [`gaussian_family`] — the dimension-scaling family of §9.1/§9.2:
//!   15 Gaussian clusters of random location and random size, generated at
//!   the maximum dimensionality so that lower-dimensional variants are exact
//!   projections (as in the paper).
//! * [`corel_like`] — a synthetic stand-in for the Corel Image Features
//!   color moments (68,040 × 9-d): a large body of near-uniform density with
//!   two tiny dense clusters embedded (see DESIGN.md §4 for the
//!   substitution rationale).
//!
//! The [`adversarial`] module provides the fault-injection corpora of the
//! chaos suite (NaN/∞ injection, 1e8-offset clusters, zero-variance
//! duplicates, singleton floods, ragged rows).
//!
//! All generators take an explicit `u64` seed and are fully deterministic.
//!
//! # Example
//!
//! ```
//! use db_datagen::{ds2, Ds2Params};
//!
//! let labeled = ds2(&Ds2Params { n: 1_000, ..Ds2Params::default() }, 42);
//! assert_eq!(labeled.data.len(), 1_000);
//! assert_eq!(labeled.n_clusters(), 5);
//! ```

#![warn(missing_docs)]

pub mod adversarial;
mod complex;
mod corel;
mod corpora;
mod ds1;
mod ds2;
mod family;
mod labeled;
pub mod rng;
pub mod shapes;

pub use adversarial::{all_corpora, AdversarialCorpus};
pub use complex::{nested_rings, two_moons, two_spirals, RingsParams};
pub use corel::{corel_like, CorelParams};
pub use corpora::{differential_corpora, separated_blobs, Corpus, SeparatedBlobsParams};
pub use ds1::{ds1, Ds1Params, DS1_COMPONENTS};
pub use ds2::{ds2, Ds2Params};
pub use family::{gaussian_family, GaussianFamilyParams};
pub use labeled::{LabeledDataset, NOISE_LABEL};
pub use rng::Rng;
