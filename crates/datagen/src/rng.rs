//! A small deterministic RNG (xoshiro256** seeded via splitmix64).
//!
//! Hand-rolled so the data generators have zero dependencies and produce
//! bit-identical workloads on every platform. Gaussian variates use the
//! Box–Muller transform with caching of the second variate.

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
    cached_gauss: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Self { s, cached_gauss: None }
    }

    /// Derives an independent generator (for splitting one seed across
    /// several sub-generators without correlation).
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s, cached_gauss: None }
    }

    /// The next raw 64-bit value (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire-style rejection-free-ish multiply-shift; the tiny bias of
        // plain multiply-shift is irrelevant for data generation but we
        // reject to keep sampling exact.
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let l = m as u64;
            if l >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// A standard normal variate (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.cached_gauss.take() {
            return g;
        }
        // u1 in (0,1] to avoid ln(0).
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal variate with the given mean and standard deviation.
    #[inline]
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling),
    /// returned in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.below(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        reservoir.sort_unstable();
        reservoir
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(123);
        let mut b = Rng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn uniform_is_in_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::new(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = Rng::new(9);
        for _ in 0..1000 {
            let x = rng.uniform_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough_and_in_range() {
        let mut rng = Rng::new(11);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        Rng::new(1).below(0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Rng::new(13);
        let n = 50_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.gaussian();
            sum += g;
            sum_sq += g * g;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_with_shifts_and_scales() {
        let mut rng = Rng::new(17);
        let n = 50_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += rng.gaussian_with(10.0, 2.0);
        }
        assert!((sum / n as f64 - 10.0).abs() < 0.05);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(19);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_indices_distinct_sorted_in_range() {
        let mut rng = Rng::new(23);
        let s = rng.sample_indices(1000, 50);
        assert_eq!(s.len(), 50);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(s.iter().all(|&i| i < 1000));
        // Full sample is the identity set.
        let all = rng.sample_indices(10, 10);
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_k_gt_n() {
        Rng::new(1).sample_indices(3, 4);
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = Rng::new(31);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
