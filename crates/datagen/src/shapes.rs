//! Primitive shape samplers used to assemble the synthetic workloads.

use crate::rng::Rng;

/// Samples a point uniformly inside an axis-aligned box `[lo, hi]^d`.
pub fn uniform_box(rng: &mut Rng, lo: &[f64], hi: &[f64], out: &mut Vec<f64>) {
    out.clear();
    for (&l, &h) in lo.iter().zip(hi) {
        out.push(rng.uniform_in(l, h));
    }
}

/// Samples a point uniformly inside a `d`-dimensional ball.
///
/// Uses the classic trick: a standard Gaussian direction scaled to a radius
/// `r · u^(1/d)`, which is exact for every dimension.
pub fn uniform_ball(rng: &mut Rng, center: &[f64], radius: f64, out: &mut Vec<f64>) {
    out.clear();
    let d = center.len();
    let mut norm_sq = 0.0;
    for _ in 0..d {
        let g = rng.gaussian();
        norm_sq += g * g;
        out.push(g);
    }
    let norm = norm_sq.sqrt();
    let r = radius * rng.uniform().powf(1.0 / d as f64);
    let scale = if norm > 0.0 { r / norm } else { 0.0 };
    for (x, &c) in out.iter_mut().zip(center) {
        *x = c + *x * scale;
    }
}

/// Samples a point from an isotropic Gaussian.
pub fn gaussian_blob(rng: &mut Rng, center: &[f64], std_dev: f64, out: &mut Vec<f64>) {
    out.clear();
    for &c in center {
        out.push(rng.gaussian_with(c, std_dev));
    }
}

/// Samples a point from an axis-aligned anisotropic Gaussian.
pub fn gaussian_blob_aniso(rng: &mut Rng, center: &[f64], std_devs: &[f64], out: &mut Vec<f64>) {
    debug_assert_eq!(center.len(), std_devs.len());
    out.clear();
    for (&c, &s) in center.iter().zip(std_devs) {
        out.push(rng.gaussian_with(c, s));
    }
}

/// Splits `n` into `weights.len()` integer part sizes proportional to
/// `weights`, summing exactly to `n` (largest-remainder method).
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative/non-finite value, or
/// sums to zero.
pub fn partition_counts(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0 && total.is_finite(), "weights must sum to a positive finite value");
    assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");

    let mut counts: Vec<usize> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(weights.len());
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let exact = n as f64 * w / total;
        let floor = exact.floor() as usize;
        counts.push(floor);
        assigned += floor;
        remainders.push((i, exact - floor as f64));
    }
    remainders.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    for &(i, _) in remainders.iter().take(n - assigned) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_box_stays_inside() {
        let mut rng = Rng::new(1);
        let (lo, hi) = ([0.0, -1.0], [2.0, 1.0]);
        let mut p = Vec::new();
        for _ in 0..1000 {
            uniform_box(&mut rng, &lo, &hi, &mut p);
            assert!(p[0] >= 0.0 && p[0] < 2.0);
            assert!(p[1] >= -1.0 && p[1] < 1.0);
        }
    }

    #[test]
    fn uniform_ball_stays_inside_and_fills_volume() {
        let mut rng = Rng::new(2);
        let center = [5.0, 5.0];
        let mut p = Vec::new();
        let mut inside_half = 0;
        let n = 4000;
        for _ in 0..n {
            uniform_ball(&mut rng, &center, 2.0, &mut p);
            let d = db_spatial::euclidean(&p, &center);
            assert!(d <= 2.0 + 1e-9);
            if d <= 1.0 {
                inside_half += 1;
            }
        }
        // A ball of half the radius holds 1/4 of the area in 2-d.
        let frac = inside_half as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.05, "frac {frac}");
    }

    #[test]
    fn gaussian_blob_centered() {
        let mut rng = Rng::new(3);
        let center = [1.0, -2.0, 3.0];
        let mut p = Vec::new();
        let mut sums = [0.0; 3];
        let n = 20_000;
        for _ in 0..n {
            gaussian_blob(&mut rng, &center, 0.5, &mut p);
            for (s, &x) in sums.iter_mut().zip(&p) {
                *s += x;
            }
        }
        for (s, c) in sums.iter().zip(&center) {
            assert!((s / n as f64 - c).abs() < 0.02);
        }
    }

    #[test]
    fn gaussian_blob_aniso_variances() {
        let mut rng = Rng::new(4);
        let center = [0.0, 0.0];
        let stds = [1.0, 3.0];
        let mut p = Vec::new();
        let mut sq = [0.0; 2];
        let n = 30_000;
        for _ in 0..n {
            gaussian_blob_aniso(&mut rng, &center, &stds, &mut p);
            sq[0] += p[0] * p[0];
            sq[1] += p[1] * p[1];
        }
        assert!((sq[0] / n as f64 - 1.0).abs() < 0.1);
        assert!((sq[1] / n as f64 - 9.0).abs() < 0.5);
    }

    #[test]
    fn partition_counts_sums_to_n() {
        let counts = partition_counts(100, &[0.5, 0.3, 0.2]);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert_eq!(counts, vec![50, 30, 20]);
        // Awkward weights still sum exactly.
        let counts = partition_counts(10, &[1.0, 1.0, 1.0]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        let counts = partition_counts(7, &[0.1, 0.1, 0.1, 0.1]);
        assert_eq!(counts.iter().sum::<usize>(), 7);
        // Zero n.
        assert_eq!(partition_counts(0, &[1.0, 2.0]), vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn partition_counts_rejects_empty() {
        partition_counts(10, &[]);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn partition_counts_rejects_zero_sum() {
        partition_counts(10, &[0.0, 0.0]);
    }
}
