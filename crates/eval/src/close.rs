//! Floating-point comparison utilities for the differential and
//! metamorphic harnesses: relative error with explicit ∞/NaN semantics.
//!
//! Tolerance policy (DESIGN.md §10): exact paths (indexes, walks, thread
//! and matrix knobs) are compared bit for bit; stable-statistics paths
//! (CF-derived means/extents vs. pairwise closed forms) are compared with
//! [`rel_err`] against a small relative tolerance.

/// Relative error between two values:
/// `|a − b| / max(|a|, |b|)`, with the conventions
///
/// * `0.0` when both are equal — including two equal infinities and two
///   NaNs (the sentinel values compare as "same state");
/// * `∞` when exactly one is non-finite, or NaN meets a number (a sentinel
///   disagreeing with a value is a hard mismatch, never "close");
/// * the plain absolute difference when both are within one unit of zero
///   (so tiny values near zero are not amplified into huge relative
///   errors).
pub fn rel_err(a: f64, b: f64) -> f64 {
    if a.is_nan() && b.is_nan() {
        return 0.0;
    }
    if a == b {
        return 0.0; // covers equal finite values and equal infinities
    }
    if !a.is_finite() || !b.is_finite() {
        return f64::INFINITY;
    }
    let diff = (a - b).abs();
    let scale = a.abs().max(b.abs());
    if scale <= 1.0 {
        diff
    } else {
        diff / scale
    }
}

/// The largest [`rel_err`] over two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn max_rel_err(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "slices must have equal length");
    a.iter().zip(b).map(|(&x, &y)| rel_err(x, y)).fold(0.0, f64::max)
}

/// Whether every pair of corresponding values is within `rel_tol`
/// relative error ([`rel_err`] semantics, so paired infinities pass and
/// mismatched sentinels fail).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn all_close(a: &[f64], b: &[f64], rel_tol: f64) -> bool {
    max_rel_err(a, b) <= rel_tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches_have_zero_error() {
        assert_eq!(rel_err(1.5, 1.5), 0.0);
        assert_eq!(rel_err(0.0, 0.0), 0.0);
        assert_eq!(rel_err(f64::INFINITY, f64::INFINITY), 0.0);
        assert_eq!(rel_err(f64::NAN, f64::NAN), 0.0);
    }

    #[test]
    fn sentinel_mismatches_are_infinite() {
        assert_eq!(rel_err(f64::INFINITY, 1.0), f64::INFINITY);
        assert_eq!(rel_err(1.0, f64::NAN), f64::INFINITY);
        assert_eq!(rel_err(f64::INFINITY, f64::NEG_INFINITY), f64::INFINITY);
    }

    #[test]
    fn relative_above_one_absolute_below() {
        // 1000 vs 1001: relative error 1/1001.
        assert!((rel_err(1000.0, 1001.0) - 1.0 / 1001.0).abs() < 1e-15);
        // 1e-30 vs 0: absolute difference, not 1.0.
        assert_eq!(rel_err(1e-30, 0.0), 1e-30);
    }

    #[test]
    fn slice_helpers() {
        let a = [1.0, f64::INFINITY, 0.5];
        let b = [1.0 + 1e-9, f64::INFINITY, 0.5];
        assert!(all_close(&a, &b, 1e-8));
        assert!(!all_close(&a, &b, 1e-12));
        assert!((max_rel_err(&a, &b) - 1e-9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        max_rel_err(&[1.0], &[1.0, 2.0]);
    }
}
