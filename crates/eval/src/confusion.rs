//! Confusion matrices between two clusterings, as used in §9.2 of the Data
//! Bubbles paper ("The rows are reordered so that the largest numbers are
//! on the diagonal").

use std::fmt;

/// A confusion matrix between a *reference* clustering (columns) and a
/// clustering *under validation* (rows). Noise (`-1`) occupies the last
/// row/column.
///
/// ```
/// use db_eval::ConfusionMatrix;
/// let reference = [0, 0, 1, 1];
/// let validated = [1, 1, 0, 0]; // same partition, swapped ids
/// let mut m = ConfusionMatrix::from_labels(&reference, &validated);
/// m.reorder_rows_greedy();
/// assert_eq!(m.diagonal_fraction(), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// `counts[row][col]`.
    counts: Vec<Vec<u64>>,
    /// Original row labels after any reordering (last = noise).
    row_labels: Vec<i32>,
    /// Original column labels (last = noise).
    col_labels: Vec<i32>,
}

impl ConfusionMatrix {
    /// Builds the matrix from two label slices of equal length.
    /// Labels ≥ 0 are clusters; `-1` is noise. Cluster ids need not be
    /// contiguous.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_labels(reference: &[i32], validated: &[i32]) -> Self {
        assert_eq!(reference.len(), validated.len(), "label slices must have equal length");
        let col_labels = distinct_labels(reference);
        let row_labels = distinct_labels(validated);
        let mut counts = vec![vec![0u64; col_labels.len()]; row_labels.len()];
        {
            let col_of = index_map(&col_labels);
            let row_of = index_map(&row_labels);
            for (&r, &v) in reference.iter().zip(validated) {
                counts[row_of(v)][col_of(r)] += 1;
            }
        }
        Self { counts, row_labels, col_labels }
    }

    /// Number of rows (validated clusters, incl. noise row if present).
    pub fn n_rows(&self) -> usize {
        self.counts.len()
    }

    /// Number of columns (reference clusters, incl. noise column).
    pub fn n_cols(&self) -> usize {
        self.counts.first().map_or(0, Vec::len)
    }

    /// The count at `(row, col)`.
    pub fn at(&self, row: usize, col: usize) -> u64 {
        self.counts[row][col]
    }

    /// Labels of the rows in their current order.
    pub fn row_labels(&self) -> &[i32] {
        &self.row_labels
    }

    /// Labels of the columns.
    pub fn col_labels(&self) -> &[i32] {
        &self.col_labels
    }

    /// Reorders rows so the largest counts land on the diagonal (greedy
    /// maximum matching, exactly the presentation used by the paper's
    /// Fig. 19/22). Noise rows/columns stay last.
    pub fn reorder_rows_greedy(&mut self) {
        let n_cluster_rows = self.row_labels.iter().filter(|&&l| l >= 0).count();
        let n_cluster_cols = self.col_labels.iter().filter(|&&l| l >= 0).count();
        let mut new_order: Vec<usize> = Vec::with_capacity(self.counts.len());
        let mut used = vec![false; self.counts.len()];
        for col in 0..n_cluster_cols.min(n_cluster_rows) {
            // Best unused cluster row for this column.
            let best =
                (0..n_cluster_rows).filter(|&r| !used[r]).max_by_key(|&r| self.counts[r][col]);
            if let Some(r) = best {
                used[r] = true;
                new_order.push(r);
            }
        }
        for (r, &u) in used.iter().enumerate() {
            if !u {
                new_order.push(r);
            }
        }
        self.counts = new_order.iter().map(|&r| self.counts[r].clone()).collect();
        self.row_labels = new_order.iter().map(|&r| self.row_labels[r]).collect();
    }

    /// Fraction of objects on the diagonal among objects in cluster columns
    /// (noise column excluded): the "accuracy" after row reordering.
    pub fn diagonal_fraction(&self) -> f64 {
        let mut diag = 0u64;
        let mut total = 0u64;
        for col in 0..self.n_cols() {
            if self.col_labels[col] < 0 {
                continue;
            }
            for row in 0..self.n_rows() {
                total += self.counts[row][col];
            }
            if col < self.n_rows() && self.row_labels[col] >= 0 {
                diag += self.counts[col][col];
            }
        }
        if total == 0 {
            return 1.0;
        }
        diag as f64 / total as f64
    }

    /// Total number of objects.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Row sums (sizes of the validated clusters).
    pub fn row_sums(&self) -> Vec<u64> {
        self.counts.iter().map(|r| r.iter().sum()).collect()
    }

    /// Column sums (sizes of the reference clusters).
    pub fn col_sums(&self) -> Vec<u64> {
        let mut sums = vec![0u64; self.n_cols()];
        for row in &self.counts {
            for (s, &c) in sums.iter_mut().zip(row) {
                *s += c;
            }
        }
        sums
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8}", "")?;
        for l in &self.col_labels {
            if *l < 0 {
                write!(f, "{:>8}", "noise")?;
            } else {
                write!(f, "{l:>8}")?;
            }
        }
        writeln!(f)?;
        for (row, counts) in self.counts.iter().enumerate() {
            let l = self.row_labels[row];
            if l < 0 {
                write!(f, "{:>8}", "noise")?;
            } else {
                write!(f, "{l:>8}")?;
            }
            for c in counts {
                write!(f, "{c:>8}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Distinct cluster labels sorted ascending, noise (`-1`) last if present.
fn distinct_labels(labels: &[i32]) -> Vec<i32> {
    let mut v: Vec<i32> = labels.iter().copied().filter(|&l| l >= 0).collect();
    v.sort_unstable();
    v.dedup();
    if labels.iter().any(|&l| l < 0) {
        v.push(-1);
    }
    v
}

/// A lookup closure from label to dense index, mapping all negatives to the
/// noise slot (the last index). Binary search runs over the sorted cluster
/// prefix only, since the trailing noise label breaks the sort order.
fn index_map(labels: &[i32]) -> impl Fn(i32) -> usize + '_ {
    let clusters = labels.len() - usize::from(labels.last() == Some(&-1));
    move |l: i32| {
        if l < 0 {
            labels.len() - 1
        } else {
            labels[..clusters].binary_search(&l).expect("label present")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_clusterings_are_diagonal() {
        let labels = vec![0, 0, 1, 1, 2, 2, -1];
        let mut m = ConfusionMatrix::from_labels(&labels, &labels);
        m.reorder_rows_greedy();
        assert_eq!(m.n_rows(), 4); // 3 clusters + noise
        assert_eq!(m.n_cols(), 4);
        assert_eq!(m.diagonal_fraction(), 1.0);
        assert_eq!(m.total(), 7);
        for i in 0..3 {
            assert_eq!(m.at(i, i), 2);
        }
        assert_eq!(m.at(3, 3), 1); // noise vs noise
    }

    #[test]
    fn permuted_labels_realign_after_reordering() {
        let reference = vec![0, 0, 0, 1, 1, 1];
        let validated = vec![1, 1, 1, 0, 0, 0]; // same partition, swapped ids
        let mut m = ConfusionMatrix::from_labels(&reference, &validated);
        assert_eq!(m.diagonal_fraction(), 0.0);
        m.reorder_rows_greedy();
        assert_eq!(m.diagonal_fraction(), 1.0);
        assert_eq!(m.row_labels(), &[1, 0]);
    }

    #[test]
    fn split_cluster_shows_off_diagonal_mass() {
        let reference = vec![0, 0, 0, 0];
        let validated = vec![0, 0, 1, 1];
        let mut m = ConfusionMatrix::from_labels(&reference, &validated);
        m.reorder_rows_greedy();
        assert!((m.diagonal_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals_are_cluster_sizes() {
        let reference = vec![0, 0, 1, -1];
        let validated = vec![0, 1, 1, 1];
        let m = ConfusionMatrix::from_labels(&reference, &validated);
        assert_eq!(m.row_sums().iter().sum::<u64>(), 4);
        assert_eq!(m.col_sums(), vec![2, 1, 1]); // cluster 0, cluster 1, noise
    }

    #[test]
    fn display_renders_noise_headers() {
        let m = ConfusionMatrix::from_labels(&[0, -1], &[0, -1]);
        let s = m.to_string();
        assert!(s.contains("noise"));
        assert!(s.contains('0'));
    }

    #[test]
    fn non_contiguous_labels_are_supported() {
        let reference = vec![10, 10, 42];
        let validated = vec![7, 7, 99];
        let mut m = ConfusionMatrix::from_labels(&reference, &validated);
        m.reorder_rows_greedy();
        assert_eq!(m.diagonal_fraction(), 1.0);
        assert_eq!(m.col_labels(), &[10, 42]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        ConfusionMatrix::from_labels(&[0], &[0, 1]);
    }

    #[test]
    fn noise_row_is_not_a_diagonal_hit() {
        // Regression: the noise row aligning with a cluster column used to
        // count toward the diagonal, inflating accuracy.
        let reference = vec![0, 1];
        let validated = vec![0, -1];
        let mut m = ConfusionMatrix::from_labels(&reference, &validated);
        m.reorder_rows_greedy();
        // Cluster 0 matched (1 of 2 clustered objects); cluster 1 became
        // noise and must not count.
        assert!((m.diagonal_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_labels() {
        let m = ConfusionMatrix::from_labels(&[], &[]);
        assert_eq!(m.total(), 0);
        assert_eq!(m.diagonal_fraction(), 1.0);
    }
}
