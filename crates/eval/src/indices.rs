//! Pair-counting and information-theoretic agreement indices between two
//! clusterings.
//!
//! Noise handling: a noise label (`-1`) is treated as a cluster of its own
//! in all indices (the conservative choice — disagreeing on noise hurts the
//! score). Callers who want to ignore noise can filter the slices first.

use std::collections::HashMap;

/// Builds the contingency table between two labelings.
fn contingency(a: &[i32], b: &[i32]) -> (Vec<Vec<u64>>, Vec<u64>, Vec<u64>) {
    assert_eq!(a.len(), b.len(), "label slices must have equal length");
    let mut a_ids: HashMap<i32, usize> = HashMap::new();
    let mut b_ids: HashMap<i32, usize> = HashMap::new();
    for &l in a {
        let next = a_ids.len();
        a_ids.entry(l).or_insert(next);
    }
    for &l in b {
        let next = b_ids.len();
        b_ids.entry(l).or_insert(next);
    }
    let mut table = vec![vec![0u64; b_ids.len()]; a_ids.len()];
    for (&x, &y) in a.iter().zip(b) {
        table[a_ids[&x]][b_ids[&y]] += 1;
    }
    let a_sums: Vec<u64> = table.iter().map(|r| r.iter().sum()).collect();
    let mut b_sums = vec![0u64; b_ids.len()];
    for row in &table {
        for (s, &c) in b_sums.iter_mut().zip(row) {
            *s += c;
        }
    }
    (table, a_sums, b_sums)
}

#[inline]
fn choose2(n: u64) -> f64 {
    (n as f64) * (n as f64 - 1.0) / 2.0
}

/// The Rand index in `[0, 1]`: fraction of object pairs on which both
/// clusterings agree (same-same or different-different).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rand_index(a: &[i32], b: &[i32]) -> f64 {
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (table, a_sums, b_sums) = contingency(a, b);
    let sum_nij: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let sum_ai: f64 = a_sums.iter().map(|&c| choose2(c)).sum();
    let sum_bj: f64 = b_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    // agreements = pairs together in both + pairs apart in both
    let together_both = sum_nij;
    let apart_both = total - sum_ai - sum_bj + sum_nij;
    (together_both + apart_both) / total
}

/// The Hubert–Arabie adjusted Rand index: 1.0 for identical partitions,
/// ~0.0 for independent ones (can be negative).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn adjusted_rand_index(a: &[i32], b: &[i32]) -> f64 {
    let n = a.len() as u64;
    if n < 2 {
        return 1.0;
    }
    let (table, a_sums, b_sums) = contingency(a, b);
    let sum_nij: f64 = table.iter().flatten().map(|&c| choose2(c)).sum();
    let sum_ai: f64 = a_sums.iter().map(|&c| choose2(c)).sum();
    let sum_bj: f64 = b_sums.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n);
    let expected = sum_ai * sum_bj / total;
    let max_index = 0.5 * (sum_ai + sum_bj);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are trivial (all-in-one or all-singletons).
        return if (sum_nij - expected).abs() < 1e-12 { 1.0 } else { 0.0 };
    }
    (sum_nij - expected) / (max_index - expected)
}

/// Normalized mutual information with arithmetic-mean normalization:
/// `NMI = 2·I(A;B) / (H(A) + H(B))`, in `[0, 1]`.
///
/// Returns 1.0 when both partitions are identical *or both trivial*
/// (zero entropy).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn normalized_mutual_information(a: &[i32], b: &[i32]) -> f64 {
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let (table, a_sums, b_sums) = contingency(a, b);
    let h = |sums: &[u64]| -> f64 {
        sums.iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum()
    };
    let ha = h(&a_sums);
    let hb = h(&b_sums);
    if ha == 0.0 && hb == 0.0 {
        return 1.0;
    }
    let mut mi = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let pij = c as f64 / n;
            let pi = a_sums[i] as f64 / n;
            let pj = b_sums[j] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    (2.0 * mi / (ha + hb)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_near_one(x: f64) {
        assert!((x - 1.0).abs() < 1e-9, "expected ≈1.0, got {x}");
    }

    #[test]
    fn identical_partitions_score_one() {
        let l = vec![0, 0, 1, 1, 2];
        assert_near_one(rand_index(&l, &l));
        assert_near_one(adjusted_rand_index(&l, &l));
        assert_near_one(normalized_mutual_information(&l, &l));
    }

    #[test]
    fn permuted_labels_score_one() {
        let a = vec![0, 0, 1, 1];
        let b = vec![5, 5, 2, 2];
        assert_near_one(rand_index(&a, &b));
        assert_near_one(adjusted_rand_index(&a, &b));
        assert_near_one(normalized_mutual_information(&a, &b));
    }

    #[test]
    fn rand_index_hand_computed() {
        // a: {0,1},{2}; b: {0},{1,2}. Pairs: (0,1) together in a, apart in
        // b -> disagree; (0,2) apart/apart -> agree; (1,2) apart in a,
        // together in b -> disagree. RI = 1/3.
        let a = vec![0, 0, 1];
        let b = vec![0, 1, 1];
        assert!((rand_index(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ari_is_near_zero_for_random_labels() {
        // Deterministic pseudo-random labels.
        let a: Vec<i32> =
            (0..2000).map(|i| ((i * 2654435761u64 as usize) >> 7) as i32 % 4).collect();
        let b: Vec<i32> = (0..2000).map(|i| ((i * 40503 + 17) >> 3) % 4).collect();
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari.abs() < 0.05, "ARI {ari} not near zero");
        let nmi = normalized_mutual_information(&a, &b);
        assert!(nmi < 0.05, "NMI {nmi} not near zero");
    }

    #[test]
    fn ari_penalizes_splitting() {
        let a = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let b = vec![0, 0, 1, 1, 2, 2, 3, 3];
        let ari = adjusted_rand_index(&a, &b);
        assert!(ari > 0.0 && ari < 1.0, "ARI {ari}");
    }

    #[test]
    fn noise_is_its_own_cluster() {
        let a = vec![0, 0, -1, -1];
        let b = vec![0, 0, -1, -1];
        assert_near_one(adjusted_rand_index(&a, &b));
        let c = vec![0, 0, 0, 0];
        assert!(adjusted_rand_index(&a, &c) < 1.0);
    }

    #[test]
    fn trivial_partitions() {
        let one = vec![0, 0, 0];
        assert_eq!(adjusted_rand_index(&one, &one), 1.0);
        assert_eq!(normalized_mutual_information(&one, &one), 1.0);
        let singletons = vec![0, 1, 2];
        assert_eq!(adjusted_rand_index(&singletons, &singletons), 1.0);
        // All-in-one vs all-singletons: no agreement beyond chance.
        assert_eq!(adjusted_rand_index(&one, &singletons), 0.0);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(rand_index(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[5]), 1.0);
        assert_eq!(adjusted_rand_index(&[0], &[5]), 1.0);
        assert_eq!(normalized_mutual_information(&[], &[]), 1.0);
    }

    #[test]
    fn symmetry() {
        let a = vec![0, 0, 1, 1, 2, -1];
        let b = vec![0, 1, 1, 2, 2, 2];
        assert!((rand_index(&a, &b) - rand_index(&b, &a)).abs() < 1e-12);
        assert!((adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12);
        let n1 = normalized_mutual_information(&a, &b);
        let n2 = normalized_mutual_information(&b, &a);
        assert!((n1 - n2).abs() < 1e-12);
    }
}
