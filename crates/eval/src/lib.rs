//! Clustering evaluation utilities: confusion matrices (§9.2 of the Data
//! Bubbles paper), pair-counting indices (Rand / ARI), normalized mutual
//! information, and reachability-plot summary statistics.
//!
//! All functions operate on plain label slices (`i32`, with `-1` = noise),
//! so the crate has no dependencies and is usable with any clustering.

#![warn(missing_docs)]

mod close;
mod confusion;
mod indices;
mod plotstats;
mod silhouette;

pub use close::{all_close, max_rel_err, rel_err};
pub use confusion::ConfusionMatrix;
pub use indices::{adjusted_rand_index, normalized_mutual_information, rand_index};
pub use plotstats::{count_dents, plot_summary, PlotSummary};
pub use silhouette::silhouette_score;
