//! Summary statistics of reachability plots, used by the figure harness to
//! compare plot *shapes* numerically (the paper compares plots visually).

/// Summary of one reachability plot.
#[derive(Debug, Clone, PartialEq)]
pub struct PlotSummary {
    /// Number of positions.
    pub n: usize,
    /// Fraction of positions with a finite reachability.
    pub finite_fraction: f64,
    /// Mean of the finite values.
    pub mean: f64,
    /// Median of the finite values.
    pub median: f64,
    /// 90th percentile of the finite values.
    pub p90: f64,
    /// Maximum finite value.
    pub max: f64,
}

/// Computes summary statistics over a reachability plot (∞ values are
/// counted in `n` but excluded from the moments). Returns zeros for plots
/// without finite values.
pub fn plot_summary(values: &[f64]) -> PlotSummary {
    let mut finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = values.len();
    if finite.is_empty() {
        return PlotSummary { n, finite_fraction: 0.0, mean: 0.0, median: 0.0, p90: 0.0, max: 0.0 };
    }
    finite.sort_by(f64::total_cmp);
    let m = finite.len();
    let mean = finite.iter().sum::<f64>() / m as f64;
    let pct = |q: f64| finite[(((m - 1) as f64) * q).round() as usize];
    PlotSummary {
        n,
        finite_fraction: m as f64 / n as f64,
        mean,
        median: pct(0.5),
        p90: pct(0.9),
        max: finite[m - 1],
    }
}

/// Counts the "dents" of a reachability plot: maximal runs of at least
/// `min_len` consecutive values strictly below `threshold`. This is the
/// quantitative stand-in for counting clusters by eye in the paper's plots.
pub fn count_dents(values: &[f64], threshold: f64, min_len: usize) -> usize {
    let mut dents = 0usize;
    let mut run = 0usize;
    for &v in values {
        if v < threshold {
            run += 1;
            if run == min_len.max(1) {
                dents += 1;
            }
        } else {
            run = 0;
        }
    }
    dents
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_simple_plot() {
        let v = [f64::INFINITY, 1.0, 2.0, 3.0, 4.0];
        let s = plot_summary(&v);
        assert_eq!(s.n, 5);
        assert!((s.finite_fraction - 0.8).abs() < 1e-12);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.max, 4.0);
        assert!(s.median == 2.0 || s.median == 3.0);
    }

    #[test]
    fn summary_of_all_infinite_plot() {
        let v = [f64::INFINITY; 3];
        let s = plot_summary(&v);
        assert_eq!(s.n, 3);
        assert_eq!(s.finite_fraction, 0.0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn count_dents_finds_runs() {
        let mut v = vec![5.0; 10];
        v.extend(vec![0.5; 8]);
        v.extend(vec![5.0; 5]);
        v.extend(vec![0.4; 8]);
        v.extend(vec![5.0; 5]);
        assert_eq!(count_dents(&v, 1.0, 5), 2);
        assert_eq!(count_dents(&v, 1.0, 9), 0); // runs too short
        assert_eq!(count_dents(&v, 0.45, 5), 1); // only the deeper dent
        assert_eq!(count_dents(&v, 10.0, 1), 1); // everything below: one run
    }

    #[test]
    fn count_dents_empty_and_min_len_zero() {
        assert_eq!(count_dents(&[], 1.0, 3), 0);
        // min_len 0 is clamped to 1.
        assert_eq!(count_dents(&[0.1], 1.0, 0), 1);
    }
}
