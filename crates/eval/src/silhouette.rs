//! The silhouette coefficient: a label-free internal quality measure, used
//! by the harness to sanity-check clusterings without ground truth (the
//! Corel-style setting, where no generator labels exist for real data).

/// Mean silhouette over all clustered objects (noise excluded), given the
/// labels and a distance closure. O(n²) distance evaluations — intended
/// for representative-sized sets.
///
/// * `s(i) = (b(i) − a(i)) / max(a(i), b(i))` with `a` the mean
///   intra-cluster distance and `b` the smallest mean distance to another
///   cluster;
/// * objects in singleton clusters score 0 (the usual convention);
/// * returns `None` when fewer than 2 clusters contain objects.
///
/// ```
/// use db_eval::silhouette_score;
/// let xs: [f64; 4] = [0.0, 0.2, 10.0, 10.2];
/// let labels = [0, 0, 1, 1];
/// let s = silhouette_score(4, &labels, |a, b| (xs[a] - xs[b]).abs()).unwrap();
/// assert!(s > 0.9);
/// ```
///
/// # Panics
///
/// Panics if `labels.len() != n`.
pub fn silhouette_score(
    n: usize,
    labels: &[i32],
    dist: impl Fn(usize, usize) -> f64,
) -> Option<f64> {
    assert_eq!(labels.len(), n, "one label per object required");
    let mut clusters: Vec<i32> = labels.iter().copied().filter(|&l| l >= 0).collect();
    clusters.sort_unstable();
    clusters.dedup();
    if clusters.len() < 2 {
        return None;
    }
    let cluster_index = |l: i32| clusters.binary_search(&l).expect("label present");
    let mut sizes = vec![0usize; clusters.len()];
    for &l in labels {
        if l >= 0 {
            sizes[cluster_index(l)] += 1;
        }
    }

    let mut total = 0.0;
    let mut counted = 0usize;
    let mut sums = vec![0.0f64; clusters.len()];
    for i in 0..n {
        if labels[i] < 0 {
            continue;
        }
        let own = cluster_index(labels[i]);
        if sizes[own] <= 1 {
            counted += 1; // s(i) = 0 for singletons
            continue;
        }
        sums.iter_mut().for_each(|s| *s = 0.0);
        for j in 0..n {
            if i == j || labels[j] < 0 {
                continue;
            }
            sums[cluster_index(labels[j])] += dist(i, j);
        }
        let a = sums[own] / (sizes[own] - 1) as f64;
        let b = sums
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != own && sizes[c] > 0)
            .map(|(c, &s)| s / sizes[c] as f64)
            .fold(f64::INFINITY, f64::min);
        let s = if a.max(b) > 0.0 { (b - a) / a.max(b) } else { 0.0 };
        total += s;
        counted += 1;
    }
    (counted > 0).then(|| total / counted as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dist(xs: &'_ [f64]) -> impl Fn(usize, usize) -> f64 + '_ {
        move |a, b| (xs[a] - xs[b]).abs()
    }

    #[test]
    fn well_separated_clusters_score_high() {
        let xs = [0.0, 0.1, 0.2, 100.0, 100.1, 100.2];
        let labels = [0, 0, 0, 1, 1, 1];
        let s = silhouette_score(6, &labels, line_dist(&xs)).unwrap();
        assert!(s > 0.99, "score {s}");
    }

    #[test]
    fn random_split_scores_low() {
        let xs = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5];
        let labels = [0, 1, 0, 1, 0, 1];
        let s = silhouette_score(6, &labels, line_dist(&xs)).unwrap();
        assert!(s < 0.2, "score {s}");
    }

    #[test]
    fn wrong_assignment_scores_negative() {
        // One point of the right blob labelled into the left cluster.
        let xs = [0.0, 0.1, 100.0, 100.1, 100.2];
        let labels = [0, 0, 1, 1, 0];
        let s = silhouette_score(5, &labels, line_dist(&xs)).unwrap();
        assert!(s < 0.7, "misassignment should depress the score, got {s}");
    }

    #[test]
    fn noise_is_excluded() {
        let xs = [0.0, 0.1, 100.0, 100.1, 50.0];
        let with_noise = silhouette_score(5, &[0, 0, 1, 1, -1], line_dist(&xs)).unwrap();
        let without = silhouette_score(4, &[0, 0, 1, 1], line_dist(&xs[..4])).unwrap();
        assert!((with_noise - without).abs() < 1e-12);
    }

    #[test]
    fn single_cluster_is_none() {
        let xs = [0.0, 1.0, 2.0];
        assert!(silhouette_score(3, &[0, 0, 0], line_dist(&xs)).is_none());
        assert!(silhouette_score(3, &[-1, -1, -1], line_dist(&xs)).is_none());
    }

    #[test]
    fn singletons_score_zero() {
        let xs = [0.0, 100.0];
        let s = silhouette_score(2, &[0, 1], line_dist(&xs)).unwrap();
        assert_eq!(s, 0.0);
    }

    #[test]
    #[should_panic(expected = "one label per object")]
    fn length_mismatch_panics() {
        silhouette_score(3, &[0, 1], |_, _| 0.0);
    }
}
