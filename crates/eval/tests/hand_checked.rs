//! Hand-computed worked examples for every evaluation metric: small inputs
//! whose exact values were derived on paper, so a regression here means the
//! metric itself changed, not a corpus or a tolerance.

use db_eval::{
    adjusted_rand_index, normalized_mutual_information, rand_index, silhouette_score,
    ConfusionMatrix,
};

const TOL: f64 = 1e-12;

#[test]
fn ari_and_rand_five_point_worked_example() {
    // a = {0,1,2 | 3,4}, b = {0,1 | 2,3,4}.
    // Contingency: n(a0,b0)=2, n(a0,b1)=1, n(a1,b1)=2.
    // Σ C(nij,2) = 1 + 0 + 1 = 2;  Σ C(ai,2) = 3 + 1 = 4;  Σ C(bj,2) = 4.
    // total pairs C(5,2) = 10; expected = 4·4/10 = 1.6; max = 4.
    // ARI = (2 − 1.6)/(4 − 1.6) = 1/6.
    // Rand: together-both 2, apart-both 10 − 4 − 4 + 2 = 4 → 6/10.
    let a = [0, 0, 0, 1, 1];
    let b = [0, 0, 1, 1, 1];
    assert!((adjusted_rand_index(&a, &b) - 1.0 / 6.0).abs() < TOL);
    assert!((rand_index(&a, &b) - 0.6).abs() < TOL);
    // Symmetry.
    assert!((adjusted_rand_index(&b, &a) - 1.0 / 6.0).abs() < TOL);
}

#[test]
fn ari_treats_noise_as_its_own_cluster() {
    // a = {0,1 | noise 2}, b = {0,1,2}: noise is a singleton cluster.
    // Σ C(nij,2) = C(2,2) = 1; Σ C(ai,2) = 1; Σ C(bj,2) = C(3,2) = 3;
    // total = 3; expected = 1·3/3 = 1; max = 2 → ARI = (1−1)/(2−1) = 0.
    // Rand: together-both 1, apart-both 3 − 1 − 3 + 1 = 0 → 1/3.
    let a = [0, 0, -1];
    let b = [0, 0, 0];
    assert!(adjusted_rand_index(&a, &b).abs() < TOL);
    assert!((rand_index(&a, &b) - 1.0 / 3.0).abs() < TOL);
    // Agreeing on the noise restores a perfect score.
    assert!((adjusted_rand_index(&a, &a) - 1.0).abs() < TOL);
}

#[test]
fn ari_degenerate_labelings() {
    // Identical trivial partitions count as perfect agreement...
    assert!((adjusted_rand_index(&[0, 0, 0], &[5, 5, 5]) - 1.0).abs() < TOL);
    assert!((adjusted_rand_index(&[-1, -1, -1], &[-1, -1, -1]) - 1.0).abs() < TOL);
    assert!((adjusted_rand_index(&[0, 1, 2], &[2, 0, 1]) - 1.0).abs() < TOL);
    // ...while all-in-one vs. all-singletons carries zero information.
    assert!(adjusted_rand_index(&[0, 0, 0], &[0, 1, 2]).abs() < TOL);
    assert!(adjusted_rand_index(&[-1, -1, -1], &[0, 1, 2]).abs() < TOL);
    // Fewer than two objects: trivially perfect.
    assert!((adjusted_rand_index(&[0], &[1]) - 1.0).abs() < TOL);
    assert!((rand_index(&[0], &[1]) - 1.0).abs() < TOL);
}

#[test]
fn nmi_worked_examples() {
    // Identical partitions (up to renaming) → 1.
    assert!((normalized_mutual_information(&[0, 0, 1, 1], &[7, 7, 3, 3]) - 1.0).abs() < TOL);
    // Independent partitions: every cell nij = 1 on a 2×2 table with
    // uniform marginals → I(A;B) = 0 → NMI = 0.
    assert!(normalized_mutual_information(&[0, 0, 1, 1], &[0, 1, 0, 1]).abs() < TOL);
}

#[test]
fn silhouette_four_point_worked_example() {
    // Points 0, 1 | 5, 6 on a line.
    // s(0): a = 1, b = (5+6)/2 = 5.5 → 4.5/5.5 = 9/11.
    // s(1): a = 1, b = (4+5)/2 = 4.5 → 3.5/4.5 = 7/9.   (mirror for 5, 6)
    // mean = (9/11 + 7/9)/2 = 79/99.
    let xs: [f64; 4] = [0.0, 1.0, 5.0, 6.0];
    let labels = [0, 0, 1, 1];
    let s = silhouette_score(4, &labels, |a, b| (xs[a] - xs[b]).abs()).unwrap();
    assert!((s - 79.0 / 99.0).abs() < TOL, "got {s}, want 79/99");
}

#[test]
fn silhouette_singleton_cluster_scores_zero() {
    // Points 0, 1 | 10 — the singleton cluster contributes s = 0 by the
    // standard convention.
    // s(0): a = 1, b = 10 → 9/10.   s(1): a = 1, b = 9 → 8/9.   s(10) = 0.
    // mean = (9/10 + 8/9 + 0)/3 = 161/270.
    let xs: [f64; 3] = [0.0, 1.0, 10.0];
    let labels = [0, 0, 1];
    let s = silhouette_score(3, &labels, |a, b| (xs[a] - xs[b]).abs()).unwrap();
    assert!((s - 161.0 / 270.0).abs() < TOL, "got {s}, want 161/270");
}

#[test]
fn silhouette_degenerate_labelings_are_undefined() {
    let xs: [f64; 3] = [0.0, 1.0, 2.0];
    let d = |a: usize, b: usize| xs[a] - xs[b];
    // A single cluster has no "nearest other cluster".
    assert_eq!(silhouette_score(3, &[0, 0, 0], |a, b| d(a, b).abs()), None);
    // All-noise labelings have no clusters at all.
    assert_eq!(silhouette_score(3, &[-1, -1, -1], |a, b| d(a, b).abs()), None);
    // Noise plus one cluster is still a single cluster.
    assert_eq!(silhouette_score(3, &[0, 0, -1], |a, b| d(a, b).abs()), None);
}

#[test]
fn confusion_matrix_worked_example() {
    // reference  = {2 | 3,4 | noise 5},  validated = {2,3,4 swapped ids}.
    // reference: [0,0,0,1,1,-1], validated: [1,1,0,0,0,-1]:
    //   ref cluster 0 = {0,1,2}: two in validated 1, one in validated 0;
    //   ref cluster 1 = {3,4}: both in validated 0; noise matches noise.
    let reference = [0, 0, 0, 1, 1, -1];
    let validated = [1, 1, 0, 0, 0, -1];
    let mut m = ConfusionMatrix::from_labels(&reference, &validated);
    assert_eq!(m.n_rows(), 3); // validated: 0, 1, noise
    assert_eq!(m.n_cols(), 3); // reference: 0, 1, noise
    assert_eq!(m.total(), 6);
    // Before reordering (rows in label order 0, 1, noise):
    assert_eq!(m.at(0, 0), 1); // validated 0 ∩ reference 0
    assert_eq!(m.at(0, 1), 2); // validated 0 ∩ reference 1
    assert_eq!(m.at(1, 0), 2); // validated 1 ∩ reference 0
    assert_eq!(m.at(2, 2), 1); // noise ∩ noise
    m.reorder_rows_greedy();
    // Greedy puts validated 1 (2 hits) on reference-0's diagonal, then
    // validated 0 (2 hits) on reference-1's. 4 of the 5 clustered objects
    // land on the diagonal.
    assert_eq!(m.row_labels(), &[1, 0, -1]);
    assert!((m.diagonal_fraction() - 0.8).abs() < TOL);
}

#[test]
fn confusion_matrix_degenerate_labelings() {
    // Perfect agreement, single cluster.
    let mut m = ConfusionMatrix::from_labels(&[0, 0, 0], &[0, 0, 0]);
    m.reorder_rows_greedy();
    assert!((m.diagonal_fraction() - 1.0).abs() < TOL);
    // All noise on both sides: no cluster columns → vacuously perfect.
    let m = ConfusionMatrix::from_labels(&[-1, -1], &[-1, -1]);
    assert!((m.diagonal_fraction() - 1.0).abs() < TOL);
    // Everything clustered vs. everything noise: nothing on the diagonal.
    let mut m = ConfusionMatrix::from_labels(&[0, 0, 0], &[-1, -1, -1]);
    m.reorder_rows_greedy();
    assert!(m.diagonal_fraction().abs() < TOL);
}
