//! Generic agglomerative hierarchical clustering with Lance–Williams
//! distance updates (single / complete / average linkage).
//!
//! O(n²) memory, O(n³) worst-case time — intended for the compressed
//! object sets of the Data Bubbles pipelines (k ≲ a few thousand), where
//! the paper notes an O(k²) algorithm "is acceptable" because k is small.

use db_spatial::Dataset;

use crate::dendrogram::{Dendrogram, Merge};

/// The linkage criterion: how the distance between merged clusters is
/// derived from the distances of the parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum distance between members ("single link", the method of
    /// Fig. 2 of the Data Bubbles paper).
    Single,
    /// Maximum distance between members.
    Complete,
    /// Size-weighted average distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (heights are the Euclidean
    /// merge costs; inputs are treated as Euclidean distances and squared
    /// internally for the Lance–Williams update).
    Ward,
}

/// Agglomerative clustering of a dataset under the Euclidean metric.
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn agglomerative(ds: &Dataset, linkage: Linkage) -> Dendrogram {
    agglomerative_from_fn(ds.len(), linkage, |a, b| db_spatial::euclidean(ds.point(a), ds.point(b)))
}

/// Agglomerative clustering over an arbitrary symmetric distance function —
/// this is what lets classical hierarchical clustering run directly on Data
/// Bubbles with the bubble distance of Definition 6.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn agglomerative_from_fn(
    n: usize,
    linkage: Linkage,
    dist: impl Fn(usize, usize) -> f64,
) -> Dendrogram {
    assert!(n >= 1, "agglomerative clustering requires at least one object");
    if n == 1 {
        return Dendrogram::new(1, vec![]);
    }
    // Full working-distance matrix (upper triangle mirrored for
    // simplicity). Ward's Lance–Williams recurrence operates on squared
    // distances.
    let squared = linkage == Linkage::Ward;
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let v = dist(i, j);
            let v = if squared { v * v } else { v };
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    let mut active: Vec<bool> = vec![true; n];
    let mut sizes: Vec<f64> = vec![1.0; n];
    // Dendrogram node currently representing row i.
    let mut node_of: Vec<usize> = (0..n).collect();
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);

    for _ in 0..(n - 1) {
        // Global closest active pair.
        let mut best = (usize::MAX, usize::MAX, f64::INFINITY);
        for i in 0..n {
            if !active[i] {
                continue;
            }
            for j in (i + 1)..n {
                if active[j] && d[i * n + j] < best.2 {
                    best = (i, j, d[i * n + j]);
                }
            }
        }
        let (i, j, h) = best;
        debug_assert!(i < n && j < n);
        // Lance–Williams update into row i; deactivate row j.
        for k in 0..n {
            if !active[k] || k == i || k == j {
                continue;
            }
            let dik = d[i * n + k];
            let djk = d[j * n + k];
            let new = match linkage {
                Linkage::Single => dik.min(djk),
                Linkage::Complete => dik.max(djk),
                Linkage::Average => (sizes[i] * dik + sizes[j] * djk) / (sizes[i] + sizes[j]),
                Linkage::Ward => {
                    let (ni, nj, nk) = (sizes[i], sizes[j], sizes[k]);
                    ((ni + nk) * dik + (nj + nk) * djk - nk * d[i * n + j]) / (ni + nj + nk)
                }
            };
            d[i * n + k] = new;
            d[k * n + i] = new;
        }
        active[j] = false;
        sizes[i] += sizes[j];
        let new_node = n + merges.len();
        // db-audit: allow(no-naked-sqrt) -- flush site: merge heights are
        // computed in squared space and converted once when reported.
        let height = if squared { h.max(0.0).sqrt() } else { h };
        merges.push(Merge { a: node_of[i], b: node_of[j], dist: height });
        node_of[i] = new_node;
    }
    // Lance–Williams with these linkages is reducible, so heights are
    // non-decreasing up to floating point jitter; sort defensively by
    // stable keys to satisfy the dendrogram invariant exactly.
    fixup_monotone(&mut merges);
    Dendrogram::new(n, merges)
}

/// Clamps tiny floating-point decreases in merge heights (reducible
/// linkages guarantee monotonicity mathematically).
fn fixup_monotone(merges: &mut [Merge]) {
    for i in 1..merges.len() {
        if merges[i].dist < merges[i - 1].dist {
            debug_assert!(
                merges[i - 1].dist - merges[i].dist < 1e-6,
                "non-trivial monotonicity violation"
            );
            merges[i].dist = merges[i - 1].dist;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slink::slink;

    fn line() -> Dataset {
        Dataset::from_rows(1, &[&[0.0], &[1.0], &[3.0], &[10.0]]).unwrap()
    }

    #[test]
    fn single_link_matches_slink() {
        let ds = line();
        let a = agglomerative(&ds, Linkage::Single);
        let s = slink(&ds);
        let ha: Vec<f64> = a.merges().iter().map(|m| m.dist).collect();
        let hs: Vec<f64> = s.merges().iter().map(|m| m.dist).collect();
        assert_eq!(ha, hs);
        // Cuts agree as partitions.
        for k in 1..=4 {
            let ca = a.cut(k);
            let cs = s.cut(k);
            for i in 0..4 {
                for j in 0..4 {
                    assert_eq!(ca[i] == ca[j], cs[i] == cs[j], "cut {k} disagrees at {i},{j}");
                }
            }
        }
    }

    #[test]
    fn single_link_matches_slink_on_grid() {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..30 {
            ds.push(&[((i * 7) % 13) as f64, ((i * 5) % 11) as f64]).unwrap();
        }
        let a = agglomerative(&ds, Linkage::Single);
        let s = slink(&ds);
        let mut ha: Vec<f64> = a.merges().iter().map(|m| m.dist).collect();
        let mut hs: Vec<f64> = s.merges().iter().map(|m| m.dist).collect();
        ha.sort_by(f64::total_cmp);
        hs.sort_by(f64::total_cmp);
        for (x, y) in ha.iter().zip(&hs) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn complete_linkage_heights() {
        // Clusters {0,1} and {2,3} at distance 1 internally; complete-link
        // merges the pairs at 1.0 then the two pairs at max distance 11.
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[10.0], &[11.0]]).unwrap();
        let d = agglomerative(&ds, Linkage::Complete);
        let h: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        assert_eq!(h, vec![1.0, 1.0, 11.0]);
    }

    #[test]
    fn average_linkage_heights() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[10.0], &[11.0]]).unwrap();
        let d = agglomerative(&ds, Linkage::Average);
        let h: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        // Pairs at 1.0 each; between pairs: mean of {10, 11, 9, 10} = 10.
        assert_eq!(h, vec![1.0, 1.0, 10.0]);
    }

    #[test]
    fn ward_merges_tight_pairs_first() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[10.0], &[11.0]]).unwrap();
        let d = agglomerative(&ds, Linkage::Ward);
        let h: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        // First two merges at Euclidean cost 1; the final merge cost is
        // sqrt of the Ward increase for {0,1} ∪ {10,11}:
        // d²({0,1},{10,11}) via LW = ((2+1)·d²+… ) — hand-checked: 200/2.
        assert_eq!(h[0], 1.0);
        assert_eq!(h[1], 1.0);
        assert!(h[2] > 9.0, "Ward top merge too cheap: {}", h[2]);
        // Cutting into 2 recovers the pairs.
        let cut = d.cut(2);
        assert_eq!(cut[0], cut[1]);
        assert_eq!(cut[2], cut[3]);
        assert_ne!(cut[0], cut[2]);
    }

    #[test]
    fn ward_recovers_blobs_where_single_link_chains() {
        // A chain of stepping stones between two blobs defeats single link
        // but not Ward.
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..10 {
            ds.push(&[(i % 3) as f64 * 0.2, (i / 3) as f64 * 0.2]).unwrap();
        }
        for i in 0..10 {
            ds.push(&[20.0 + (i % 3) as f64 * 0.2, (i / 3) as f64 * 0.2]).unwrap();
        }
        // Stepping stones.
        for i in 1..10 {
            ds.push(&[i as f64 * 2.0, 10.0]).unwrap();
        }
        let ward = agglomerative(&ds, Linkage::Ward).cut(3);
        // The two blobs end up in different clusters.
        assert!(ward[..10].iter().all(|&l| l == ward[0]));
        assert!(ward[10..20].iter().all(|&l| l == ward[10]));
        assert_ne!(ward[0], ward[10]);
    }

    #[test]
    fn from_fn_supports_custom_distances() {
        // A distance that reverses proximity: objects with distant indices
        // are "close".
        let d =
            agglomerative_from_fn(4, Linkage::Single, |a, b| 10.0 - (a as f64 - b as f64).abs());
        // Closest pair: (0, 3) with distance 7.
        assert_eq!(d.merges()[0].dist, 7.0);
    }

    #[test]
    fn singleton() {
        let ds = Dataset::from_rows(1, &[&[1.0]]).unwrap();
        let d = agglomerative(&ds, Linkage::Single);
        assert_eq!(d.n_leaves(), 1);
    }
}
