//! The merge tree produced by agglomerative clustering.

/// One agglomeration step: clusters `a` and `b` merge at height `dist`.
///
/// Node numbering is scipy-style: leaves are `0..n`, the cluster created by
/// `merges[i]` is node `n + i`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First merged node.
    pub a: usize,
    /// Second merged node.
    pub b: usize,
    /// Merge height (linkage distance).
    pub dist: f64,
}

/// A dendrogram over `n` leaves: `n − 1` merges sorted by non-decreasing
/// height.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Creates a dendrogram, validating the merge sequence.
    ///
    /// # Panics
    ///
    /// Panics if the number of merges is not `n − 1` (for `n ≥ 1`), if a
    /// merge references an unborn or already-consumed node, or if heights
    /// decrease.
    pub fn new(n: usize, merges: Vec<Merge>) -> Self {
        assert!(n >= 1, "dendrogram needs at least one leaf");
        assert_eq!(merges.len(), n - 1, "a dendrogram over {n} leaves has {} merges", n - 1);
        let mut consumed = vec![false; 2 * n - 1];
        for (i, m) in merges.iter().enumerate() {
            let born = n + i;
            assert!(m.a < born && m.b < born, "merge {i} references unborn node");
            assert!(m.a != m.b, "merge {i} merges a node with itself");
            assert!(!consumed[m.a] && !consumed[m.b], "merge {i} reuses a consumed node");
            consumed[m.a] = true;
            consumed[m.b] = true;
            if i > 0 {
                assert!(
                    m.dist >= merges[i - 1].dist - 1e-9,
                    "merge heights must be non-decreasing"
                );
            }
        }
        Self { n, merges }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n
    }

    /// The merges in height order.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the dendrogram into exactly `k` clusters (undoing the last
    /// `k − 1` merges). Returns one label in `0..k` per leaf.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > n`.
    pub fn cut(&self, k: usize) -> Vec<i32> {
        assert!(k >= 1 && k <= self.n, "cannot cut {} leaves into {k} clusters", self.n);
        self.cut_after(self.n - k)
    }

    /// Cuts at a height: clusters are the components after applying **all**
    /// merges with `dist <= height` — not just the leading run of them.
    /// [`Dendrogram::new`] allows heights to *decrease* by up to its
    /// `1e-9` tolerance, so a qualifying merge can follow a non-qualifying
    /// one; a prefix scan (`take_while`) would silently drop it.
    ///
    /// NaN-hardened in the `!(d <= cut)` style of DBSCAN extraction: a
    /// merge qualifies only when `dist <= height` is *affirmatively* true,
    /// so a NaN height (or a NaN merge distance) applies no merge — every
    /// leaf stays its own cluster, never a half-applied prefix.
    pub fn cut_at_distance(&self, height: f64) -> Vec<i32> {
        // `m.dist <= height` is false for NaN on either side, which is the
        // safe (do-not-merge) side; do not rewrite as `!(m.dist > height)`,
        // which would treat NaN as qualifying.
        self.cut_where(|m| m.dist <= height)
    }

    /// Labels after applying the first `applied` merges.
    fn cut_after(&self, applied: usize) -> Vec<i32> {
        let mut take = applied;
        self.cut_where(move |_| {
            let apply = take > 0;
            take = take.saturating_sub(1);
            apply
        })
    }

    /// Labels after applying exactly the merges selected by `apply`
    /// (called once per merge, in merge order). A merge that references
    /// the cluster node of an unapplied merge simply does not inherit that
    /// merge's members — components are whatever the applied merges
    /// connect.
    fn cut_where(&self, mut apply: impl FnMut(&Merge) -> bool) -> Vec<i32> {
        // Union-find over all nodes 0..2n−1 (unapplied cluster nodes stay
        // isolated roots that no leaf maps to).
        let mut parent: Vec<usize> = (0..(2 * self.n).saturating_sub(1)).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (i, m) in self.merges.iter().enumerate() {
            if !apply(m) {
                continue;
            }
            let node = self.n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Assign dense labels by root, in leaf order.
        let mut labels = vec![-1i32; self.n];
        let mut next = 0i32;
        let mut root_label = std::collections::HashMap::new();
        for (leaf, label) in labels.iter_mut().enumerate() {
            let r = find(&mut parent, leaf);
            let l = *root_label.entry(r).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *label = l;
        }
        labels
    }

    /// Expands the dendrogram to weighted leaves: leaf `i` of the original
    /// dendrogram represents `weights[i]` original objects; the result maps
    /// any cut of `self` onto the expanded object space, where
    /// `members[i]` lists the original object ids of leaf `i`.
    ///
    /// This is the paper's §5 remark applied to dendrograms: like repeating
    /// a reachability value `n` times, each representative's label is
    /// shared by all objects classified to it.
    ///
    /// # Panics
    ///
    /// Panics if `members.len() != n_leaves()`.
    pub fn expand_cut(&self, leaf_labels: &[i32], members: &[Vec<usize>]) -> Vec<i32> {
        assert_eq!(leaf_labels.len(), self.n, "one label per leaf required");
        assert_eq!(members.len(), self.n, "one member list per leaf required");
        let total: usize = members.iter().map(Vec::len).sum();
        let mut out = vec![-1i32; total];
        for (leaf, ids) in members.iter().enumerate() {
            for &id in ids {
                assert!(id < total, "member id {id} out of range");
                out[id] = leaf_labels[leaf];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Leaves 0,1 merge at 1.0; leaves 2,3 at 1.5; the two pairs at 5.0.
    fn two_pair_dendrogram() -> Dendrogram {
        Dendrogram::new(
            4,
            vec![
                Merge { a: 0, b: 1, dist: 1.0 },
                Merge { a: 2, b: 3, dist: 1.5 },
                Merge { a: 4, b: 5, dist: 5.0 },
            ],
        )
    }

    #[test]
    fn cut_into_k_clusters() {
        let d = two_pair_dendrogram();
        assert_eq!(d.cut(1), vec![0, 0, 0, 0]);
        let two = d.cut(2);
        assert_eq!(two[0], two[1]);
        assert_eq!(two[2], two[3]);
        assert_ne!(two[0], two[2]);
        assert_eq!(d.cut(4), vec![0, 1, 2, 3]);
    }

    #[test]
    fn cut_at_distance_matches_heights() {
        let d = two_pair_dendrogram();
        assert_eq!(d.cut_at_distance(0.5), vec![0, 1, 2, 3]);
        let at2 = d.cut_at_distance(2.0);
        assert_eq!(at2[0], at2[1]);
        assert_ne!(at2[0], at2[2]);
        assert_eq!(d.cut_at_distance(10.0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn singleton_dendrogram() {
        let d = Dendrogram::new(1, vec![]);
        assert_eq!(d.cut(1), vec![0]);
        assert_eq!(d.n_leaves(), 1);
    }

    #[test]
    #[should_panic(expected = "has 3 merges")]
    fn wrong_merge_count_panics() {
        Dendrogram::new(4, vec![Merge { a: 0, b: 1, dist: 1.0 }]);
    }

    #[test]
    #[should_panic(expected = "unborn node")]
    fn unborn_node_panics() {
        Dendrogram::new(2, vec![Merge { a: 0, b: 5, dist: 1.0 }]);
    }

    #[test]
    #[should_panic(expected = "reuses a consumed node")]
    fn reused_node_panics() {
        Dendrogram::new(3, vec![Merge { a: 0, b: 1, dist: 1.0 }, Merge { a: 0, b: 2, dist: 2.0 }]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_heights_panic() {
        Dendrogram::new(3, vec![Merge { a: 0, b: 1, dist: 2.0 }, Merge { a: 2, b: 3, dist: 1.0 }]);
    }

    #[test]
    fn cut_at_distance_counts_all_qualifying_merges_when_non_monotone() {
        // `new` tolerates heights decreasing by up to 1e-9, so this
        // dendrogram is legal: merge 1 sits *below* merge 0. A cut between
        // the two heights must apply merge 1 (leaves 2,3) even though the
        // preceding merge 0 does not qualify — the old `take_while` prefix
        // scan dropped it.
        let low = 1.0 - 1e-9;
        let d = Dendrogram::new(
            4,
            vec![
                Merge { a: 0, b: 1, dist: 1.0 },
                Merge { a: 2, b: 3, dist: low },
                Merge { a: 4, b: 5, dist: 5.0 },
            ],
        );
        let cut = d.cut_at_distance(1.0 - 5e-10);
        assert_ne!(cut[0], cut[1], "non-qualifying merge 0 was applied");
        assert_eq!(cut[2], cut[3], "qualifying merge 1 was dropped");
        assert_ne!(cut[0], cut[2]);
        // At or above both heights the pairs merge as usual.
        let both = d.cut_at_distance(1.0);
        assert_eq!(both[0], both[1]);
        assert_eq!(both[2], both[3]);
        assert_ne!(both[0], both[2]);
    }

    #[test]
    fn cut_at_nan_height_applies_no_merges() {
        // NaN compares false with everything: no merge qualifies, so every
        // leaf is its own cluster (the documented safe side), rather than
        // an accidental artifact of where a prefix scan stopped.
        let d = two_pair_dendrogram();
        assert_eq!(d.cut_at_distance(f64::NAN), vec![0, 1, 2, 3]);
        // And a NaN merge height never merges: legal only in a 2-leaf
        // dendrogram (the monotonicity assert has no predecessor to check).
        let d = Dendrogram::new(2, vec![Merge { a: 0, b: 1, dist: f64::NAN }]);
        assert_eq!(d.cut_at_distance(10.0), vec![0, 1]);
        assert_eq!(d.cut_at_distance(f64::INFINITY), vec![0, 1]);
    }

    #[test]
    fn expand_cut_maps_members() {
        let d = two_pair_dendrogram();
        let labels = d.cut(2); // [0,0,1,1]
        let members = vec![vec![0, 4], vec![1], vec![2, 5], vec![3]];
        let expanded = d.expand_cut(&labels, &members);
        assert_eq!(expanded, vec![0, 0, 1, 1, 0, 1]);
    }
}
