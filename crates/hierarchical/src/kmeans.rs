//! k-means (MacQueen 1967, Lloyd iterations) — the partitioning baseline
//! (reference [8] of the Data Bubbles paper), including the
//! sufficient-statistics variant of §2: a compressed item `(n, LS, ss)` is
//! treated as the point `LS/n` with weight `n`.

use db_birch::Cf;
use db_spatial::Dataset;

/// Parameters for [`kmeans`] / [`weighted_kmeans`].
#[derive(Debug, Clone)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Seed for the k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self { k: 8, max_iters: 100, seed: 0 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Final cluster centers (`k` rows).
    pub centers: Dataset,
    /// Cluster index per input row.
    pub assignment: Vec<u32>,
    /// Weighted sum of squared distances to the assigned centers.
    pub inertia: f64,
    /// Number of Lloyd iterations performed.
    pub iterations: usize,
}

/// Standard k-means over a dataset (all weights 1).
///
/// ```
/// use db_hierarchical::{kmeans, KMeansParams};
/// use db_spatial::Dataset;
/// let ds = Dataset::from_rows(1, &[&[0.0], &[0.1], &[9.0], &[9.1]]).unwrap();
/// let r = kmeans(&ds, &KMeansParams { k: 2, max_iters: 20, seed: 1 });
/// assert_eq!(r.assignment[0], r.assignment[1]);
/// assert_ne!(r.assignment[0], r.assignment[2]);
/// ```
///
/// # Panics
///
/// Panics if `k == 0` or `k > ds.len()`.
pub fn kmeans(ds: &Dataset, params: &KMeansParams) -> KMeansResult {
    let weights = vec![1.0; ds.len()];
    weighted_kmeans(ds, &weights, params)
}

/// Weighted k-means: row `i` counts as `weights[i]` identical points.
/// With rows `LS/n` and weights `n` this is exactly the paper's §2 recipe
/// for clustering compressed data items.
///
/// # Panics
///
/// Panics if `k == 0`, `k > ds.len()`, lengths differ, or any weight is
/// not positive and finite.
pub fn weighted_kmeans(ds: &Dataset, weights: &[f64], params: &KMeansParams) -> KMeansResult {
    assert!(params.k >= 1, "k must be positive");
    assert!(params.k <= ds.len(), "k={} exceeds number of rows {}", params.k, ds.len());
    assert_eq!(ds.len(), weights.len(), "one weight per row required");
    assert!(
        weights.iter().all(|&w| w > 0.0 && w.is_finite()),
        "weights must be positive and finite"
    );
    let k = params.k;
    let dim = ds.dim();

    let mut centers = kmeanspp_init(ds, weights, k, params.seed);
    let mut assignment = vec![0u32; ds.len()];
    let mut iterations = 0usize;

    for _ in 0..params.max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in ds.iter().enumerate() {
            let mut best = (0u32, f64::INFINITY);
            for (c, center) in centers.chunks_exact(dim).enumerate() {
                let d = db_spatial::euclidean_sq(p, center);
                if d < best.1 {
                    best = (c as u32, d);
                }
            }
            if assignment[i] != best.0 {
                assignment[i] = best.0;
                changed = true;
            }
        }
        // Update step: weighted means.
        let mut sums = vec![0.0f64; k * dim];
        let mut mass = vec![0.0f64; k];
        for (i, p) in ds.iter().enumerate() {
            let c = assignment[i] as usize;
            mass[c] += weights[i];
            for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(p) {
                *s += weights[i] * x;
            }
        }
        for c in 0..k {
            if mass[c] > 0.0 {
                for (ctr, s) in
                    centers[c * dim..(c + 1) * dim].iter_mut().zip(&sums[c * dim..(c + 1) * dim])
                {
                    *ctr = s / mass[c];
                }
            }
            // Empty clusters keep their previous center (rare with ++ init).
        }
        if !changed {
            break;
        }
    }

    let mut inertia = 0.0;
    for (i, p) in ds.iter().enumerate() {
        let c = assignment[i] as usize;
        inertia += weights[i] * db_spatial::euclidean_sq(p, &centers[c * dim..(c + 1) * dim]);
    }
    KMeansResult {
        centers: Dataset::from_flat(dim, centers).expect("centers well-formed"),
        assignment,
        inertia,
        iterations,
    }
}

/// Runs weighted k-means over clustering features, treating each CF as its
/// centroid with weight `n` (paper §2).
///
/// # Panics
///
/// Panics if `cfs` is empty or contains an empty CF.
pub fn weighted_kmeans_cfs(cfs: &[Cf], params: &KMeansParams) -> KMeansResult {
    assert!(!cfs.is_empty(), "need at least one CF");
    let dim = cfs[0].dim();
    let mut ds = Dataset::with_capacity(dim, cfs.len()).expect("dim > 0");
    let mut weights = Vec::with_capacity(cfs.len());
    for cf in cfs {
        ds.push(&cf.centroid()).expect("dim matches");
        weights.push(cf.n() as f64);
    }
    weighted_kmeans(&ds, &weights, params)
}

/// Deterministic k-means++ initialization (weighted D² sampling).
fn kmeanspp_init(ds: &Dataset, weights: &[f64], k: usize, seed: u64) -> Vec<f64> {
    let dim = ds.dim();
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next_u64 = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut uniform = move || (next_u64() >> 11) as f64 / (1u64 << 53) as f64;

    let mut centers = Vec::with_capacity(k * dim);
    // First center: weighted-uniform choice.
    let total_w: f64 = weights.iter().sum();
    let mut target = uniform() * total_w;
    let mut first = 0;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            first = i;
            break;
        }
    }
    centers.extend_from_slice(ds.point(first));

    let mut d2: Vec<f64> = ds
        .iter()
        .zip(weights)
        .map(|(p, &w)| w * db_spatial::euclidean_sq(p, ds.point(first)))
        .collect();
    for _ in 1..k {
        let sum: f64 = d2.iter().sum();
        let chosen = if sum > 0.0 {
            let mut target = uniform() * sum;
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
            }
            idx
        } else {
            // All mass at existing centers: pick any remaining row.
            (0..ds.len()).find(|&i| d2[i] > 0.0).unwrap_or(0)
        };
        let new_center = ds.point(chosen).to_vec();
        for ((d, p), &w) in d2.iter_mut().zip(ds.iter()).zip(weights) {
            *d = (*d).min(w * db_spatial::euclidean_sq(p, &new_center));
        }
        centers.extend_from_slice(&new_center);
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for c in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
            for i in 0..20 {
                ds.push(&[c[0] + (i % 5) as f64 * 0.1, c[1] + (i / 5) as f64 * 0.1]).unwrap();
            }
        }
        ds
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let ds = three_blobs();
        let r = kmeans(&ds, &KMeansParams { k: 3, max_iters: 50, seed: 1 });
        // Each ground-truth blob maps to a single k-means cluster.
        for blob in 0..3 {
            let first = r.assignment[blob * 20];
            assert!(
                r.assignment[blob * 20..(blob + 1) * 20].iter().all(|&a| a == first),
                "blob {blob} split"
            );
        }
        // And the three clusters are distinct.
        let mut labels: Vec<u32> = (0..3).map(|b| r.assignment[b * 20]).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 3);
        assert!(r.inertia < 20.0);
        assert!(r.iterations >= 1);
    }

    #[test]
    fn k_equals_n_zero_inertia() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[5.0], &[9.0]]).unwrap();
        let r = kmeans(&ds, &KMeansParams { k: 3, max_iters: 20, seed: 3 });
        assert!(r.inertia < 1e-18);
    }

    #[test]
    fn weighted_kmeans_respects_mass() {
        // One heavy row and two light rows far away: with k=1 the center
        // must sit close to the heavy row.
        let ds = Dataset::from_rows(1, &[&[0.0], &[10.0], &[12.0]]).unwrap();
        let r = weighted_kmeans(
            &ds,
            &[100.0, 1.0, 1.0],
            &KMeansParams { k: 1, max_iters: 10, seed: 0 },
        );
        let c = r.centers.point(0)[0];
        assert!(c < 0.5, "center {c} pulled away from heavy mass");
    }

    #[test]
    fn cfs_variant_approximates_full_kmeans() {
        let ds = three_blobs();
        // Compress each blob into one CF.
        let mut cfs = Vec::new();
        for blob in 0..3 {
            let mut cf = Cf::empty(2);
            for i in 0..20 {
                cf.add_point(ds.point(blob * 20 + i));
            }
            cfs.push(cf);
        }
        let r = weighted_kmeans_cfs(&cfs, &KMeansParams { k: 3, max_iters: 20, seed: 5 });
        // Every CF gets its own cluster and centers sit at blob centroids.
        let mut assigned: Vec<u32> = r.assignment.clone();
        assigned.sort_unstable();
        assigned.dedup();
        assert_eq!(assigned.len(), 3);
        let full = kmeans(&ds, &KMeansParams { k: 3, max_iters: 50, seed: 5 });
        // Compare center sets (order-free) coarsely.
        for c in 0..3 {
            let cc = r.centers.point(c);
            let best = (0..3)
                .map(|f| db_spatial::euclidean(cc, full.centers.point(f)))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.5, "center {c} off by {best}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = three_blobs();
        let p = KMeansParams { k: 3, max_iters: 50, seed: 9 };
        let a = kmeans(&ds, &p);
        let b = kmeans(&ds, &p);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    #[should_panic(expected = "exceeds number of rows")]
    fn k_too_large_panics() {
        let ds = Dataset::from_rows(1, &[&[0.0]]).unwrap();
        kmeans(&ds, &KMeansParams { k: 2, max_iters: 5, seed: 0 });
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn bad_weights_panic() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0]]).unwrap();
        weighted_kmeans(&ds, &[1.0, 0.0], &KMeansParams { k: 1, max_iters: 5, seed: 0 });
    }
}
