//! Classical clustering baselines referenced by the Data Bubbles paper:
//!
//! * [`slink`] — Sibson's optimally efficient O(n²) single-link algorithm
//!   (reference \[9\] of the paper);
//! * [`agglomerative`] — generic agglomerative clustering with
//!   single/complete/average linkage (Lance–Williams updates), used to
//!   cross-check SLINK and as the "classical hierarchical clustering
//!   algorithm" Data Bubbles also supports (paper §6: "When applying a
//!   classical hierarchical clustering algorithm such as the single link
//!   method to Data Bubbles…");
//! * [`Dendrogram`] — the merge tree with `cut`/`cut_at_distance`
//!   extraction and weighted expansion (the paper's §5 remark: "we can
//!   apply an analogous technique to expand a dendrogram");
//! * [`kmeans`] / [`weighted_kmeans`] — the k-means baseline (reference
//!   \[8\]) including the sufficient-statistics variant of §2 that treats a
//!   CF `(n, LS, ss)` as the point `LS/n` with weight `n`.

#![warn(missing_docs)]

mod agglo;
mod dendrogram;
mod kmeans;
mod slink;

pub use agglo::{agglomerative, agglomerative_from_fn, Linkage};
pub use dendrogram::{Dendrogram, Merge};
pub use kmeans::{kmeans, weighted_kmeans, weighted_kmeans_cfs, KMeansParams, KMeansResult};
pub use slink::{slink, slink_from_fn};
