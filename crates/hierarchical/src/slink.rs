//! SLINK (Sibson 1973): the optimally efficient O(n²) time, O(n) memory
//! single-link algorithm — reference [9] of the Data Bubbles paper.

use db_spatial::Dataset;

use crate::dendrogram::{Dendrogram, Merge};

/// Runs SLINK over a dataset with the Euclidean metric, returning the
/// single-link dendrogram.
///
/// ```
/// use db_hierarchical::slink;
/// use db_spatial::Dataset;
/// let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[10.0]]).unwrap();
/// let dendrogram = slink(&ds);
/// let cut = dendrogram.cut(2);
/// assert_eq!(cut[0], cut[1]);
/// assert_ne!(cut[0], cut[2]);
/// ```
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn slink(ds: &Dataset) -> Dendrogram {
    slink_from_fn(ds.len(), |a, b| db_spatial::euclidean(ds.point(a), ds.point(b)))
}

/// SLINK over an arbitrary symmetric distance function.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn slink_from_fn(n: usize, dist: impl Fn(usize, usize) -> f64) -> Dendrogram {
    assert!(n >= 1, "SLINK requires at least one object");
    // Pointer representation: pi[i] = the "merge partner", lambda[i] = the
    // height at which object i merges into pi[i].
    let mut pi = vec![0usize; n];
    let mut lambda = vec![f64::INFINITY; n];
    let mut m = vec![0.0f64; n];

    for i in 0..n {
        pi[i] = i;
        lambda[i] = f64::INFINITY;
        for (j, mj) in m.iter_mut().enumerate().take(i) {
            *mj = dist(j, i);
        }
        for j in 0..i {
            if lambda[j] >= m[j] {
                m[pi[j]] = m[pi[j]].min(lambda[j]);
                lambda[j] = m[j];
                pi[j] = i;
            } else {
                m[pi[j]] = m[pi[j]].min(m[j]);
            }
        }
        for j in 0..i {
            if lambda[j] >= lambda[pi[j]] {
                pi[j] = i;
            }
        }
    }

    pointer_to_dendrogram(&pi, &lambda)
}

/// Converts the pointer representation into a merge list: process objects
/// by ascending `lambda`, each merging the current cluster of `i` with the
/// current cluster of `pi[i]`.
fn pointer_to_dendrogram(pi: &[usize], lambda: &[f64]) -> Dendrogram {
    let n = pi.len();
    if n == 1 {
        return Dendrogram::new(1, vec![]);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| lambda[a].total_cmp(&lambda[b]).then(a.cmp(&b)));

    // Union-find tracking the dendrogram node currently representing the
    // set of each object.
    let mut parent: Vec<usize> = (0..n).collect();
    let mut node_of: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    let mut merges = Vec::with_capacity(n - 1);
    for &i in order.iter().take(n - 1) {
        let h = lambda[i];
        debug_assert!(h.is_finite(), "only the last object has infinite lambda");
        let ra = find(&mut parent, i);
        let rb = find(&mut parent, pi[i]);
        debug_assert_ne!(ra, rb, "pointer representation must merge distinct sets");
        let new_node = n + merges.len();
        merges.push(Merge { a: node_of[ra], b: node_of[rb], dist: h });
        parent[ra] = rb;
        node_of[rb] = new_node;
    }
    Dendrogram::new(n, merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        Dataset::from_rows(1, &[&[0.0], &[1.0], &[3.0], &[10.0]]).unwrap()
    }

    #[test]
    fn merge_heights_are_the_mst_edges() {
        // Single link merge heights equal the edges of the minimum
        // spanning tree: 1 (0-1), 2 (1-2), 7 (2-3).
        let d = slink(&line());
        let heights: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        assert_eq!(heights, vec![1.0, 2.0, 7.0]);
    }

    #[test]
    fn cut_recovers_spatial_groups() {
        let d = slink(&line());
        let two = d.cut(2);
        assert_eq!(two[0], two[1]);
        assert_eq!(two[1], two[2]);
        assert_ne!(two[0], two[3]);
    }

    #[test]
    fn singleton_input() {
        let ds = Dataset::from_rows(2, &[&[1.0, 2.0]]).unwrap();
        let d = slink(&ds);
        assert_eq!(d.n_leaves(), 1);
        assert_eq!(d.cut(1), vec![0]);
    }

    #[test]
    fn duplicate_points_merge_at_zero() {
        let ds = Dataset::from_rows(1, &[&[5.0], &[5.0], &[9.0]]).unwrap();
        let d = slink(&ds);
        assert_eq!(d.merges()[0].dist, 0.0);
        assert_eq!(d.merges()[1].dist, 4.0);
    }

    #[test]
    fn matches_bruteforce_single_link_heights() {
        // Random-ish 2-d points; compare SLINK merge heights with a naive
        // O(n³) single-link implementation.
        let pts: Vec<[f64; 2]> = (0..40)
            .map(|i| {
                let x = ((i * 37 + 11) % 101) as f64 / 10.0;
                let y = ((i * 53 + 29) % 97) as f64 / 10.0;
                [x, y]
            })
            .collect();
        let mut ds = Dataset::new(2).unwrap();
        for p in &pts {
            ds.push(p).unwrap();
        }
        let d = slink(&ds);
        let mut slink_heights: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();

        // Naive single link: repeatedly merge the two closest clusters.
        let n = pts.len();
        let mut clusters: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        let mut naive_heights = Vec::new();
        while clusters.len() > 1 {
            let mut best = (0usize, 1usize, f64::INFINITY);
            for a in 0..clusters.len() {
                for b in (a + 1)..clusters.len() {
                    let mut dmin = f64::INFINITY;
                    for &i in &clusters[a] {
                        for &j in &clusters[b] {
                            dmin = dmin.min(db_spatial::euclidean(&pts[i], &pts[j]));
                        }
                    }
                    if dmin < best.2 {
                        best = (a, b, dmin);
                    }
                }
            }
            naive_heights.push(best.2);
            let merged = clusters.swap_remove(best.1);
            clusters[best.0].extend(merged);
        }
        naive_heights.sort_by(f64::total_cmp);
        slink_heights.sort_by(f64::total_cmp);
        for (a, b) in slink_heights.iter().zip(&naive_heights) {
            assert!((a - b).abs() < 1e-9, "heights differ: {a} vs {b}");
        }
    }
}
