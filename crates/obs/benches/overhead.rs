//! Benchmark guard: instrumentation cost per operation.
//!
//! Run with metrics on (the default) to see the real cost, and with
//! metrics off to *verify* the no-op claim:
//!
//! ```text
//! cargo bench -p db-obs --bench overhead
//! cargo bench -p db-obs --bench overhead --no-default-features
//! ```
//!
//! With the feature off the guard asserts that a counter increment and a
//! span enter/drop each cost under 2 ns — i.e. they compiled away to (at
//! most) the callsite's cached-handle load.
//!
//! A second guard runs a realistic chunked workload (simulating a
//! pipeline phase that does ~20k arithmetic ops per instrumented chunk)
//! and asserts the instrumented/bare ratio stays under 1.05 whenever
//! per-event recording is not active: with metrics compiled off, and
//! with tracing compiled in but runtime-disabled (`DB_TRACE` unset).

use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 10_000_000;

/// Median-of-5 ns/op of `f` over `ITERS` iterations.
fn measure(f: impl Fn(u64)) -> f64 {
    let mut runs = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..ITERS {
            f(black_box(i));
        }
        runs.push(start.elapsed().as_secs_f64() * 1e9 / ITERS as f64);
    }
    runs.sort_by(f64::total_cmp);
    runs[2]
}

fn main() {
    let baseline = measure(|i| {
        black_box(i.wrapping_mul(31));
    });
    let counter = measure(|i| {
        db_obs::counter!("bench.overhead_counter").add(i & 1);
        black_box(());
    });
    let histogram = measure(|i| {
        db_obs::histogram!("bench.overhead_histogram").record((i & 0xff) as f64);
        black_box(());
    });
    let span = measure(|_| {
        let _span = db_obs::span!("bench.overhead_span");
        black_box(());
    });

    let mode = if cfg!(feature = "metrics") { "metrics ON" } else { "metrics OFF" };
    println!("overhead ({mode}), ns/op, median of 5 x {ITERS} iters:");
    println!("  baseline (mul)     {baseline:8.3}");
    println!("  counter.add        {:8.3} (+{:.3})", counter, counter - baseline);
    println!("  histogram.record   {:8.3} (+{:.3})", histogram, histogram - baseline);
    println!("  span enter/drop    {:8.3} (+{:.3})", span, span - baseline);

    if !cfg!(feature = "metrics") {
        // The guard: with metrics off the macros must be free. 2 ns is a
        // generous ceiling for "nothing but the OnceLock handle load".
        for (name, cost) in
            [("counter", counter - baseline), ("histogram", histogram - baseline), ("span", span)]
        {
            assert!(cost < 2.0, "no-op {name} costs {cost:.3} ns/op — instrumentation is not free");
        }
        println!("guard passed: all no-op instrumentation under 2 ns/op");
    }

    workload_guard();
}

/// One "chunk" of pipeline-shaped work: ~20k dependent arithmetic ops,
/// the coarsest granularity at which the real pipelines wrap spans
/// around work (a worker's chunk of points, not a single distance).
#[inline(never)]
fn chunk(seed: u64) -> u64 {
    let mut acc = seed | 1;
    for i in 0..20_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// Median-of-7 seconds for `chunks` chunk evaluations.
fn measure_workload(chunks: u64, f: impl Fn(u64) -> u64) -> f64 {
    let mut runs = Vec::new();
    for rep in 0..7 {
        let start = Instant::now();
        let mut acc = rep;
        for c in 0..chunks {
            acc = f(black_box(acc ^ c));
        }
        black_box(acc);
        runs.push(start.elapsed().as_secs_f64());
    }
    runs.sort_by(f64::total_cmp);
    runs[3]
}

/// Asserts the instrumented workload is within 5% of the bare one when no
/// per-event recording is active. With tracing compiled in, recording
/// stays runtime-disabled here (the bench never sets `DB_TRACE` or calls
/// `set_enabled(true)`), so the only cost on top of plain metrics is one
/// predictable branch per span.
fn workload_guard() {
    const CHUNKS: u64 = 2_000;

    // Warm the callsite caches outside the timed region.
    {
        let _s = db_obs::span!("bench.workload_chunk");
        db_obs::counter!("bench.workload_items").add(0);
        db_obs::trace_instant!("bench.workload_mark", "chunk", 0u64);
    }

    let bare = measure_workload(CHUNKS, chunk);
    let instrumented = measure_workload(CHUNKS, |seed| {
        let _span = db_obs::span!("bench.workload_chunk");
        db_obs::counter!("bench.workload_items").add(1);
        db_obs::trace_instant!("bench.workload_mark", "chunk", seed & 0xff);
        chunk(seed)
    });
    let ratio = instrumented / bare;

    let tracing_mode = if cfg!(feature = "tracing") {
        "tracing compiled in, runtime-disabled"
    } else if cfg!(feature = "metrics") {
        "tracing compiled out"
    } else {
        "metrics compiled out"
    };
    println!("workload ({tracing_mode}), median of 7 x {CHUNKS} chunks:");
    println!("  bare               {:8.4} s", bare);
    println!("  instrumented       {:8.4} s (ratio {ratio:.4})", instrumented);

    let recording = cfg!(feature = "tracing") && db_obs::trace::enabled();
    if !recording {
        assert!(
            ratio <= 1.05,
            "instrumented/bare ratio {ratio:.4} exceeds 1.05 with recording inactive"
        );
        println!("guard passed: instrumentation overhead {:.2}% <= 5%", (ratio - 1.0) * 100.0);
    }

    supervision_guard(bare);
}

/// Asserts that running the instrumented workload under an armed-but-idle
/// supervisor (no deadline, token never cancelled — the default for every
/// pipeline run without a budget) stays within the same 5% envelope. The
/// per-chunk cost is one `Ticker::tick` — a decrement and, every 64
/// chunks, a relaxed atomic load plus an `Instant::now` — which is the
/// densest check cadence the pipelines use relative to their chunk sizes.
fn supervision_guard(bare: f64) {
    use db_supervise::{Supervisor, Ticker};

    const CHUNKS: u64 = 2_000;

    let sup = Supervisor::unlimited();
    let mut ticker = Ticker::new(&sup, 64);
    // Warm: first tick consults the supervisor immediately.
    assert!(ticker.tick().is_ok());

    let mut runs = Vec::new();
    for rep in 0..7u64 {
        let start = Instant::now();
        let mut acc = rep;
        for c in 0..CHUNKS {
            if ticker.tick().is_err() {
                unreachable!("unlimited supervisor never stops");
            }
            let _span = db_obs::span!("bench.workload_chunk");
            db_obs::counter!("bench.workload_items").add(1);
            acc = chunk(black_box(acc ^ c));
        }
        black_box(acc);
        runs.push(start.elapsed().as_secs_f64());
    }
    runs.sort_by(f64::total_cmp);
    let supervised = runs[3];
    let ratio = supervised / bare;

    println!("workload under idle supervision, median of 7 x {CHUNKS} chunks:");
    println!("  supervised         {supervised:8.4} s (ratio {ratio:.4} vs bare)");
    assert!(ratio <= 1.05, "supervised/bare ratio {ratio:.4} exceeds 1.05 with no budget set");
    println!("guard passed: idle supervision overhead {:.2}% <= 5%", (ratio - 1.0) * 100.0);
}
