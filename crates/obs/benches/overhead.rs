//! Benchmark guard: instrumentation cost per operation.
//!
//! Run with metrics on (the default) to see the real cost, and with
//! metrics off to *verify* the no-op claim:
//!
//! ```text
//! cargo bench -p db-obs --bench overhead
//! cargo bench -p db-obs --bench overhead --no-default-features
//! ```
//!
//! With the feature off the guard asserts that a counter increment and a
//! span enter/drop each cost under 2 ns — i.e. they compiled away to (at
//! most) the callsite's cached-handle load.

use std::hint::black_box;
use std::time::Instant;

const ITERS: u64 = 10_000_000;

/// Median-of-5 ns/op of `f` over `ITERS` iterations.
fn measure(f: impl Fn(u64)) -> f64 {
    let mut runs = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..ITERS {
            f(black_box(i));
        }
        runs.push(start.elapsed().as_secs_f64() * 1e9 / ITERS as f64);
    }
    runs.sort_by(f64::total_cmp);
    runs[2]
}

fn main() {
    let baseline = measure(|i| {
        black_box(i.wrapping_mul(31));
    });
    let counter = measure(|i| {
        db_obs::counter!("bench.overhead_counter").add(i & 1);
        black_box(());
    });
    let histogram = measure(|i| {
        db_obs::histogram!("bench.overhead_histogram").record((i & 0xff) as f64);
        black_box(());
    });
    let span = measure(|_| {
        let _span = db_obs::span!("bench.overhead_span");
        black_box(());
    });

    let mode = if cfg!(feature = "metrics") { "metrics ON" } else { "metrics OFF" };
    println!("overhead ({mode}), ns/op, median of 5 x {ITERS} iters:");
    println!("  baseline (mul)     {baseline:8.3}");
    println!("  counter.add        {:8.3} (+{:.3})", counter, counter - baseline);
    println!("  histogram.record   {:8.3} (+{:.3})", histogram, histogram - baseline);
    println!("  span enter/drop    {:8.3} (+{:.3})", span, span - baseline);

    if !cfg!(feature = "metrics") {
        // The guard: with metrics off the macros must be free. 2 ns is a
        // generous ceiling for "nothing but the OnceLock handle load".
        for (name, cost) in
            [("counter", counter - baseline), ("histogram", histogram - baseline), ("span", span)]
        {
            assert!(cost < 2.0, "no-op {name} costs {cost:.3} ns/op — instrumentation is not free");
        }
        println!("guard passed: all no-op instrumentation under 2 ns/op");
    }
}
