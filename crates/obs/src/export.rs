//! Exporters over a [`Snapshot`]: a human-readable table and JSON lines.

use crate::snapshot::Snapshot;
use crate::{Json, ToJson};

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Renders the snapshot as an aligned, human-readable table. Sections with
/// no entries are omitted; an entirely empty snapshot renders a single
/// placeholder line.
pub fn render_table(s: &Snapshot) -> String {
    let mut out = String::new();
    if !s.spans.is_empty() {
        out.push_str("spans:\n");
        let w = s.spans.iter().map(|sp| sp.name.len()).max().unwrap_or(0);
        for sp in &s.spans {
            out.push_str(&format!(
                "  {:<w$}  count {:>9}  total {:>10}  self {:>10}  min {:>10}  max {:>10}\n",
                sp.name,
                fmt_count(sp.count),
                fmt_ns(sp.total_ns),
                fmt_ns(sp.self_ns),
                fmt_ns(sp.min_ns),
                fmt_ns(sp.max_ns),
            ));
        }
    }
    if !s.counters.is_empty() {
        out.push_str("counters:\n");
        let w = s.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.counters {
            out.push_str(&format!("  {name:<w$}  {:>15}\n", fmt_count(*v)));
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges:\n");
        let w = s.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.gauges {
            out.push_str(&format!("  {name:<w$}  {v:>15}\n"));
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &s.histograms {
            let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "  {}  count {}  sum {:.3}  mean {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}\n",
                h.name,
                fmt_count(h.count),
                h.sum,
                mean,
                h.p50(),
                h.p95(),
                h.p99(),
            ));
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let label = if i < h.bounds.len() {
                    format!("<= {}", h.bounds[i])
                } else {
                    format!("> {}", h.bounds.last().unwrap())
                };
                out.push_str(&format!("    {label:<12} {}\n", fmt_count(c)));
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Renders the snapshot as JSON lines: one object per metric, each with a
/// `kind` field (`counter` / `gauge` / `histogram` / `span`), suitable for
/// appending to a `.metrics.jsonl` file.
pub fn json_lines(s: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let obj = Json::Obj(vec![
            ("kind".into(), "counter".to_json()),
            ("name".into(), name.to_json()),
            ("value".into(), v.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for (name, v) in &s.gauges {
        let obj = Json::Obj(vec![
            ("kind".into(), "gauge".to_json()),
            ("name".into(), name.to_json()),
            ("value".into(), v.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for h in &s.histograms {
        let obj = Json::Obj(vec![
            ("kind".into(), "histogram".to_json()),
            ("name".into(), h.name.to_json()),
            ("count".into(), h.count.to_json()),
            ("sum".into(), h.sum.to_json()),
            ("bounds".into(), h.bounds.to_json()),
            ("buckets".into(), h.buckets.to_json()),
            // NaN (empty histogram) serializes as null by Json::Num's rule.
            ("p50".into(), h.p50().to_json()),
            ("p95".into(), h.p95().to_json()),
            ("p99".into(), h.p99().to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for sp in &s.spans {
        let obj = Json::Obj(vec![
            ("kind".into(), "span".to_json()),
            ("name".into(), sp.name.to_json()),
            ("count".into(), sp.count.to_json()),
            ("total_ns".into(), sp.total_ns.to_json()),
            ("self_ns".into(), sp.self_ns.to_json()),
            ("min_ns".into(), sp.min_ns.to_json()),
            ("max_ns".into(), sp.max_ns.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    out
}

/// Mangles a metric name into the Prometheus identifier charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if i == 0 && c.is_ascii_digit() {
            // A leading digit is legal after position 0; keep it behind a
            // `_` prefix rather than losing it.
            out.push('_');
            out.push(c);
            continue;
        }
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || c.is_ascii_digit();
        out.push(if ok { c } else { '_' });
    }
    out
}

/// Formats an f64 the way Prometheus expects sample values and `le`
/// labels (finite shortest-round-trip, `+Inf`/`-Inf`, `NaN`).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in the Prometheus text exposition format
/// (version 0.0.4), served by `db-obsd` on `GET /metrics`.
///
/// * counters and gauges map directly;
/// * histograms emit the conventional `_bucket{le="..."}` cumulative
///   series (with the implicit `+Inf` bucket), `_sum` and `_count`;
/// * spans emit a `<name>_duration_seconds` summary (`_count`/`_sum`)
///   plus a `<name>_self_seconds_total` counter for exclusive time.
pub fn prometheus_text(s: &Snapshot) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    for (name, v) in &s.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter\n{n} {v}");
    }
    for (name, v) in &s.gauges {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge\n{n} {v}");
    }
    for h in &s.histograms {
        let n = prom_name(&h.name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            cum += c;
            let le = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            let _ = writeln!(out, "{n}_bucket{{le=\"{}\"}} {cum}", prom_f64(le));
        }
        let _ = writeln!(out, "{n}_sum {}", prom_f64(h.sum));
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    for sp in &s.spans {
        let n = prom_name(&sp.name);
        let _ = writeln!(
            out,
            "# TYPE {n}_duration_seconds summary\n\
             {n}_duration_seconds_count {}\n\
             {n}_duration_seconds_sum {}",
            sp.count,
            prom_f64(sp.total_ns as f64 / 1e9),
        );
        let _ = writeln!(
            out,
            "# TYPE {n}_self_seconds_total counter\n{n}_self_seconds_total {}",
            prom_f64(sp.self_ns as f64 / 1e9),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, SpanSnapshot};

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("optics.distance_calls".into(), 1234567)],
            gauges: vec![("birch.height".into(), 3)],
            histograms: vec![HistogramSnapshot {
                name: "optics.neighborhood_size".into(),
                bounds: vec![4.0, 16.0],
                buckets: vec![2, 1, 0],
                count: 3,
                sum: 21.0,
            }],
            spans: vec![SpanSnapshot {
                name: "pipeline.clustering".into(),
                count: 1,
                total_ns: 2_500_000,
                self_ns: 2_000_000,
                min_ns: 2_500_000,
                max_ns: 2_500_000,
            }],
        }
    }

    #[test]
    fn table_contains_all_sections() {
        let t = render_table(&sample());
        assert!(t.contains("optics.distance_calls"));
        assert!(t.contains("1_234_567"));
        assert!(t.contains("birch.height"));
        assert!(t.contains("pipeline.clustering"));
        assert!(t.contains("2.50ms"));
        assert!(t.contains("<= 4"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(render_table(&Snapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let lines = json_lines(&sample());
        assert_eq!(lines.lines().count(), 4);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines.contains(r#""kind":"counter""#));
        assert!(lines.contains(r#""kind":"span""#));
        assert!(lines.contains(r#""total_ns":2500000"#));
    }

    #[test]
    fn table_shows_percentiles() {
        let t = render_table(&sample());
        // Rank 1.5 of 3 sits 1.5/2 into bucket (0, 4] -> 3.0.
        assert!(t.contains("p50 3.000"), "{t}");
        assert!(t.contains("p99"), "{t}");
    }

    #[test]
    fn json_lines_carry_percentiles() {
        let lines = json_lines(&sample());
        let hist = lines.lines().find(|l| l.contains(r#""kind":"histogram""#)).unwrap();
        assert!(hist.contains(r#""p50":3"#), "{hist}");
        assert!(hist.contains(r#""p95":"#), "{hist}");
    }

    #[test]
    fn prometheus_exposition_format() {
        let text = prometheus_text(&sample());
        // Counter.
        assert!(
            text.contains("# TYPE optics_distance_calls counter\noptics_distance_calls 1234567")
        );
        // Gauge.
        assert!(text.contains("# TYPE birch_height gauge\nbirch_height 3"));
        // Histogram: cumulative buckets including +Inf, then sum/count.
        assert!(text.contains("optics_neighborhood_size_bucket{le=\"4\"} 2"));
        assert!(text.contains("optics_neighborhood_size_bucket{le=\"16\"} 3"));
        assert!(text.contains("optics_neighborhood_size_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("optics_neighborhood_size_sum 21"));
        assert!(text.contains("optics_neighborhood_size_count 3"));
        // Span summary + self-time counter.
        assert!(text.contains("pipeline_clustering_duration_seconds_count 1"));
        assert!(text.contains("pipeline_clustering_duration_seconds_sum 0.0025"));
        assert!(text.contains("pipeline_clustering_self_seconds_total 0.002"));
        // Every sample line is `name{labels?} value`; names stay in the
        // legal charset after mangling.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.split_once(' ').expect("name SP value");
            let bare = name.split('{').next().unwrap();
            assert!(
                bare.chars().enumerate().all(|(i, c)| c.is_ascii_alphabetic()
                    || c == '_'
                    || c == ':'
                    || (i > 0 && c.is_ascii_digit())),
                "bad metric name {bare:?}"
            );
            assert!(
                value == "NaN"
                    || value == "+Inf"
                    || value == "-Inf"
                    || value.parse::<f64>().is_ok(),
                "bad sample value {value:?}"
            );
        }
    }

    #[test]
    fn prom_name_mangling() {
        assert_eq!(prom_name("optics.distance_calls"), "optics_distance_calls");
        assert_eq!(prom_name("a-b c"), "a_b_c");
        assert_eq!(prom_name("4xx"), "_4xx");
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210s");
    }
}
