//! Exporters over a [`Snapshot`]: a human-readable table and JSON lines.

use crate::snapshot::Snapshot;
use crate::{Json, ToJson};

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Renders the snapshot as an aligned, human-readable table. Sections with
/// no entries are omitted; an entirely empty snapshot renders a single
/// placeholder line.
pub fn render_table(s: &Snapshot) -> String {
    let mut out = String::new();
    if !s.spans.is_empty() {
        out.push_str("spans:\n");
        let w = s.spans.iter().map(|sp| sp.name.len()).max().unwrap_or(0);
        for sp in &s.spans {
            out.push_str(&format!(
                "  {:<w$}  count {:>9}  total {:>10}  self {:>10}  min {:>10}  max {:>10}\n",
                sp.name,
                fmt_count(sp.count),
                fmt_ns(sp.total_ns),
                fmt_ns(sp.self_ns),
                fmt_ns(sp.min_ns),
                fmt_ns(sp.max_ns),
            ));
        }
    }
    if !s.counters.is_empty() {
        out.push_str("counters:\n");
        let w = s.counters.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.counters {
            out.push_str(&format!("  {name:<w$}  {:>15}\n", fmt_count(*v)));
        }
    }
    if !s.gauges.is_empty() {
        out.push_str("gauges:\n");
        let w = s.gauges.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, v) in &s.gauges {
            out.push_str(&format!("  {name:<w$}  {v:>15}\n"));
        }
    }
    if !s.histograms.is_empty() {
        out.push_str("histograms:\n");
        for h in &s.histograms {
            let mean = if h.count > 0 { h.sum / h.count as f64 } else { 0.0 };
            out.push_str(&format!(
                "  {}  count {}  sum {:.3}  mean {:.3}\n",
                h.name,
                fmt_count(h.count),
                h.sum,
                mean
            ));
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let label = if i < h.bounds.len() {
                    format!("<= {}", h.bounds[i])
                } else {
                    format!("> {}", h.bounds.last().unwrap())
                };
                out.push_str(&format!("    {label:<12} {}\n", fmt_count(c)));
            }
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

/// Renders the snapshot as JSON lines: one object per metric, each with a
/// `kind` field (`counter` / `gauge` / `histogram` / `span`), suitable for
/// appending to a `.metrics.jsonl` file.
pub fn json_lines(s: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &s.counters {
        let obj = Json::Obj(vec![
            ("kind".into(), "counter".to_json()),
            ("name".into(), name.to_json()),
            ("value".into(), v.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for (name, v) in &s.gauges {
        let obj = Json::Obj(vec![
            ("kind".into(), "gauge".to_json()),
            ("name".into(), name.to_json()),
            ("value".into(), v.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for h in &s.histograms {
        let obj = Json::Obj(vec![
            ("kind".into(), "histogram".to_json()),
            ("name".into(), h.name.to_json()),
            ("count".into(), h.count.to_json()),
            ("sum".into(), h.sum.to_json()),
            ("bounds".into(), h.bounds.to_json()),
            ("buckets".into(), h.buckets.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    for sp in &s.spans {
        let obj = Json::Obj(vec![
            ("kind".into(), "span".to_json()),
            ("name".into(), sp.name.to_json()),
            ("count".into(), sp.count.to_json()),
            ("total_ns".into(), sp.total_ns.to_json()),
            ("self_ns".into(), sp.self_ns.to_json()),
            ("min_ns".into(), sp.min_ns.to_json()),
            ("max_ns".into(), sp.max_ns.to_json()),
        ]);
        out.push_str(&obj.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramSnapshot, SpanSnapshot};

    fn sample() -> Snapshot {
        Snapshot {
            counters: vec![("optics.distance_calls".into(), 1234567)],
            gauges: vec![("birch.height".into(), 3)],
            histograms: vec![HistogramSnapshot {
                name: "optics.neighborhood_size".into(),
                bounds: vec![4.0, 16.0],
                buckets: vec![2, 1, 0],
                count: 3,
                sum: 21.0,
            }],
            spans: vec![SpanSnapshot {
                name: "pipeline.clustering".into(),
                count: 1,
                total_ns: 2_500_000,
                self_ns: 2_000_000,
                min_ns: 2_500_000,
                max_ns: 2_500_000,
            }],
        }
    }

    #[test]
    fn table_contains_all_sections() {
        let t = render_table(&sample());
        assert!(t.contains("optics.distance_calls"));
        assert!(t.contains("1_234_567"));
        assert!(t.contains("birch.height"));
        assert!(t.contains("pipeline.clustering"));
        assert!(t.contains("2.50ms"));
        assert!(t.contains("<= 4"));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert_eq!(render_table(&Snapshot::default()), "(no metrics recorded)\n");
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let lines = json_lines(&sample());
        assert_eq!(lines.lines().count(), 4);
        for line in lines.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines.contains(r#""kind":"counter""#));
        assert!(lines.contains(r#""kind":"span""#));
        assert!(lines.contains(r#""total_ns":2500000"#));
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(17), "17ns");
        assert_eq!(fmt_ns(1_500), "1.5us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.210s");
    }
}
