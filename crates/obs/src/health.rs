//! Process-wide health state for the last supervised pipeline run.
//!
//! `run_pipeline_supervised` reports here after every attempt ladder:
//! [`report_ok`] for a clean run, [`report_degraded`] when one or more
//! degradation rungs were taken, [`report_failing`] when even the coarsest
//! configuration failed. `db-obsd`'s `/healthz` endpoint renders the
//! state (and answers `503` while failing), so an operator watching the
//! endpoint sees budget pressure without scraping metrics.
//!
//! The state is a single process-global slot: last report wins. Before
//! any report the status is [`Status::Unknown`], which `/healthz` treats
//! as healthy (the process is up, no run has failed).

use std::sync::Mutex;

/// Coarse health of the last supervised run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// No supervised run has reported yet.
    Unknown,
    /// Last run completed without degradation.
    Ok,
    /// Last run completed, but only after degrading the configuration.
    Degraded,
    /// Last run failed even after the full degradation ladder.
    Failing,
}

impl Status {
    /// Lowercase wire name, as rendered by `/healthz`.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Unknown => "unknown",
            Status::Ok => "ok",
            Status::Degraded => "degraded",
            Status::Failing => "failing",
        }
    }
}

/// A health report: status plus an optional human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Coarse status of the last run.
    pub status: Status,
    /// Detail line (degradation rungs taken, or the failure message).
    pub detail: String,
}

static STATE: Mutex<Option<Report>> = Mutex::new(None);

fn store(report: Report) {
    // Poisoning is impossible in practice (no panic between lock and
    // drop), but recover anyway: health must never take the process down.
    match STATE.lock() {
        Ok(mut slot) => *slot = Some(report),
        Err(poisoned) => *poisoned.into_inner() = Some(report),
    }
}

/// Records a clean run.
pub fn report_ok() {
    store(Report { status: Status::Ok, detail: String::new() });
}

/// Records a run that succeeded only after degradation.
pub fn report_degraded(detail: impl Into<String>) {
    store(Report { status: Status::Degraded, detail: detail.into() });
}

/// Records a run that failed outright.
pub fn report_failing(detail: impl Into<String>) {
    store(Report { status: Status::Failing, detail: detail.into() });
}

/// Returns the current report ([`Status::Unknown`] before any report).
pub fn current() -> Report {
    let slot = match STATE.lock() {
        Ok(slot) => slot,
        Err(poisoned) => poisoned.into_inner(),
    };
    slot.clone().unwrap_or(Report { status: Status::Unknown, detail: String::new() })
}

/// Clears the state back to [`Status::Unknown`] (tests, experiment reset).
pub fn reset() {
    match STATE.lock() {
        Ok(mut slot) => *slot = None,
        Err(poisoned) => *poisoned.into_inner() = None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    // The slot is process-global; serialize the tests that touch it.
    static SERIAL: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn starts_unknown_and_tracks_last_report() {
        let _guard = lock();
        reset();
        assert_eq!(current(), Report { status: Status::Unknown, detail: String::new() });
        report_ok();
        assert_eq!(current().status, Status::Ok);
        report_degraded("halved k to 8");
        let r = current();
        assert_eq!(r.status, Status::Degraded);
        assert_eq!(r.detail, "halved k to 8");
        report_failing("deadline exceeded during clustering after 0.051s");
        assert_eq!(current().status, Status::Failing);
        reset();
        assert_eq!(current().status, Status::Unknown);
    }

    #[test]
    fn status_wire_names() {
        assert_eq!(Status::Unknown.as_str(), "unknown");
        assert_eq!(Status::Ok.as_str(), "ok");
        assert_eq!(Status::Degraded.as_str(), "degraded");
        assert_eq!(Status::Failing.as_str(), "failing");
    }
}
