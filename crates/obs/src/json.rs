//! A minimal JSON document model, serializer, and parser.
//!
//! The bench harness writes result tables as JSON; the metrics exporter
//! writes JSON lines; `bench-diff` reads benchmark reports back and the
//! trace tests round-trip exporter output. None of that needs schemas or
//! zero-copy — just a value tree, a correct serializer, and a small
//! recursive-descent parser — so this stays dependency-free.

use std::fmt;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Why [`Json::parse`] rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What was wrong.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Recursive-descent JSON parser over the [`Json`] model. Strict RFC 8259
/// except that it accepts (and preserves) i64-representable integers as
/// [`Json::Int`]; nesting depth is capped at 128.
struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

const MAX_DEPTH: usize = 128;

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonParseError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than 128");
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected ',' or ']'"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    fields.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return self.err("expected ',' or '}'"),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        match text.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Num(x)),
            _ => self.err(format!("invalid number '{text}'")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return self.err("invalid low surrogate");
                                    }
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                                } else {
                                    return self.err("lone high surrogate");
                                }
                            } else {
                                hi
                            };
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid \\u escape"),
                            }
                            // hex4 advanced past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("unescaped control character"),
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one multi-byte UTF-8 scalar. `pos` always
                    // sits on a char boundary (ASCII is consumed above,
                    // multi-byte scalars whole here), so slicing the
                    // original &str is valid and O(1).
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        let Some(hex) = self.bytes.get(self.pos..end) else {
            return self.err("truncated \\u escape");
        };
        let Ok(hex) = std::str::from_utf8(hex) else {
            return self.err("invalid \\u escape");
        };
        match u32::from_str_radix(hex, 16) {
            Ok(v) => {
                self.pos = end;
                Ok(v)
            }
            Err(_) => self.err("invalid \\u escape"),
        }
    }
}

impl Json {
    /// Parses a JSON document (one top-level value with optional
    /// surrounding whitespace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with a byte offset on malformed input,
    /// trailing garbage, non-finite numbers, or nesting beyond 128 levels.
    pub fn parse(input: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser { input, bytes: input.as_bytes(), pos: 0 };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return p.err("trailing characters after document");
        }
        Ok(v)
    }

    /// Looks up a field of an object (`None` for non-objects and missing
    /// keys; first match wins on duplicate keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Num` node.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value of a `Str` node.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr` node.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the [`Json`] document model — the workspace's stand-in
/// for a serde `Serialize` derive. Implement it by hand or with
/// [`impl_to_json!`](crate::impl_to_json!).
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                i64::try_from(*self).map_or(Json::Num(*self as f64), Json::Int)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Row {
///     n: usize,
///     secs: f64,
/// }
/// db_obs::impl_to_json!(Row { n, secs });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field))),*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_compact() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name".into(), Json::Str("t".into())),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"t"}"#);
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn to_json_conversions() {
        assert_eq!(5usize.to_json(), Json::Int(5));
        assert_eq!(u64::MAX.to_json(), Json::Num(u64::MAX as f64));
        assert_eq!(Some(2u32).to_json(), Json::Int(2));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(vec![1u8, 2].to_json().render(), "[1,2]");
    }

    #[test]
    fn impl_to_json_macro() {
        struct Row {
            n: usize,
            secs: f64,
        }
        impl_to_json!(Row { n, secs });
        assert_eq!(Row { n: 3, secs: 0.5 }.to_json().render(), r#"{"n":3,"secs":0.5}"#);
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(Json::parse("0.25").unwrap(), Json::Num(0.25));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(Json::parse(r#""a\"b\\c\nd\tA""#).unwrap(), Json::Str("a\"b\\c\nd\tA".into()));
        // Surrogate pair for U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("\u{1f600}".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse("\"\u{1}\"").is_err());
        assert!(Json::parse(r#""open"#).is_err());
    }

    #[test]
    fn parse_containers_and_accessors() {
        let v = Json::parse(r#"{ "xs": [1, 2.5, "s"], "m": { "k": null } }"#).unwrap();
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[1].as_f64(), Some(2.5));
        assert_eq!(xs[2].as_str(), Some("s"));
        assert_eq!(v.get("m").unwrap().get("k"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "[1]]", "--1", "1e"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "no message for {bad:?}");
        }
        // Depth limit trips rather than overflowing the stack.
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::Str("π/2 — \"quoted\"\n".into())),
            ("xs".into(), Json::Arr(vec![Json::Int(-7), Json::Num(0.125), Json::Bool(false)])),
            ("none".into(), Json::Null),
        ]);
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
        assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v);
    }
}
