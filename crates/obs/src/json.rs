//! A minimal JSON document model and serializer.
//!
//! The bench harness writes result tables as JSON; the metrics exporter
//! writes JSON lines. Neither needs parsing, schemas, or zero-copy — just
//! a value tree and a correct serializer — so this stays dependency-free.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float. Non-finite values serialize as `null` (JSON has no NaN).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serializes compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    escape_into(k, out);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Conversion into the [`Json`] document model — the workspace's stand-in
/// for a serde `Serialize` derive. Implement it by hand or with
/// [`impl_to_json!`](crate::impl_to_json!).
pub trait ToJson {
    /// The value as a JSON tree.
    fn to_json(&self) -> Json;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Num(f64::from(*self))
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                i64::try_from(*self).map_or(Json::Num(*self as f64), Json::Int)
            }
        }
    )*};
}
int_to_json!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        self.as_ref().map_or(Json::Null, ToJson::to_json)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (*self).to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields:
///
/// ```
/// struct Row {
///     n: usize,
///     secs: f64,
/// }
/// db_obs::impl_to_json!(Row { n, secs });
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::ToJson for $ty {
            fn to_json(&self) -> $crate::Json {
                $crate::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::ToJson::to_json(&self.$field))),*
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Int(-3).render(), "-3");
        assert_eq!(Json::Num(1.5).render(), "1.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\\c\nd".into()).render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Str("\u{1}".into()).render(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render_compact() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)])),
            ("name".into(), Json::Str("t".into())),
        ]);
        assert_eq!(v.render(), r#"{"xs":[1,2],"name":"t"}"#);
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn to_json_conversions() {
        assert_eq!(5usize.to_json(), Json::Int(5));
        assert_eq!(u64::MAX.to_json(), Json::Num(u64::MAX as f64));
        assert_eq!(Some(2u32).to_json(), Json::Int(2));
        assert_eq!(None::<u32>.to_json(), Json::Null);
        assert_eq!(vec![1u8, 2].to_json().render(), "[1,2]");
    }

    #[test]
    fn impl_to_json_macro() {
        struct Row {
            n: usize,
            secs: f64,
        }
        impl_to_json!(Row { n, secs });
        assert_eq!(Row { n: 3, secs: 0.5 }.to_json().render(), r#"{"n":3,"secs":0.5}"#);
    }
}
