//! `db-obs` — workspace-wide observability with zero dependencies.
//!
//! Three pillars, all usable from any crate in the workspace:
//!
//! 1. **Metrics** — a lock-light global registry of [`Counter`]s,
//!    [`Gauge`]s, and fixed-bucket [`Histogram`]s, addressed by static
//!    name through the [`counter!`], [`gauge!`], and [`histogram!`]
//!    macros. Each callsite caches its `&'static` handle in a `OnceLock`,
//!    so steady-state cost is one relaxed atomic op.
//! 2. **Spans** — RAII timers created with [`span!`] that nest (self-time
//!    vs total-time via a thread-local stack) and aggregate per name:
//!    count, total, self, min, max.
//! 3. **Logging** — `log_error!` … `log_trace!`, filtered by the `DB_LOG`
//!    environment variable (`DB_LOG=optics=debug`), silent by default.
//!
//! Call [`snapshot()`] for a point-in-time copy of everything, render it
//! with [`render_table`] or [`json_lines`], and [`reset()`] between
//! experiments.
//!
//! # The `metrics` feature
//!
//! With the (default) `metrics` feature **off**, the macros still expand
//! and typecheck identically but resolve to inert zero-sized stubs with
//! `#[inline(always)]` empty bodies; `snapshot()` returns an empty
//! [`Snapshot`]. Instrumented code needs no `cfg` of its own. The logger
//! and the JSON machinery ([`Json`], [`ToJson`]) are always available.
//!
//! ```
//! let _guard = db_obs::span!("doc.example");
//! db_obs::counter!("doc.example_events").add(3);
//! let snap = db_obs::snapshot();
//! #[cfg(feature = "metrics")]
//! assert_eq!(snap.counter("doc.example_events"), Some(3));
//! println!("{}", db_obs::render_table(&snap));
//! ```

mod export;
pub mod health;
mod json;
mod logger;
mod snapshot;
pub mod trace;

#[cfg(feature = "metrics")]
mod registry;
#[cfg(feature = "metrics")]
mod span;

#[cfg(not(feature = "metrics"))]
mod noop;

pub use export::{json_lines, prometheus_text, render_table};
pub use json::{Json, JsonParseError, ToJson};
pub use logger::{log_emit, log_enabled, set_filter_spec, Level};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
pub use trace::{folded_stacks, trace_json, RunId, RunIdGuard, TraceEvent, TraceEventKind};

#[cfg(feature = "metrics")]
pub use registry::{
    counter as registry_counter, gauge as registry_gauge, histogram as registry_histogram, reset,
    snapshot, span_stat as registry_span_stat, Counter, Gauge, Histogram,
};
#[cfg(feature = "metrics")]
pub use span::{SpanGuard, SpanHandle, SpanStat};

#[cfg(not(feature = "metrics"))]
pub use noop::{
    counter as registry_counter, gauge as registry_gauge, histogram as registry_histogram, reset,
    snapshot, span_stat as registry_span_stat, Counter, Gauge, Histogram, SpanGuard, SpanHandle,
    SpanStat,
};

/// Not part of the public API; re-exported for the expansion of the
/// metric macros.
#[doc(hidden)]
pub mod __private {
    pub use std::sync::OnceLock;
}

/// Returns the [`Counter`] named by the string literal, registering it on
/// first use and caching the handle per callsite.
///
/// ```
/// db_obs::counter!("optics.distance_calls").incr();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static __CELL: $crate::__private::OnceLock<&'static $crate::Counter> =
            $crate::__private::OnceLock::new();
        *__CELL.get_or_init(|| $crate::registry_counter($name))
    }};
}

/// Returns the [`Gauge`] named by the string literal.
///
/// ```
/// db_obs::gauge!("birch.tree_height").set(4);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static __CELL: $crate::__private::OnceLock<&'static $crate::Gauge> =
            $crate::__private::OnceLock::new();
        *__CELL.get_or_init(|| $crate::registry_gauge($name))
    }};
}

/// Returns the [`Histogram`] named by the string literal. The second form
/// supplies the bucket upper bounds (first registration of a name wins);
/// the first uses powers-of-four defaults suited to "how many items"
/// distributions.
///
/// ```
/// db_obs::histogram!("optics.neighborhood_size").record(17.0);
/// db_obs::histogram!("custom.latency_ms", [1.0, 10.0, 100.0]).record(3.2);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:literal) => {
        $crate::histogram!($name, [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0])
    };
    ($name:literal, $bounds:expr) => {{
        static __CELL: $crate::__private::OnceLock<&'static $crate::Histogram> =
            $crate::__private::OnceLock::new();
        *__CELL.get_or_init(|| $crate::registry_histogram($name, &$bounds))
    }};
}

/// Opens a named RAII span; timing stops when the returned guard drops.
/// Bind it to a named variable — `let _span = span!("x")`, not `let _` —
/// or the guard drops immediately.
///
/// ```
/// {
///     let _span = db_obs::span!("pipeline.compression");
///     // ... work ...
/// } // recorded here
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        static __CELL: $crate::__private::OnceLock<&'static $crate::SpanStat> =
            $crate::__private::OnceLock::new();
        $crate::SpanGuard::enter(*__CELL.get_or_init(|| $crate::registry_span_stat($name)))
    }};
}

/// Opens a named RAII span *linked to a parent span on another thread*
/// via a [`SpanHandle`] from [`SpanGuard::handle`]: the linked span's
/// total time counts as the parent's child time (so parallel phases
/// report correct self time), and the thread adopts the parent's trace
/// run id for the span's duration.
///
/// ```
/// let mut phase = db_obs::span!("pipeline.compression");
/// let h = phase.handle();
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         let _worker = db_obs::span_linked!("pipeline.compression_chunk", &h);
///         // ... chunk work ...
///     });
/// });
/// ```
#[macro_export]
macro_rules! span_linked {
    ($name:literal, $handle:expr) => {{
        static __CELL: $crate::__private::OnceLock<&'static $crate::SpanStat> =
            $crate::__private::OnceLock::new();
        $crate::SpanGuard::enter_linked(
            *__CELL.get_or_init(|| $crate::registry_span_stat($name)),
            $handle,
        )
    }};
}

/// Records an instant event into the trace ring (a vertical tick in the
/// Chrome-trace timeline), optionally with one named integer argument.
/// Free when tracing is compiled out or runtime-disabled.
///
/// ```
/// db_obs::trace_instant!("pipeline.compressed");
/// db_obs::trace_instant!("pipeline.compressed", "k", 40u64);
/// ```
#[macro_export]
macro_rules! trace_instant {
    ($name:literal) => {
        $crate::trace_instant!($name, "", 0u64)
    };
    ($name:literal, $arg_name:literal, $arg:expr) => {{
        if $crate::trace::enabled() {
            static __IDS: $crate::__private::OnceLock<(u32, u32)> =
                $crate::__private::OnceLock::new();
            let (name_id, arg_name_id) = *__IDS
                .get_or_init(|| ($crate::trace::intern($name), $crate::trace::intern($arg_name)));
            $crate::trace::record_instant(name_id, arg_name_id, $arg as u64);
        }
    }};
}

/// Logs at [`Level::Error`]; filtered by `DB_LOG`, default target
/// `module_path!()`, override with `target: "name"` as first argument.
#[macro_export]
macro_rules! log_error {
    (target: $t:expr, $($arg:tt)+) => {
        if $crate::log_enabled($t, $crate::Level::Error) {
            $crate::log_emit($t, $crate::Level::Error, format_args!($($arg)+));
        }
    };
    ($($arg:tt)+) => { $crate::log_error!(target: module_path!(), $($arg)+) };
}

/// Logs at [`Level::Warn`]; see [`log_error!`] for filtering and targets.
#[macro_export]
macro_rules! log_warn {
    (target: $t:expr, $($arg:tt)+) => {
        if $crate::log_enabled($t, $crate::Level::Warn) {
            $crate::log_emit($t, $crate::Level::Warn, format_args!($($arg)+));
        }
    };
    ($($arg:tt)+) => { $crate::log_warn!(target: module_path!(), $($arg)+) };
}

/// Logs at [`Level::Info`]; see [`log_error!`] for filtering and targets.
#[macro_export]
macro_rules! log_info {
    (target: $t:expr, $($arg:tt)+) => {
        if $crate::log_enabled($t, $crate::Level::Info) {
            $crate::log_emit($t, $crate::Level::Info, format_args!($($arg)+));
        }
    };
    ($($arg:tt)+) => { $crate::log_info!(target: module_path!(), $($arg)+) };
}

/// Logs at [`Level::Debug`]; see [`log_error!`] for filtering and targets.
#[macro_export]
macro_rules! log_debug {
    (target: $t:expr, $($arg:tt)+) => {
        if $crate::log_enabled($t, $crate::Level::Debug) {
            $crate::log_emit($t, $crate::Level::Debug, format_args!($($arg)+));
        }
    };
    ($($arg:tt)+) => { $crate::log_debug!(target: module_path!(), $($arg)+) };
}

/// Logs at [`Level::Trace`]; see [`log_error!`] for filtering and targets.
#[macro_export]
macro_rules! log_trace {
    (target: $t:expr, $($arg:tt)+) => {
        if $crate::log_enabled($t, $crate::Level::Trace) {
            $crate::log_emit($t, $crate::Level::Trace, format_args!($($arg)+));
        }
    };
    ($($arg:tt)+) => { $crate::log_trace!(target: module_path!(), $($arg)+) };
}
