//! An env-filtered structured logger, always compiled (independent of the
//! `metrics` feature) and silent by default.
//!
//! The filter comes from the `DB_LOG` environment variable, read once:
//!
//! ```text
//! DB_LOG=debug                 # everything at debug or coarser
//! DB_LOG=optics=debug          # only the optics target
//! DB_LOG=optics=trace,birch=info
//! ```
//!
//! Targets default to `module_path!()` of the callsite; directive names
//! match a target if they equal its first path segment with any `db_`/`db-`
//! prefix stripped (so `optics` matches `db_optics::algorithm`). The fast
//! path for a *disabled* level is a single relaxed atomic load.

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Log verbosity, coarser to finer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The operation failed.
    Error = 1,
    /// Something surprising that does not fail the operation.
    Warn = 2,
    /// Milestones: phase started, file written.
    Info = 3,
    /// Per-step diagnostics.
    Debug = 4,
    /// Inner-loop firehose.
    Trace = 5,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            "off" | "none" => None,
            _ => None,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

#[derive(Debug, Default)]
struct Filter {
    /// Level for targets not matched by any directive (0 = off).
    default_level: u8,
    /// `(name, level)` directives, e.g. `("optics", 4)`.
    directives: Vec<(String, u8)>,
}

impl Filter {
    fn parse(spec: &str) -> Filter {
        let mut f = Filter::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some((name, level)) => {
                    let level = Level::parse(level).map_or(0, |l| l as u8);
                    f.directives.push((normalize(name), level));
                }
                None => f.default_level = Level::parse(part).map_or(f.default_level, |l| l as u8),
            }
        }
        f
    }

    fn max_level(&self) -> u8 {
        self.directives.iter().map(|&(_, l)| l).chain([self.default_level]).max().unwrap_or(0)
    }

    fn level_for(&self, target: &str) -> u8 {
        let head = normalize(target.split("::").next().unwrap_or(target));
        self.directives
            .iter()
            .rev()
            .find(|(name, _)| *name == head)
            .map_or(self.default_level, |&(_, l)| l)
    }
}

/// Strips a `db_`/`db-` crate prefix and lowercases, so `db_optics`,
/// `db-optics`, and `optics` all name the same target.
fn normalize(name: &str) -> String {
    let name = name.trim().to_ascii_lowercase().replace('-', "_");
    name.strip_prefix("db_").map_or_else(|| name.clone(), str::to_string)
}

/// Fast-path gate: the maximum enabled level across all directives.
static MAX_LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // MAX = "not initialized yet"

static FILTER: OnceLock<Mutex<Filter>> = OnceLock::new();

fn filter() -> &'static Mutex<Filter> {
    FILTER.get_or_init(|| {
        let f = std::env::var("DB_LOG").map(|s| Filter::parse(&s)).unwrap_or_default();
        MAX_LEVEL.store(f.max_level(), Ordering::Relaxed);
        Mutex::new(f)
    })
}

/// Replaces the filter (same syntax as `DB_LOG`). For tests and embedders;
/// normal use just sets the environment variable.
pub fn set_filter_spec(spec: &str) {
    let new = Filter::parse(spec);
    let max = new.max_level();
    // Replace the filter first: filter() may lazily initialize from the
    // env and clobber MAX_LEVEL, so the gate is stored after.
    *filter().lock().unwrap() = new;
    MAX_LEVEL.store(max, Ordering::Relaxed);
}

/// Whether a message for `target` at `level` would be emitted. One relaxed
/// load when the level is globally disabled.
#[inline]
pub fn log_enabled(target: &str, level: Level) -> bool {
    let max = MAX_LEVEL.load(Ordering::Relaxed);
    if max != u8::MAX && level as u8 > max {
        return false;
    }
    level as u8 <= filter().lock().unwrap().level_for(target)
}

/// Emits one line to stderr. Called by the `log_*!` macros after
/// [`log_enabled`] passes; not intended for direct use.
pub fn log_emit(target: &str, level: Level, args: fmt::Arguments<'_>) {
    eprintln!("[{:5} {}] {}", level.label(), target, args);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_parsing() {
        let f = Filter::parse("optics=debug,birch=trace,info");
        assert_eq!(f.default_level, Level::Info as u8);
        assert_eq!(f.level_for("db_optics::algorithm"), Level::Debug as u8);
        assert_eq!(f.level_for("db_birch"), Level::Trace as u8);
        assert_eq!(f.level_for("db_spatial::index"), Level::Info as u8);
        assert_eq!(f.max_level(), Level::Trace as u8);
    }

    #[test]
    fn empty_spec_is_silent() {
        let f = Filter::parse("");
        assert_eq!(f.max_level(), 0);
        assert_eq!(f.level_for("anything"), 0);
    }

    #[test]
    fn dash_and_db_prefix_normalize() {
        let f = Filter::parse("db-optics=warn");
        assert_eq!(f.level_for("optics"), Level::Warn as u8);
        assert_eq!(f.level_for("db_optics::space"), Level::Warn as u8);
    }

    #[test]
    fn bad_level_means_off() {
        let f = Filter::parse("optics=banana");
        assert_eq!(f.level_for("optics"), 0);
    }
}
