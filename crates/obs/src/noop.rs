//! Inert stand-ins compiled when the `metrics` feature is **off**.
//!
//! Every type and function here mirrors the real implementation's public
//! API exactly, so downstream instrumentation compiles unchanged; each
//! method is an inline empty body over a zero-sized type, which the
//! optimizer removes entirely (verified by the `overhead` bench guard).
//!
//! The `span!`/`counter!` macros expand to calls into this module rather
//! than using `#[cfg]` in the macro body: a `cfg` inside a macro would be
//! resolved against the *expanding* crate's features, not `db-obs`'s.

use crate::snapshot::Snapshot;

/// No-op counter (metrics disabled).
#[derive(Debug, Default)]
pub struct Counter;

impl Counter {
    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn incr(&self) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
}

/// No-op gauge (metrics disabled).
#[derive(Debug, Default)]
pub struct Gauge;

impl Gauge {
    /// Does nothing.
    #[inline(always)]
    pub fn set(&self, _v: i64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn add(&self, _delta: i64) {}

    /// Does nothing.
    #[inline(always)]
    pub fn max(&self, _v: i64) {}

    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> i64 {
        0
    }
}

/// No-op histogram (metrics disabled).
#[derive(Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// Does nothing.
    #[inline(always)]
    pub fn record(&self, _v: f64) {}
}

/// No-op span statistics slot (metrics disabled).
#[derive(Debug, Default)]
pub struct SpanStat;

/// No-op cross-thread span handle (metrics disabled).
#[derive(Debug, Clone)]
pub struct SpanHandle;

/// No-op span guard: zero-sized with an empty `Drop`, so creating and
/// dropping it generates no code at all. The `Drop` impl exists only so
/// call sites may `drop(guard)` explicitly in either feature mode.
#[derive(Debug)]
pub struct SpanGuard;

impl SpanGuard {
    /// Returns the zero-sized guard.
    #[inline(always)]
    pub fn enter(_stat: &'static SpanStat) -> Self {
        SpanGuard
    }

    /// Returns the zero-sized guard (metrics disabled).
    #[inline(always)]
    pub fn enter_linked(_stat: &'static SpanStat, _handle: &SpanHandle) -> Self {
        SpanGuard
    }

    /// Returns the zero-sized handle (metrics disabled).
    #[inline(always)]
    pub fn handle(&mut self) -> SpanHandle {
        SpanHandle
    }
}

impl Drop for SpanGuard {
    #[inline(always)]
    fn drop(&mut self) {}
}

/// Returns the shared no-op counter.
#[inline(always)]
pub fn counter(_name: &'static str) -> &'static Counter {
    &Counter
}

/// Returns the shared no-op gauge.
#[inline(always)]
pub fn gauge(_name: &'static str) -> &'static Gauge {
    &Gauge
}

/// Returns the shared no-op histogram.
#[inline(always)]
pub fn histogram(_name: &'static str, _bounds: &[f64]) -> &'static Histogram {
    &Histogram
}

/// Returns the shared no-op span slot.
#[inline(always)]
pub fn span_stat(_name: &'static str) -> &'static SpanStat {
    &SpanStat
}

/// Always empty with metrics disabled.
#[inline]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Does nothing with metrics disabled.
#[inline]
pub fn reset() {}
