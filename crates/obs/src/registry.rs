//! The global metrics registry: counters, gauges, and fixed-bucket
//! histograms registered by `&'static str` name.
//!
//! Lock discipline: the registry `Mutex` is taken only at *registration*
//! (first use of a name) and at *snapshot/reset* time. The hot path — the
//! callsite incrementing a counter — touches a cached `&'static` handle
//! and a single relaxed atomic; macros in the crate root cache the handle
//! in a per-callsite `OnceLock`, so even the name lookup happens once per
//! callsite, not once per increment.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::snapshot::{HistogramSnapshot, Snapshot};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one to the count.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A signed instantaneous value (queue depth, tree height, bytes held).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn max(&self, v: i64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A fixed-bucket histogram over `f64` observations.
///
/// Bucket `i` counts observations `v <= bounds[i]` (cumulative-style
/// boundaries, recorded non-cumulatively); one extra overflow bucket
/// counts `v > bounds.last()`. Bounds are fixed at registration — the
/// first registration of a name wins.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, stored as the bit pattern of an `f64` and
    /// updated by compare-exchange (no atomic f64 in stable std).
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: f64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// The bucket upper bounds (exclusive of the overflow bucket).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_bits.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
    spans: Mutex<BTreeMap<&'static str, &'static crate::span::SpanStat>>,
}

static REGISTRY: Registry = Registry {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    histograms: Mutex::new(BTreeMap::new()),
    spans: Mutex::new(BTreeMap::new()),
};

/// Returns the counter registered under `name`, registering it first if
/// needed. Handles are `'static` (leaked once per name) so callsites can
/// cache them.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = REGISTRY.counters.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// Returns the gauge registered under `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut map = REGISTRY.gauges.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Gauge::default())))
}

/// Returns the histogram registered under `name`. The first caller's
/// `bounds` win; later registrations of the same name ignore theirs.
///
/// # Panics
///
/// Panics if `bounds` is empty or not strictly increasing (first
/// registration only).
pub fn histogram(name: &'static str, bounds: &[f64]) -> &'static Histogram {
    let mut map = REGISTRY.histograms.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new(bounds))))
}

/// Returns the span statistics slot registered under `name`.
pub fn span_stat(name: &'static str) -> &'static crate::span::SpanStat {
    let mut map = REGISTRY.spans.lock().unwrap();
    map.entry(name).or_insert_with(|| Box::leak(Box::new(crate::span::SpanStat::new(name))))
}

/// Copies the current value of every registered metric.
pub fn snapshot() -> Snapshot {
    let counters =
        REGISTRY.counters.lock().unwrap().iter().map(|(&n, c)| (n.to_string(), c.get())).collect();
    let gauges =
        REGISTRY.gauges.lock().unwrap().iter().map(|(&n, g)| (n.to_string(), g.get())).collect();
    let histograms = REGISTRY
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(&n, h)| HistogramSnapshot {
            name: n.to_string(),
            bounds: h.bounds().to_vec(),
            buckets: h.bucket_counts(),
            count: h.count(),
            sum: h.sum(),
        })
        .collect();
    let spans = REGISTRY.spans.lock().unwrap().iter().map(|(&n, s)| s.snapshot(n)).collect();
    Snapshot { counters, gauges, histograms, spans }
}

/// Zeroes every registered metric (registrations and cached handles stay
/// valid). Intended for test isolation and between bench figures.
pub fn reset() {
    for c in REGISTRY.counters.lock().unwrap().values() {
        c.reset();
    }
    for g in REGISTRY.gauges.lock().unwrap().values() {
        g.reset();
    }
    for h in REGISTRY.histograms.lock().unwrap().values() {
        h.reset();
    }
    for s in REGISTRY.spans.lock().unwrap().values() {
        s.reset();
    }
}
