//! Point-in-time copies of the metric state, independent of the `metrics`
//! feature so exporters and consumers compile in both modes (with the
//! feature off, [`crate::snapshot()`] just returns an empty snapshot).

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds; the implicit overflow bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, overflow last (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by linear
    /// interpolation within the bucket holding the target rank, in the
    /// style of Prometheus `histogram_quantile`: the first bucket's lower
    /// edge is 0 (or its own bound when that is negative), and any rank
    /// landing in the overflow bucket reports the last finite bound (the
    /// estimate cannot exceed what the buckets resolve). Returns `NaN`
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 || self.bounds.is_empty() {
            return f64::NAN;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            let below = cum;
            cum += c;
            if c > 0 && cum as f64 >= target {
                let Some(&hi) = self.bounds.get(i) else {
                    // Overflow bucket: no upper edge to interpolate to.
                    return *self.bounds.last().unwrap();
                };
                let lo = if i == 0 { self.bounds[0].min(0.0) } else { self.bounds[i - 1] };
                let frac = ((target - below as f64) / c as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        *self.bounds.last().unwrap()
    }

    /// Estimated median (see [`Self::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// Estimated 95th percentile (see [`Self::quantile`]).
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Estimated 99th percentile (see [`Self::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// A point-in-time copy of one span's aggregated timing statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed span instances.
    pub count: u64,
    /// Total wall time, nanoseconds (includes time in child spans).
    pub total_ns: u64,
    /// Total wall time minus time spent in directly nested spans.
    pub self_ns: u64,
    /// Shortest single instance, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every registered span, aggregated per name.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The value of counter `name`, or `None` if never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The aggregated statistics of span `name`.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// True when nothing has been recorded (all zeros or no registrations).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(bounds: &[f64], buckets: &[u64]) -> HistogramSnapshot {
        HistogramSnapshot {
            name: "h".into(),
            bounds: bounds.to_vec(),
            buckets: buckets.to_vec(),
            count: buckets.iter().sum(),
            sum: 0.0,
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        // 10 observations: 2 in (0,10], 6 in (10,20], 2 in (20,30].
        let h = hist(&[10.0, 20.0, 30.0], &[2, 6, 2, 0]);
        // Hand-computed: rank 5 of 10 sits 3/6 into bucket (10,20] -> 15.
        assert_eq!(h.p50(), 15.0);
        // Rank 9.5 sits 1.5/2 into bucket (20,30] -> 27.5.
        assert_eq!(h.p95(), 27.5);
        // Rank 9.9 sits 1.9/2 into bucket (20,30] -> 29.5.
        assert_eq!(h.p99(), 29.5);
    }

    #[test]
    fn quantile_edges() {
        // First bucket interpolates from 0.
        let h = hist(&[4.0], &[4, 0]);
        assert_eq!(h.quantile(0.5), 2.0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(1.0), 4.0);
        // Everything in the overflow bucket: report the last finite bound.
        let h = hist(&[10.0, 20.0], &[0, 0, 5]);
        assert_eq!(h.p50(), 20.0);
        // Empty histogram has no quantiles.
        assert!(hist(&[10.0], &[0, 0]).p50().is_nan());
    }

    #[test]
    fn quantile_skips_empty_buckets() {
        // All mass in the last finite bucket; empty buckets before it must
        // not capture the rank.
        let h = hist(&[1.0, 2.0, 3.0], &[0, 0, 8, 0]);
        assert_eq!(h.p50(), 2.5);
        assert_eq!(h.quantile(1.0), 3.0);
    }
}
