//! Point-in-time copies of the metric state, independent of the `metrics`
//! feature so exporters and consumers compile in both modes (with the
//! feature off, [`crate::snapshot()`] just returns an empty snapshot).

/// A point-in-time copy of one histogram's state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Bucket upper bounds; the implicit overflow bucket follows.
    pub bounds: Vec<f64>,
    /// Per-bucket counts, overflow last (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

/// A point-in-time copy of one span's aggregated timing statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSnapshot {
    /// Span name.
    pub name: String,
    /// Completed span instances.
    pub count: u64,
    /// Total wall time, nanoseconds (includes time in child spans).
    pub total_ns: u64,
    /// Total wall time minus time spent in directly nested spans.
    pub self_ns: u64,
    /// Shortest single instance, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single instance, nanoseconds.
    pub max_ns: u64,
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// Every registered span, aggregated per name.
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The value of counter `name`, or `None` if never registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The aggregated statistics of span `name`.
    pub fn span(&self, name: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// True when nothing has been recorded (all zeros or no registrations).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }
}
