//! Hierarchical RAII spans.
//!
//! A span measures the wall time between its creation and drop and folds
//! it into a per-name aggregate ([`SpanStat`]): count, total, min, max,
//! and *self time* (total minus time spent in directly nested spans on the
//! same thread). Nesting is tracked with a thread-local stack, so spans on
//! different threads never contend; the aggregate slots are plain atomics.
//!
//! # Cross-thread nesting
//!
//! The thread-local stack cannot see spans opened inside worker threads,
//! so a parallel phase would report its workers' time as its own *self*
//! time. [`SpanGuard::handle`] fixes that: it returns a cloneable
//! [`SpanHandle`] that worker threads pass to
//! [`span_linked!`](crate::span_linked!); a linked span reports its total
//! time back to the parent as child time (and adopts the parent's trace
//! [`RunId`](crate::trace::RunId)). When workers run concurrently their
//! child times *sum*, so a fully parallel parent's self time clamps to
//! zero — self time means "time not attributable to instrumented
//! children", not "time the parent thread was idle".
//!
//! With the `tracing` feature enabled and the trace ring runtime-enabled,
//! every guard additionally emits begin/end events into the
//! [`trace`](crate::trace) ring.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[cfg(feature = "tracing")]
use crate::trace;

/// Aggregated statistics for one span name.
#[derive(Debug)]
pub struct SpanStat {
    #[cfg(feature = "tracing")]
    name_id: u32,
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    pub(crate) fn new(name: &'static str) -> Self {
        #[cfg(not(feature = "tracing"))]
        let _ = name;
        Self {
            #[cfg(feature = "tracing")]
            name_id: trace::intern(name),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    #[cfg(feature = "tracing")]
    fn name_id(&self) -> u32 {
        self.name_id
    }

    fn record(&self, elapsed_ns: u64, self_time_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_time_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> crate::snapshot::SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        crate::snapshot::SpanSnapshot {
            name: name.to_string(),
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            self_ns: self.self_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { self.min_ns.load(Ordering::Relaxed) },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

thread_local! {
    /// One accumulator per *open* span on this thread: nanoseconds spent
    /// in its already-closed direct children.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// A cloneable link to an open span on another thread, created by
/// [`SpanGuard::handle`]. Worker threads open spans against it with
/// [`span_linked!`](crate::span_linked!); each linked span's total time is
/// added to the parent's child time, and the worker adopts the parent's
/// current trace run id for the span's duration.
#[derive(Debug, Clone)]
pub struct SpanHandle {
    child_ns: Arc<AtomicU64>,
    #[cfg(feature = "tracing")]
    run_id: u64,
}

/// RAII guard: measures from creation to drop and records into a
/// [`SpanStat`]. Create via the [`span!`](crate::span!) macro.
#[must_use = "a span measures until it is dropped; bind it with `let _span = span!(..)`"]
#[derive(Debug)]
pub struct SpanGuard {
    stat: &'static SpanStat,
    start: Instant,
    /// Child time reported by linked spans on other threads.
    fan_in: Option<Arc<AtomicU64>>,
    /// Parent handle a linked span reports its total time to.
    report_to: Option<SpanHandle>,
    /// Run id to restore when a *linked* span closes (only linked spans
    /// change the thread's run id).
    #[cfg(feature = "tracing")]
    restore_run_id: Option<u64>,
}

impl SpanGuard {
    /// Opens a span recording into `stat`.
    pub fn enter(stat: &'static SpanStat) -> Self {
        CHILD_NS.with(|c| c.borrow_mut().push(0));
        #[cfg(feature = "tracing")]
        if trace::enabled() {
            trace::record_begin(stat.name_id());
        }
        Self {
            stat,
            start: Instant::now(),
            fan_in: None,
            report_to: None,
            #[cfg(feature = "tracing")]
            restore_run_id: None,
        }
    }

    /// Opens a span linked to a parent span on another thread: on drop,
    /// this span's total time is added to the parent's child time. The
    /// calling thread adopts the handle's run id until the guard drops.
    /// Used via [`span_linked!`](crate::span_linked!).
    pub fn enter_linked(stat: &'static SpanStat, handle: &SpanHandle) -> Self {
        CHILD_NS.with(|c| c.borrow_mut().push(0));
        #[cfg(feature = "tracing")]
        let prev_run_id = trace::set_current_run_id(handle.run_id);
        #[cfg(feature = "tracing")]
        if trace::enabled() {
            trace::record_begin(stat.name_id());
        }
        Self {
            stat,
            start: Instant::now(),
            fan_in: None,
            report_to: Some(handle.clone()),
            #[cfg(feature = "tracing")]
            restore_run_id: Some(prev_run_id),
        }
    }

    /// Returns a handle worker threads can link child spans to (see
    /// [`SpanHandle`]). Handles created from the same guard share one
    /// accumulator, so calling this repeatedly is cheap.
    pub fn handle(&mut self) -> SpanHandle {
        let child_ns = self.fan_in.get_or_insert_with(|| Arc::new(AtomicU64::new(0))).clone();
        SpanHandle {
            child_ns,
            #[cfg(feature = "tracing")]
            run_id: trace::current_run_id(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        #[cfg(feature = "tracing")]
        if trace::enabled() {
            trace::record_end(self.stat.name_id());
        }
        let mut child = CHILD_NS.with(|c| {
            let mut stack = c.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        if let Some(fan_in) = &self.fan_in {
            child += fan_in.load(Ordering::Acquire);
        }
        if let Some(parent) = &self.report_to {
            parent.child_ns.fetch_add(elapsed, Ordering::AcqRel);
        }
        #[cfg(feature = "tracing")]
        if let Some(prev) = self.restore_run_id {
            trace::set_current_run_id(prev);
        }
        self.stat.record(elapsed, elapsed.saturating_sub(child));
    }
}
