//! Hierarchical RAII spans.
//!
//! A span measures the wall time between its creation and drop and folds
//! it into a per-name aggregate ([`SpanStat`]): count, total, min, max,
//! and *self time* (total minus time spent in directly nested spans on the
//! same thread). Nesting is tracked with a thread-local stack, so spans on
//! different threads never contend; the aggregate slots are plain atomics.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Aggregated statistics for one span name.
#[derive(Debug)]
pub struct SpanStat {
    count: AtomicU64,
    total_ns: AtomicU64,
    self_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStat {
    pub(crate) fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            self_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    fn record(&self, elapsed_ns: u64, self_time_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(elapsed_ns, Ordering::Relaxed);
        self.self_ns.fetch_add(self_time_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(elapsed_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(elapsed_ns, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, name: &str) -> crate::snapshot::SpanSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        crate::snapshot::SpanSnapshot {
            name: name.to_string(),
            count,
            total_ns: self.total_ns.load(Ordering::Relaxed),
            self_ns: self.self_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 { 0 } else { self.min_ns.load(Ordering::Relaxed) },
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.self_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

thread_local! {
    /// One accumulator per *open* span on this thread: nanoseconds spent
    /// in its already-closed direct children.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard: measures from creation to drop and records into a
/// [`SpanStat`]. Create via the [`span!`](crate::span!) macro.
#[must_use = "a span measures until it is dropped; bind it with `let _span = span!(..)`"]
#[derive(Debug)]
pub struct SpanGuard {
    stat: &'static SpanStat,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span recording into `stat`.
    pub fn enter(stat: &'static SpanStat) -> Self {
        CHILD_NS.with(|c| c.borrow_mut().push(0));
        Self { stat, start: Instant::now() }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child = CHILD_NS.with(|c| {
            let mut stack = c.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent += elapsed;
            }
            child
        });
        self.stat.record(elapsed, elapsed.saturating_sub(child));
    }
}
