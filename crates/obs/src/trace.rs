//! Event-level tracing: a lock-light, fixed-capacity ring of timestamped
//! span begin/end and instant events, plus exporters to Chrome-trace JSON
//! and folded flamegraph stacks.
//!
//! Aggregated [`SpanStat`](crate::SpanStat)s answer "where does time go on
//! average"; the trace answers "what happened *when*": a timeline of every
//! span enter/exit and instant event with a timestamp, thread id, and the
//! current [`RunId`]. The ring is per-thread and fixed-capacity, so a
//! writer never blocks and never allocates on the hot path; when a thread
//! emits more events than its ring holds, the oldest events are
//! overwritten (most-recent-wins).
//!
//! # Enabling
//!
//! Two gates, both default-off:
//!
//! 1. the `tracing` **cargo feature** of `db-obs` (implies `metrics`) —
//!    without it every function here is an inert stub and span guards
//!    contain no trace code at all;
//! 2. the **runtime toggle** — `DB_TRACE=1` in the environment, or
//!    [`set_enabled`]`(true)` from code. Disabled, the per-event cost is a
//!    single relaxed atomic load (asserted by the overhead bench).
//!
//! # Consistency model
//!
//! Each ring slot is a tiny seqlock over plain `AtomicU64` words: the
//! owning thread bumps the slot sequence to *odd*, writes the words,
//! then publishes the matching *even* sequence. [`events`] copies the
//! words and keeps a slot only when the sequence was even and unchanged
//! across the copy — a torn (mid-overwrite) slot is dropped, never
//! surfaced. Timestamps come from one global monotonic epoch, so they are
//! comparable across threads and monotone within one.

use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------- model

/// What a [`TraceEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A span was entered (Chrome `ph: "B"`).
    Begin,
    /// A span was exited (Chrome `ph: "E"`).
    End,
    /// A point-in-time event (Chrome `ph: "i"`).
    Instant,
}

/// One decoded trace event, as returned by [`events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the process-wide trace epoch (first event).
    pub ts_ns: u64,
    /// Begin / End / Instant.
    pub kind: TraceEventKind,
    /// Small dense id of the emitting thread (not the OS tid).
    pub tid: u64,
    /// The [`RunId`] current on the emitting thread, 0 when none.
    pub run_id: u64,
    /// Span or instant name.
    pub name: &'static str,
    /// Name of the optional argument; empty when the event carries none.
    pub arg_name: &'static str,
    /// Argument value (meaningful only when `arg_name` is non-empty).
    pub arg: u64,
}

// ---------------------------------------------------------------- run ids

static NEXT_RUN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_RUN_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// A process-unique pipeline-run identifier. Every trace event emitted on
/// a thread (or a worker linked via
/// [`SpanGuard::handle`](crate::SpanGuard)) while a `RunId` is entered
/// carries it, so one run's events form a self-contained trace even when
/// runs interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RunId(u64);

impl RunId {
    /// Allocates the next process-unique run id (never 0).
    pub fn next() -> Self {
        RunId(NEXT_RUN_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw id value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Makes this the current run id of the calling thread until the
    /// returned guard drops (the previous id is restored).
    pub fn enter(self) -> RunIdGuard {
        let prev = CURRENT_RUN_ID.with(|c| c.replace(self.0));
        RunIdGuard { prev }
    }
}

/// Restores the thread's previous run id on drop. Created by
/// [`RunId::enter`].
#[derive(Debug)]
pub struct RunIdGuard {
    prev: u64,
}

impl Drop for RunIdGuard {
    fn drop(&mut self) {
        CURRENT_RUN_ID.with(|c| c.set(self.prev));
    }
}

/// The run id current on this thread (0 when none is entered).
pub fn current_run_id() -> u64 {
    CURRENT_RUN_ID.with(std::cell::Cell::get)
}

/// Sets the calling thread's current run id directly, returning the
/// previous one. Prefer [`RunId::enter`]; this exists for worker threads
/// that adopt a parent's id via a
/// [`SpanHandle`](crate::SpanHandle).
pub fn set_current_run_id(id: u64) -> u64 {
    CURRENT_RUN_ID.with(|c| c.replace(id))
}

// ---------------------------------------------------------------- ring

#[cfg(feature = "tracing")]
mod ring {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, Once, OnceLock};
    use std::time::Instant;

    use super::{TraceEvent, TraceEventKind};

    /// Events kept per thread ring unless `DB_TRACE_CAP` overrides it.
    pub const DEFAULT_RING_CAPACITY: usize = 16_384;

    const KIND_BEGIN: u64 = 0;
    const KIND_END: u64 = 1;
    const KIND_INSTANT: u64 = 2;

    /// One slot: a seqlock sequence plus the event payload as plain
    /// atomic words (no `UnsafeCell`, so a racing read is well-defined —
    /// it just gets rejected by the sequence check).
    struct Slot {
        /// `2 * ticket + 1` while the owner writes, `2 * ticket + 2` when
        /// the payload of that ticket is complete, 0 when never written.
        seq: AtomicU64,
        ts_ns: AtomicU64,
        run_id: AtomicU64,
        arg: AtomicU64,
        /// `name_id | kind << 32`.
        name_kind: AtomicU64,
        arg_name_id: AtomicU64,
    }

    impl Slot {
        const fn empty() -> Self {
            Slot {
                seq: AtomicU64::new(0),
                ts_ns: AtomicU64::new(0),
                run_id: AtomicU64::new(0),
                arg: AtomicU64::new(0),
                name_kind: AtomicU64::new(0),
                arg_name_id: AtomicU64::new(0),
            }
        }
    }

    struct ThreadRing {
        /// Dense thread id, assigned at ring creation.
        tid: u64,
        /// Claimed by a live thread; released (for reuse) when it exits.
        in_use: AtomicBool,
        /// Events ever written by the owning thread.
        head: AtomicU64,
        slots: Box<[Slot]>,
    }

    impl ThreadRing {
        fn new(tid: u64) -> Self {
            let cap = capacity();
            ThreadRing {
                tid,
                in_use: AtomicBool::new(true),
                head: AtomicU64::new(0),
                slots: (0..cap).map(|_| Slot::empty()).collect(),
            }
        }

        /// Owner-thread-only append.
        fn push(&self, ts_ns: u64, kind: u64, name_id: u32, arg_name_id: u32, arg: u64) {
            let ticket = self.head.load(Ordering::Relaxed);
            let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
            slot.seq.store(2 * ticket + 1, Ordering::Release);
            slot.ts_ns.store(ts_ns, Ordering::Relaxed);
            slot.run_id.store(super::current_run_id(), Ordering::Relaxed);
            slot.arg.store(arg, Ordering::Relaxed);
            slot.name_kind.store(u64::from(name_id) | (kind << 32), Ordering::Relaxed);
            slot.arg_name_id.store(u64::from(arg_name_id), Ordering::Relaxed);
            slot.seq.store(2 * ticket + 2, Ordering::Release);
            self.head.store(ticket + 1, Ordering::Release);
        }
    }

    /// All rings ever created; dead threads' rings stay here and are
    /// reclaimed by the next new thread, so the list is bounded by the
    /// peak number of concurrently tracing threads.
    static RINGS: Mutex<Vec<&'static ThreadRing>> = Mutex::new(Vec::new());

    thread_local! {
        static MY_RING: RingHandle = RingHandle(claim_ring());
    }

    /// Releases the thread's ring back to the pool on thread exit.
    struct RingHandle(&'static ThreadRing);

    impl Drop for RingHandle {
        fn drop(&mut self) {
            self.0.in_use.store(false, Ordering::Release);
        }
    }

    fn claim_ring() -> &'static ThreadRing {
        let mut rings = RINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        for ring in rings.iter() {
            if ring
                .in_use
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return ring;
            }
        }
        let ring: &'static ThreadRing = Box::leak(Box::new(ThreadRing::new(rings.len() as u64)));
        rings.push(ring);
        ring
    }

    fn capacity() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| {
            std::env::var("DB_TRACE_CAP")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&c| c >= 64)
                .unwrap_or(DEFAULT_RING_CAPACITY)
        })
    }

    // ------------------------------------------------------ global state

    static ENABLED: AtomicBool = AtomicBool::new(false);
    static ENABLED_INIT: Once = Once::new();
    /// Events with `ts_ns` below the floor are hidden ([`clear`] raises it
    /// instead of mutating other threads' rings).
    static TS_FLOOR: AtomicU64 = AtomicU64::new(0);

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    fn now_ns() -> u64 {
        u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Whether trace events are being recorded. First call reads the
    /// `DB_TRACE` environment variable (`0` / empty = off); afterwards a
    /// single relaxed load.
    #[inline]
    pub fn enabled() -> bool {
        ENABLED_INIT.call_once(|| {
            let on = std::env::var("DB_TRACE").is_ok_and(|v| !v.is_empty() && v != "0");
            ENABLED.store(on, Ordering::Relaxed);
        });
        ENABLED.load(Ordering::Relaxed)
    }

    /// Turns recording on or off at runtime (overrides `DB_TRACE`).
    pub fn set_enabled(on: bool) {
        ENABLED_INIT.call_once(|| {});
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Hides all events recorded so far (new events still record).
    pub fn clear() {
        TS_FLOOR.store(now_ns(), Ordering::Relaxed);
    }

    // ------------------------------------------------------ name interning

    /// Ring slots hold fixed-width words, so names are interned once (at
    /// span registration / instant-callsite init, both cold) and resolved
    /// back at export time.
    static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

    /// Interns `name`, returning its dense id. Idempotent per string; the
    /// empty string is always id 0 ("no argument").
    pub fn intern(name: &'static str) -> u32 {
        let mut names = NAMES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if names.is_empty() {
            names.push("");
        }
        if let Some(i) = names.iter().position(|&n| n == name) {
            return i as u32;
        }
        names.push(name);
        (names.len() - 1) as u32
    }

    fn resolve(id: u32) -> &'static str {
        let names = NAMES.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        names.get(id as usize).copied().unwrap_or("?")
    }

    // ------------------------------------------------------ recording

    #[inline]
    fn record(kind: u64, name_id: u32, arg_name_id: u32, arg: u64) {
        let ts = now_ns();
        MY_RING.with(|h| h.0.push(ts, kind, name_id, arg_name_id, arg));
    }

    /// Records a span-begin event. Caller must check [`enabled`] first.
    #[inline]
    pub fn record_begin(name_id: u32) {
        record(KIND_BEGIN, name_id, 0, 0);
    }

    /// Records a span-end event. Caller must check [`enabled`] first.
    #[inline]
    pub fn record_end(name_id: u32) {
        record(KIND_END, name_id, 0, 0);
    }

    /// Records an instant event with an optional argument (pass the
    /// interned empty string for none). Caller must check [`enabled`].
    #[inline]
    pub fn record_instant(name_id: u32, arg_name_id: u32, arg: u64) {
        record(KIND_INSTANT, name_id, arg_name_id, arg);
    }

    // ------------------------------------------------------ reading

    /// A consistent copy of every currently readable event, sorted by
    /// timestamp (ties by thread id). Events overwritten by ring
    /// wraparound, hidden by [`clear`], or caught mid-write are omitted —
    /// never returned torn.
    pub fn events() -> Vec<TraceEvent> {
        let floor = TS_FLOOR.load(Ordering::Relaxed);
        let rings: Vec<&'static ThreadRing> = {
            let guard = RINGS.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            guard.clone()
        };
        let mut out = Vec::new();
        for ring in rings {
            let cap = ring.slots.len() as u64;
            let head = ring.head.load(Ordering::Acquire);
            for ticket in head.saturating_sub(cap)..head {
                let slot = &ring.slots[(ticket % cap) as usize];
                let want = 2 * ticket + 2;
                if slot.seq.load(Ordering::Acquire) != want {
                    continue;
                }
                let ts_ns = slot.ts_ns.load(Ordering::Relaxed);
                let run_id = slot.run_id.load(Ordering::Relaxed);
                let arg = slot.arg.load(Ordering::Relaxed);
                let name_kind = slot.name_kind.load(Ordering::Relaxed);
                let arg_name_id = slot.arg_name_id.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != want || ts_ns < floor {
                    continue;
                }
                let kind = match name_kind >> 32 {
                    KIND_BEGIN => TraceEventKind::Begin,
                    KIND_END => TraceEventKind::End,
                    _ => TraceEventKind::Instant,
                };
                let arg_name = if arg_name_id == 0 { "" } else { resolve(arg_name_id as u32) };
                out.push(TraceEvent {
                    ts_ns,
                    kind,
                    tid: ring.tid,
                    run_id,
                    name: resolve(name_kind as u32),
                    arg_name,
                    arg,
                });
            }
        }
        out.sort_by_key(|e| (e.ts_ns, e.tid));
        out
    }

    /// Like [`events`], filtered to one run id.
    pub fn events_for_run(run_id: u64) -> Vec<TraceEvent> {
        let mut evs = events();
        evs.retain(|e| e.run_id == run_id);
        evs
    }
}

#[cfg(feature = "tracing")]
pub use ring::{
    clear, enabled, events, events_for_run, intern, record_begin, record_end, record_instant,
    set_enabled, DEFAULT_RING_CAPACITY,
};

// ---------------------------------------------------------------- stubs

/// Inert stand-ins compiled when the `tracing` feature is off, mirroring
/// the real API so instrumented code compiles unchanged.
#[cfg(not(feature = "tracing"))]
mod stub {
    use super::TraceEvent;

    /// Default per-thread ring capacity (unused without `tracing`).
    pub const DEFAULT_RING_CAPACITY: usize = 16_384;

    /// Always false without the `tracing` feature.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Does nothing without the `tracing` feature.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}

    /// Does nothing without the `tracing` feature.
    #[inline(always)]
    pub fn clear() {}

    /// Always 0 without the `tracing` feature.
    #[inline(always)]
    pub fn intern(_name: &'static str) -> u32 {
        0
    }

    /// Does nothing without the `tracing` feature.
    #[inline(always)]
    pub fn record_begin(_name_id: u32) {}

    /// Does nothing without the `tracing` feature.
    #[inline(always)]
    pub fn record_end(_name_id: u32) {}

    /// Does nothing without the `tracing` feature.
    #[inline(always)]
    pub fn record_instant(_name_id: u32, _arg_name_id: u32, _arg: u64) {}

    /// Always empty without the `tracing` feature.
    #[inline]
    pub fn events() -> Vec<TraceEvent> {
        Vec::new()
    }

    /// Always empty without the `tracing` feature.
    #[inline]
    pub fn events_for_run(_run_id: u64) -> Vec<TraceEvent> {
        Vec::new()
    }
}

#[cfg(not(feature = "tracing"))]
pub use stub::{
    clear, enabled, events, events_for_run, intern, record_begin, record_end, record_instant,
    set_enabled, DEFAULT_RING_CAPACITY,
};

// ---------------------------------------------------------------- exporters

use crate::{Json, ToJson};

/// Renders events as Chrome-trace / Perfetto JSON (the "JSON Array
/// Format" object variant): load the file at `chrome://tracing` or
/// <https://ui.perfetto.dev>. Timestamps are microseconds from the trace
/// epoch; span begin/end map to `ph: "B"` / `"E"`, instants to `"i"`.
pub fn trace_json(events: &[TraceEvent]) -> String {
    let mut rows = Vec::with_capacity(events.len());
    for e in events {
        let ph = match e.kind {
            TraceEventKind::Begin => "B",
            TraceEventKind::End => "E",
            TraceEventKind::Instant => "i",
        };
        let mut args = vec![("run_id".to_string(), e.run_id.to_json())];
        if !e.arg_name.is_empty() {
            args.push((e.arg_name.to_string(), e.arg.to_json()));
        }
        let mut row = vec![
            ("name".to_string(), e.name.to_json()),
            ("cat".to_string(), "db".to_json()),
            ("ph".to_string(), ph.to_json()),
            ("ts".to_string(), Json::Num(e.ts_ns as f64 / 1_000.0)),
            ("pid".to_string(), Json::Int(1)),
            ("tid".to_string(), e.tid.to_json()),
            ("args".to_string(), Json::Obj(args)),
        ];
        if e.kind == TraceEventKind::Instant {
            // Instant scope: thread.
            row.push(("s".to_string(), "t".to_json()));
        }
        rows.push(Json::Obj(row));
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(rows)),
        ("displayTimeUnit".to_string(), "ms".to_json()),
    ])
    .render()
}

/// Renders events as folded flamegraph stacks (`a;b;c <self-nanoseconds>`
/// per line, one stack per thread forest), the input format of
/// `flamegraph.pl` / `inferno-flamegraph`. Self time is attributed to the
/// innermost open span between consecutive events on the same thread;
/// instants contribute no time. Unmatched end events (their begin was
/// overwritten by ring wraparound) are skipped, and spans still open at
/// the last event keep only the time observed so far.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;

    let mut by_tid: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for e in events {
        by_tid.entry(e.tid).or_default().push(e);
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (_tid, evs) in by_tid {
        // `events()` sorts globally by ts; per-tid order is preserved.
        let mut stack: Vec<&'static str> = Vec::new();
        let mut last_ts = evs.first().map_or(0, |e| e.ts_ns);
        for e in evs {
            if !stack.is_empty() {
                *folded.entry(stack.join(";")).or_insert(0) += e.ts_ns - last_ts;
            }
            last_ts = e.ts_ns;
            match e.kind {
                TraceEventKind::Begin => stack.push(e.name),
                TraceEventKind::End => {
                    if let Some(pos) = stack.iter().rposition(|&n| n == e.name) {
                        stack.truncate(pos);
                    }
                }
                TraceEventKind::Instant => {}
            }
        }
    }
    let mut out = String::new();
    for (stack, ns) in folded {
        if ns > 0 {
            out.push_str(&stack);
            out.push(' ');
            out.push_str(&ns.to_string());
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64, kind: TraceEventKind, tid: u64, name: &'static str) -> TraceEvent {
        TraceEvent { ts_ns: ts, kind, tid, run_id: 1, name, arg_name: "", arg: 0 }
    }

    #[test]
    fn run_ids_are_unique_and_nest() {
        let a = RunId::next();
        let b = RunId::next();
        assert_ne!(a, b);
        assert_eq!(current_run_id(), 0);
        {
            let _g = a.enter();
            assert_eq!(current_run_id(), a.get());
            {
                let _h = b.enter();
                assert_eq!(current_run_id(), b.get());
            }
            assert_eq!(current_run_id(), a.get());
        }
        assert_eq!(current_run_id(), 0);
    }

    #[test]
    fn chrome_json_shape() {
        let evs = [
            ev(1_000, TraceEventKind::Begin, 0, "pipeline.run"),
            TraceEvent {
                ts_ns: 2_000,
                kind: TraceEventKind::Instant,
                tid: 0,
                run_id: 7,
                name: "pipeline.k",
                arg_name: "k",
                arg: 40,
            },
            ev(3_000, TraceEventKind::End, 0, "pipeline.run"),
        ];
        let json = trace_json(&evs);
        let doc = Json::parse(&json).expect("exporter output parses");
        let Json::Obj(fields) = &doc else { panic!("not an object") };
        assert!(fields.iter().any(|(k, _)| k == "traceEvents"));
        assert!(json.contains(r#""ph":"B""#));
        assert!(json.contains(r#""ph":"E""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains(r#""k":40"#));
        assert!(json.contains(r#""run_id":7"#));
        // ts is microseconds.
        assert!(json.contains(r#""ts":1"#));
    }

    #[test]
    fn folded_stacks_attribute_self_time() {
        // a: [0, 100); b nested in a: [10, 40). Self: a = 70, a;b = 30.
        let evs = [
            ev(0, TraceEventKind::Begin, 0, "a"),
            ev(10, TraceEventKind::Begin, 0, "b"),
            ev(40, TraceEventKind::End, 0, "b"),
            ev(100, TraceEventKind::End, 0, "a"),
        ];
        let folded = folded_stacks(&evs);
        let mut lines: Vec<&str> = folded.lines().collect();
        lines.sort_unstable();
        assert_eq!(lines, vec!["a 70", "a;b 30"]);
    }

    #[test]
    fn folded_stacks_skip_unmatched_ends() {
        // End without a Begin (wraparound loss) must not underflow or
        // corrupt the stack.
        let evs = [
            ev(0, TraceEventKind::End, 0, "lost"),
            ev(10, TraceEventKind::Begin, 0, "a"),
            ev(30, TraceEventKind::End, 0, "a"),
        ];
        assert_eq!(folded_stacks(&evs), "a 20\n");
    }
}
