//! Integration tests for the metrics registry, spans, and exporters.
//!
//! The registry is a process-wide singleton, so every test that records
//! or snapshots takes `TEST_LOCK` and starts with `db_obs::reset()`.

use std::sync::Mutex;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(feature = "metrics")]
mod with_metrics {
    use super::locked;
    use std::time::Duration;

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let _g = locked();
        db_obs::reset();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for _ in 0..PER_THREAD {
                        db_obs::counter!("test.concurrent").incr();
                    }
                });
            }
        });
        assert_eq!(db_obs::counter!("test.concurrent").get(), THREADS as u64 * PER_THREAD);
        assert_eq!(
            db_obs::snapshot().counter("test.concurrent"),
            Some(THREADS as u64 * PER_THREAD)
        );
    }

    #[test]
    fn counter_handles_are_shared_across_callsites() {
        let _g = locked();
        db_obs::reset();
        db_obs::counter!("test.shared").add(2);
        db_obs::counter!("test.shared").add(3);
        assert_eq!(db_obs::snapshot().counter("test.shared"), Some(5));
    }

    #[test]
    fn gauge_set_add_max() {
        let _g = locked();
        db_obs::reset();
        let g = db_obs::gauge!("test.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
        g.max(5);
        assert_eq!(g.get(), 7);
        g.max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let _g = locked();
        db_obs::reset();
        let h = db_obs::histogram!("test.hist", [1.0, 10.0, 100.0]);
        // Exactly on a bound lands in that bound's bucket (v <= bound).
        for v in [0.5, 1.0] {
            h.record(v); // bucket 0: <= 1
        }
        h.record(1.0000001); // bucket 1: <= 10
        h.record(10.0); // bucket 1
        h.record(99.9); // bucket 2: <= 100
        h.record(100.0); // bucket 2
        h.record(100.1); // overflow
        h.record(1e12); // overflow
        let snap = db_obs::snapshot();
        let hs = snap.histograms.iter().find(|h| h.name == "test.hist").unwrap();
        assert_eq!(hs.buckets, vec![2, 2, 2, 2]);
        assert_eq!(hs.count, 8);
        assert_eq!(hs.bounds, vec![1.0, 10.0, 100.0]);
        let expected_sum = 0.5 + 1.0 + 1.0000001 + 10.0 + 99.9 + 100.0 + 100.1 + 1e12;
        assert!((hs.sum - expected_sum).abs() < 1e-6 * expected_sum);
    }

    #[test]
    fn histogram_concurrent_records_keep_count_consistent() {
        let _g = locked();
        db_obs::reset();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    for i in 0..1_000 {
                        db_obs::histogram!("test.hist_conc", [8.0, 64.0])
                            .record((t * 1_000 + i) as f64 % 100.0);
                    }
                });
            }
        });
        let snap = db_obs::snapshot();
        let hs = snap.histograms.iter().find(|h| h.name == "test.hist_conc").unwrap();
        assert_eq!(hs.count, 4_000);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 4_000);
        // Sum of 0..100 repeated 40 times, via CAS accumulation.
        assert!((hs.sum - 40.0 * 4950.0).abs() < 1e-6);
    }

    #[test]
    fn span_aggregation_counts_and_totals() {
        let _g = locked();
        db_obs::reset();
        for _ in 0..3 {
            let _span = db_obs::span!("test.outer_span");
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = db_obs::snapshot();
        let sp = snap.span("test.outer_span").unwrap();
        assert_eq!(sp.count, 3);
        assert!(sp.total_ns >= 3 * 2_000_000, "total {} ns", sp.total_ns);
        assert!(sp.min_ns >= 2_000_000);
        assert!(sp.max_ns >= sp.min_ns);
        assert!(sp.total_ns >= sp.max_ns);
    }

    #[test]
    fn nested_spans_attribute_self_time_to_the_parent() {
        let _g = locked();
        db_obs::reset();
        {
            let _outer = db_obs::span!("test.nest_outer");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = db_obs::span!("test.nest_inner");
                std::thread::sleep(Duration::from_millis(8));
            }
        }
        let snap = db_obs::snapshot();
        let outer = snap.span("test.nest_outer").unwrap();
        let inner = snap.span("test.nest_inner").unwrap();
        assert!(inner.total_ns >= 8_000_000);
        // Outer total includes the inner 8ms; outer self excludes it.
        assert!(outer.total_ns >= 12_000_000, "outer total {} ns", outer.total_ns);
        assert!(
            outer.self_ns < outer.total_ns - inner.total_ns / 2,
            "outer self {} not discounted by inner {}",
            outer.self_ns,
            inner.total_ns
        );
        // Inner is a leaf: self ~ total.
        assert_eq!(inner.self_ns, inner.total_ns);
    }

    #[test]
    fn sibling_spans_on_other_threads_do_not_nest() {
        let _g = locked();
        db_obs::reset();
        {
            let _outer = db_obs::span!("test.thread_outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _inner = db_obs::span!("test.thread_inner");
                    std::thread::sleep(Duration::from_millis(3));
                });
            });
        }
        let snap = db_obs::snapshot();
        let outer = snap.span("test.thread_outer").unwrap();
        // The other thread's span is not this thread's child, so outer
        // keeps its full self-time.
        assert_eq!(outer.self_ns, outer.total_ns);
    }

    #[test]
    fn reset_zeroes_but_keeps_registrations() {
        let _g = locked();
        db_obs::reset();
        db_obs::counter!("test.reset_me").add(9);
        {
            let _span = db_obs::span!("test.reset_span");
        }
        db_obs::reset();
        let snap = db_obs::snapshot();
        assert_eq!(snap.counter("test.reset_me"), Some(0));
        let sp = snap.span("test.reset_span").unwrap();
        assert_eq!((sp.count, sp.total_ns, sp.min_ns, sp.max_ns), (0, 0, 0, 0));
        // Cached handles still work after reset.
        db_obs::counter!("test.reset_me").incr();
        assert_eq!(db_obs::snapshot().counter("test.reset_me"), Some(1));
    }

    #[test]
    fn exporters_cover_live_data() {
        let _g = locked();
        db_obs::reset();
        db_obs::counter!("test.export_counter").add(7);
        {
            let _span = db_obs::span!("test.export_span");
        }
        let snap = db_obs::snapshot();
        let table = db_obs::render_table(&snap);
        assert!(table.contains("test.export_counter"));
        assert!(table.contains("test.export_span"));
        let jsonl = db_obs::json_lines(&snap);
        assert!(jsonl.contains(r#""name":"test.export_counter","value":7"#));
    }
}

#[cfg(not(feature = "metrics"))]
mod without_metrics {
    use super::locked;

    #[test]
    fn macros_compile_to_inert_stubs() {
        let _g = locked();
        db_obs::counter!("test.noop").add(41);
        db_obs::counter!("test.noop").incr();
        db_obs::gauge!("test.noop_gauge").set(7);
        db_obs::histogram!("test.noop_hist").record(3.0);
        let _span = db_obs::span!("test.noop_span");
        assert_eq!(db_obs::counter!("test.noop").get(), 0);
        assert!(db_obs::snapshot().is_empty());
        db_obs::reset();
    }

    #[test]
    fn noop_guard_is_zero_sized() {
        assert_eq!(std::mem::size_of::<db_obs::SpanGuard>(), 0);
        assert_eq!(std::mem::size_of::<db_obs::Counter>(), 0);
        assert_eq!(std::mem::size_of::<db_obs::Histogram>(), 0);
    }

    #[test]
    fn render_table_reports_nothing() {
        assert_eq!(db_obs::render_table(&db_obs::snapshot()), "(no metrics recorded)\n");
    }
}

mod logger {
    use super::locked;

    #[test]
    fn filter_spec_gates_targets_and_levels() {
        let _g = locked();
        db_obs::set_filter_spec("optics=debug,info");
        assert!(db_obs::log_enabled("db_optics::algorithm", db_obs::Level::Debug));
        assert!(!db_obs::log_enabled("db_optics::algorithm", db_obs::Level::Trace));
        assert!(db_obs::log_enabled("db_birch::tree", db_obs::Level::Info));
        assert!(!db_obs::log_enabled("db_birch::tree", db_obs::Level::Debug));

        db_obs::set_filter_spec("");
        assert!(!db_obs::log_enabled("db_optics::algorithm", db_obs::Level::Error));
        // Macros still compile and do nothing when silent.
        db_obs::log_debug!("invisible {}", 1);
        db_obs::log_error!(target: "optics", "also invisible");
    }
}
