//! Integration tests for the event-tracing ring buffers: wraparound,
//! concurrent writers racing a reader (seqlock torn-event rejection),
//! `clear()`, and the Chrome-trace JSON round trip through the crate's
//! own parser.
//!
//! These tests share one process, so each records under its own
//! [`RunId`] and asserts only on events carrying that id; recording is
//! globally enabled and never turned back off.
#![cfg(feature = "tracing")]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};

use db_obs::trace::{self, RunId};
use db_obs::{trace_json, Json, TraceEvent, TraceEventKind};

/// Ring capacity forced via `DB_TRACE_CAP` so wraparound is cheap to
/// exercise. Must run before any ring is claimed, hence the `Once` every
/// test calls first.
const CAP: usize = 64;

fn setup() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("DB_TRACE_CAP", CAP.to_string());
        trace::set_enabled(true);
    });
}

fn my_events(run: RunId) -> Vec<TraceEvent> {
    trace::events_for_run(run.get())
}

#[test]
fn ring_wraparound_keeps_newest_events() {
    setup();
    let run = RunId::next();
    let _g = run.enter();
    let name = trace::intern("wrap.probe");
    let total = 3 * CAP as u64 + 17;
    for i in 0..total {
        trace::record_instant(name, 0, i);
    }
    let evs = my_events(run);
    // Only this thread wrote under this run id, so the ring holds exactly
    // the newest `CAP` of its events.
    assert_eq!(evs.len(), CAP, "ring should retain exactly its capacity");
    let args: Vec<u64> = evs.iter().map(|e| e.arg).collect();
    let expect: Vec<u64> = (total - CAP as u64..total).collect();
    assert_eq!(args, expect, "survivors must be the newest, in order");
    assert!(evs.iter().all(|e| e.name == "wrap.probe"));
}

#[test]
fn concurrent_writers_never_yield_torn_events() {
    setup();
    let run = RunId::next();
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 5_000;
    let names: Vec<&'static str> = (0..WRITERS).map(|i| &*format!("torn.w{i}").leak()).collect();
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let writers: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, &name)| {
                s.spawn(move || {
                    trace::set_current_run_id(run.get());
                    let id = trace::intern(name);
                    for seq in 0..PER_WRITER {
                        trace::record_instant(id, 0, (i as u64) << 32 | seq);
                    }
                })
            })
            .collect();
        // Race the reader against the writers the whole time they run: a
        // torn slot would decode to a payload no writer produced.
        let reader = {
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for e in my_events(run) {
                        let widx = (e.arg >> 32) as usize;
                        let seq = e.arg & 0xffff_ffff;
                        assert!(widx < WRITERS, "impossible writer index {widx}");
                        assert!(seq < PER_WRITER, "impossible sequence {seq}");
                        assert_eq!(e.name, format!("torn.w{widx}"));
                        assert_eq!(e.kind, TraceEventKind::Instant);
                    }
                }
            })
        };
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        reader.join().unwrap();
    });

    // Final consistent snapshot: per thread, timestamps are monotone and
    // sequence numbers strictly increase (each writer had its own ring).
    let evs = my_events(run);
    assert!(!evs.is_empty());
    let mut by_tid: std::collections::HashMap<u64, Vec<&TraceEvent>> = Default::default();
    for e in &evs {
        by_tid.entry(e.tid).or_default().push(e);
    }
    for (tid, evs) in by_tid {
        assert!(evs.len() <= CAP, "ring {tid} exceeded capacity");
        for w in evs.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns, "non-monotone timestamps on tid {tid}");
            assert!(w[0].arg < w[1].arg, "out-of-order sequence on tid {tid}");
        }
        // The retained window is a contiguous run of one writer's output
        // (overwrites — by wraparound or by a later thread reusing the
        // ring — always consume the oldest slots first).
        let first = evs[0].arg & 0xffff_ffff;
        let last = evs[evs.len() - 1].arg & 0xffff_ffff;
        assert_eq!(
            (last - first + 1) as usize,
            evs.len(),
            "retained events must be contiguous on tid {tid}"
        );
    }
}

#[test]
fn clear_hides_old_events_only() {
    setup();
    let run = RunId::next();
    let _g = run.enter();
    let name = trace::intern("clear.probe");
    trace::record_instant(name, 0, 1);
    assert!(!my_events(run).is_empty());
    trace::clear();
    assert!(my_events(run).is_empty(), "clear() must hide prior events");
    trace::record_instant(name, 0, 2);
    let evs = my_events(run);
    assert_eq!(evs.len(), 1, "events after clear() must still record");
    assert_eq!(evs[0].arg, 2);
}

#[test]
fn chrome_json_round_trips_through_parser() {
    setup();
    let run = RunId::next();
    let _g = run.enter();
    let span = trace::intern("roundtrip.span");
    let mark = trace::intern("roundtrip.mark");
    let arg_name = trace::intern("items");
    trace::record_begin(span);
    trace::record_instant(mark, arg_name, 42);
    trace::record_end(span);

    let json = trace_json(&my_events(run));
    let doc = Json::parse(&json).expect("exporter must emit valid JSON");
    assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
    let evs = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert_eq!(evs.len(), 3);

    let ph = |i: usize| evs[i].get("ph").and_then(Json::as_str).unwrap();
    assert_eq!(ph(0), "B");
    assert_eq!(ph(1), "i");
    assert_eq!(ph(2), "E");
    for e in evs {
        assert!(e.get("ts").and_then(Json::as_f64).is_some(), "ts must be numeric");
        assert!(e.get("pid").is_some() && e.get("tid").is_some());
    }
    assert_eq!(evs[0].get("name").and_then(Json::as_str), Some("roundtrip.span"));
    let args = evs[1].get("args").expect("instant carries args");
    assert_eq!(args.get("items").and_then(Json::as_f64), Some(42.0));
    // Begin/End timestamps are ordered.
    let ts = |i: usize| evs[i].get("ts").and_then(Json::as_f64).unwrap();
    assert!(ts(0) <= ts(1) && ts(1) <= ts(2));
}
