//! A minimal, hardened HTTP/1.1 server over [`std::net`] with pluggable
//! routing — the transport shared by the telemetry endpoint
//! ([`crate::TelemetryServer`]) and the streaming clustering service
//! (`db-serve`).
//!
//! The server is deliberately small — thread-per-connection,
//! `Connection: close`, no TLS, no keep-alive — because its job is to be
//! scraped and poked a few times a second at most while a pipeline runs.
//! What it *is* careful about is hostile input: the request head is read
//! through a hard byte cap (endless request lines get `431` after at most
//! [`MAX_HEAD_BYTES`] bytes), half-open clients are answered `408` when
//! the read timeout fires, and request bodies are accepted only up to
//! [`MAX_BODY_BYTES`] (`413` beyond, with a bounded drain so the client
//! actually sees the response instead of a TCP reset).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::ObsdError;

/// Hard cap on the request head (request line + headers). The reader
/// itself is truncated at this limit, so an attacker streaming an endless
/// request line costs at most this much memory and gets a `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a single request line. Generous for `GET /metrics`-class
/// paths; far below [`MAX_HEAD_BYTES`] so header room remains.
pub const MAX_REQUEST_LINE_BYTES: usize = 2 * 1024;

/// Hard cap on a request body (`Content-Length` beyond this is answered
/// `413` without reading the body). Sized for batched point ingests:
/// ~4 MiB of JSON is tens of thousands of points per request.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request, as handed to a [`Handler`].
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`, ...), uppercase as sent.
    pub method: String,
    /// Path without the query string (`/label`, not `/label?point=1`).
    pub path: String,
    /// The query string after `?`, if any (not URL-decoded).
    pub query: Option<String>,
    /// The request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The body as UTF-8, if valid.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }

    /// Looks up a `key=value` pair in the query string (no decoding; the
    /// service's parameters are plain numbers and commas).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .as_deref()?
            .split('&')
            .find_map(|kv| kv.split_once('=').filter(|(k, _)| *k == key).map(|(_, v)| v))
    }
}

/// A response to send back. Construct via the helpers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200` plain-text response.
    pub fn ok_text(body: impl Into<String>) -> Self {
        Self::text(200, body)
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8".into(), body: body.into() }
    }

    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response { status, content_type: "application/json".into(), body: body.into() }
    }

    /// The conventional `404 not found` body.
    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }

    /// The conventional `405 method not allowed` body.
    pub fn method_not_allowed() -> Self {
        Self::text(405, "method not allowed\n")
    }
}

/// A request handler: pure function from request to response, called on
/// the per-connection thread. Must be cheap or internally bounded — it
/// blocks only its own connection, never the accept loop.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// A running HTTP server. Dropping it shuts the listener down (best
/// effort); call [`HttpServer::shutdown`] to do so explicitly and join
/// the accept thread.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving `handler` in a background accept thread
    /// named `name`.
    ///
    /// # Errors
    ///
    /// [`ObsdError::Bind`] when the address cannot be bound; the server
    /// never panics on I/O.
    pub fn start(addr: &str, name: &str, handler: Arc<Handler>) -> Result<HttpServer, ObsdError> {
        let listener = TcpListener::bind(addr)
            .map_err(|source| ObsdError::Bind { addr: addr.to_string(), source })?;
        let local = listener.local_addr().map_err(|source| ObsdError::Accept { source })?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("{name}-accept"))
                .spawn(move || accept_loop(&listener, &stop, &handler))
                .map_err(|source| ObsdError::Accept { source })?
        };
        Ok(HttpServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The address actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it. Idempotent.
    /// In-flight request handlers finish on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept call blocks until a connection arrives; poke it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, handler: &Arc<Handler>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                // Short-lived handler; detached so a slow client never
                // stalls the accept loop.
                let handler = Arc::clone(handler);
                let _ = std::thread::Builder::new()
                    .name("db-obsd-conn".into())
                    .spawn(move || handle_connection(stream, handler.as_ref()));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept errors (e.g. aborted handshakes) are
                // not worth dying over; bail only when asked to stop.
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// How the request head ended.
enum Head {
    /// Complete head: the request line plus the parsed `Content-Length`
    /// (0 when absent or unparseable).
    Complete(String, usize),
    /// The head (or the request line alone) exceeded its byte cap.
    Oversized,
    /// The client stopped sending before completing the head.
    HalfOpen,
    /// Connection unusable (reset, clone failure, empty read).
    Dead,
}

/// Reads the request head from `reader` (already capped at
/// [`MAX_HEAD_BYTES`] by a [`io::Read::take`]) and classifies it.
fn read_head(reader: &mut impl BufRead) -> Head {
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Ok(0) => return Head::Dead,
        // `take` makes a cap overrun look like clean EOF: no newline.
        Ok(_) if !request_line.ends_with('\n') => return Head::Oversized,
        Ok(_) if request_line.len() > MAX_REQUEST_LINE_BYTES => return Head::Oversized,
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return Head::HalfOpen,
        Err(_) => return Head::Dead,
    }
    // Drain the headers so well-behaved clients don't see a reset,
    // remembering Content-Length for body-carrying requests.
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            // EOF before the blank line: either the `take` cap truncated
            // the head, or the client half-closed; both get a clean 4xx.
            Ok(0) => return Head::Oversized,
            Ok(_) if line == "\r\n" || line == "\n" => {
                return Head::Complete(request_line, content_length)
            }
            Ok(_) => {
                if let Some((name, value)) = line.split_once(':') {
                    if name.eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().unwrap_or(0);
                    }
                }
            }
            Err(e) if is_timeout(&e) => return Head::HalfOpen,
            Err(_) => return Head::Dead,
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream, handler: &Handler) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let clone = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(Read::take(clone, MAX_HEAD_BYTES as u64));

    let (request_line, content_length) = match read_head(&mut reader) {
        Head::Complete(line, len) => (line, len),
        Head::Oversized => {
            respond(&stream, 431, "text/plain; charset=utf-8", "request head too large\n");
            // Closing with unread input pending triggers a TCP reset that
            // can discard the response; drain (bounded) so the client
            // actually sees the 431.
            return drain_excess(stream);
        }
        Head::HalfOpen => {
            return respond(&stream, 408, "text/plain; charset=utf-8", "request timeout\n");
        }
        Head::Dead => return,
    };

    let mut parts = request_line.split_whitespace();
    let (method, raw_path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&stream, 400, "text/plain; charset=utf-8", "bad request\n"),
    };

    // Read the body, bounded. Bodies on GETs are tolerated and drained.
    if content_length > MAX_BODY_BYTES {
        respond(&stream, 413, "text/plain; charset=utf-8", "request body too large\n");
        return drain_excess(stream);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        // The head reader was capped; its `take` may already hold buffered
        // body bytes and its remaining limit may be short of the body.
        // Extend the limit by exactly what is still missing.
        let buffered = reader.buffer().len();
        let missing = content_length.saturating_sub(buffered) as u64;
        reader.get_mut().set_limit(missing);
        match reader.read_exact(&mut body) {
            Ok(()) => {}
            Err(e) if is_timeout(&e) => {
                return respond(&stream, 408, "text/plain; charset=utf-8", "request timeout\n");
            }
            Err(_) => return,
        }
    }

    let (path, query) = match raw_path.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (raw_path.to_string(), None),
    };
    let request = Request { method: method.to_string(), path, query, body };
    let response = handler(&request);
    respond(&stream, response.status, &response.content_type, &response.body);
}

/// Discards whatever the client is still sending, bounded in bytes and by
/// the socket read timeout, then half-closes. Used after an early error
/// response so the pending input does not turn the close into a reset.
fn drain_excess(stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut stream = stream;
    let mut scratch = [0u8; 1024];
    let mut budget: usize = 256 * 1024;
    while budget > 0 {
        match Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn respond(mut stream: &TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes()));
    let _ = stream.flush();
}
