//! `db-obsd`: a zero-dependency HTTP layer and telemetry endpoint.
//!
//! Two things live here:
//!
//! 1. [`http`] — a minimal, hardened HTTP/1.1 server over [`std::net`]
//!    with a pluggable [`http::Handler`]: capped request heads (`431`),
//!    capped bodies (`413`), half-open timeouts (`408`), typed bind
//!    errors, clean shutdown. `db-serve` builds the streaming clustering
//!    service on top of it.
//! 2. [`TelemetryServer`] — the classic telemetry endpoint, now a thin
//!    wrapper serving [`telemetry_response`] over an [`http::HttpServer`]:
//!
//! | route          | body                                                |
//! |----------------|-----------------------------------------------------|
//! | `GET /metrics` | Prometheus text exposition 0.0.4 of the metric
//! |                | registry (counters, gauges, histogram buckets,
//! |                | span summaries)                                     |
//! | `GET /trace`   | the tracing ring buffers as Chrome trace JSON
//! |                | (empty `traceEvents` unless `DB_TRACE=1` and the
//! |                | `tracing` feature are on)                           |
//! | `GET /healthz` | last supervised-run health from [`db_obs::health`]:
//! |                | `200 ok` / `200 degraded: …` / `503 failing: …`     |
//!
//! Every telemetry handler only *reads* shared state (a metrics snapshot
//! or a seqlock ring copy), so scrapes never block the instrumented code.
//!
//! Errors are typed ([`ObsdError`]); in particular binding a busy port
//! reports [`ObsdError::Bind`] with an address-in-use message instead of
//! panicking, so callers can print a clear diagnostic and exit.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod http;

use std::fmt;
use std::io;
use std::net::SocketAddr;
use std::sync::Arc;

pub use http::{
    Handler, HttpServer, Request, Response, MAX_BODY_BYTES, MAX_HEAD_BYTES, MAX_REQUEST_LINE_BYTES,
};

/// Everything that can go wrong running a server from this crate.
#[derive(Debug)]
pub enum ObsdError {
    /// Binding the listen address failed (port in use, bad address,
    /// missing privileges, ...).
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The accept loop died on a non-transient error.
    Accept {
        /// The underlying OS error.
        source: io::Error,
    },
}

impl fmt::Display for ObsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsdError::Bind { addr, source } if source.kind() == io::ErrorKind::AddrInUse => {
                write!(
                    f,
                    "telemetry address {addr} is already in use — is another run serving \
                     there? pick a different --serve address"
                )
            }
            ObsdError::Bind { addr, source } => {
                write!(f, "cannot bind telemetry address {addr}: {source}")
            }
            ObsdError::Accept { source } => {
                write!(f, "telemetry accept loop failed: {source}")
            }
        }
    }
}

impl std::error::Error for ObsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsdError::Bind { source, .. } | ObsdError::Accept { source } => Some(source),
        }
    }
}

/// Answers the three telemetry routes (`/metrics`, `/trace`, `/healthz`).
///
/// Telemetry is read-only, so any non-`GET` method is `405` — even on a
/// path another composed handler might accept for `POST`. Callers
/// composing their own routes (like `db-serve`) should therefore try
/// their routes *first* and fall back to this for everything else.
pub fn telemetry_response(req: &Request) -> Response {
    if req.method != "GET" {
        return Response::method_not_allowed();
    }
    match req.path.as_str() {
        "/healthz" => {
            let report = db_obs::health::current();
            match report.status {
                db_obs::health::Status::Unknown | db_obs::health::Status::Ok => {
                    Response::ok_text("ok\n")
                }
                db_obs::health::Status::Degraded => {
                    Response::text(200, format!("degraded: {}\n", report.detail))
                }
                db_obs::health::Status::Failing => {
                    Response::text(503, format!("failing: {}\n", report.detail))
                }
            }
        }
        "/metrics" => Response {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8".into(),
            body: db_obs::prometheus_text(&db_obs::snapshot()),
        },
        "/trace" => Response::json(200, db_obs::trace_json(&db_obs::trace::events())),
        _ => Response::not_found(),
    }
}

/// A running telemetry endpoint. Dropping it shuts the listener down
/// (best effort); call [`TelemetryServer::shutdown`] to do so explicitly
/// and join the accept thread.
#[derive(Debug)]
pub struct TelemetryServer {
    inner: HttpServer,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving in a background thread.
    ///
    /// # Errors
    ///
    /// [`ObsdError::Bind`] when the address cannot be bound; the server
    /// never panics on I/O.
    pub fn start(addr: &str) -> Result<TelemetryServer, ObsdError> {
        let inner = HttpServer::start(addr, "db-obsd", Arc::new(telemetry_response))?;
        Ok(TelemetryServer { inner })
    }

    /// The address actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr()
    }

    /// Stops accepting, wakes the accept loop, and joins it. Idempotent.
    /// In-flight request handlers finish on their own threads.
    pub fn shutdown(&mut self) {
        self.inner.shutdown();
    }
}
