//! `db-obsd`: a zero-dependency telemetry endpoint for long runs.
//!
//! [`TelemetryServer::start`] binds a [`std::net::TcpListener`] and serves
//! the process's live observability state over plain HTTP/1.1:
//!
//! | route          | body                                                |
//! |----------------|-----------------------------------------------------|
//! | `GET /metrics` | Prometheus text exposition 0.0.4 of the metric
//! |                | registry (counters, gauges, histogram buckets,
//! |                | span summaries)                                     |
//! | `GET /trace`   | the tracing ring buffers as Chrome trace JSON
//! |                | (empty `traceEvents` unless `DB_TRACE=1` and the
//! |                | `tracing` feature are on)                           |
//! | `GET /healthz` | last supervised-run health from [`db_obs::health`]:
//! |                | `200 ok` / `200 degraded: …` / `503 failing: …`     |
//!
//! The server is deliberately minimal — thread-per-connection,
//! `Connection: close`, no TLS, no keep-alive — because its job is to be
//! scraped by `curl`/Prometheus a few times a second at most while a
//! pipeline runs, with zero effect on the run itself. Every request
//! handler only *reads* shared state (a metrics snapshot or a seqlock
//! ring copy), so scrapes never block the instrumented code.
//!
//! Errors are typed ([`ObsdError`]); in particular binding a busy port
//! reports [`ObsdError::Bind`] with an address-in-use message instead of
//! panicking, so callers can print a clear diagnostic and exit.
//!
//! Request parsing is defensive: the whole request head (request line +
//! headers) is read through a hard byte cap, so a client streaming an
//! endless request line is answered `431` after at most
//! [`MAX_HEAD_BYTES`] bytes instead of growing a string unboundedly, and
//! a half-open client that stops sending mid-head gets `408` when the
//! read timeout fires.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything that can go wrong running the telemetry server.
#[derive(Debug)]
pub enum ObsdError {
    /// Binding the listen address failed (port in use, bad address,
    /// missing privileges, ...).
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying OS error.
        source: io::Error,
    },
    /// The accept loop died on a non-transient error.
    Accept {
        /// The underlying OS error.
        source: io::Error,
    },
}

impl fmt::Display for ObsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsdError::Bind { addr, source } if source.kind() == io::ErrorKind::AddrInUse => {
                write!(
                    f,
                    "telemetry address {addr} is already in use — is another run serving \
                     there? pick a different --serve address"
                )
            }
            ObsdError::Bind { addr, source } => {
                write!(f, "cannot bind telemetry address {addr}: {source}")
            }
            ObsdError::Accept { source } => {
                write!(f, "telemetry accept loop failed: {source}")
            }
        }
    }
}

impl std::error::Error for ObsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsdError::Bind { source, .. } | ObsdError::Accept { source } => Some(source),
        }
    }
}

/// A running telemetry endpoint. Dropping it shuts the listener down
/// (best effort); call [`TelemetryServer::shutdown`] to do so explicitly
/// and join the accept thread.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (e.g. `127.0.0.1:9184`, or port `0` for an ephemeral
    /// port) and starts serving in a background thread.
    ///
    /// # Errors
    ///
    /// [`ObsdError::Bind`] when the address cannot be bound; the server
    /// never panics on I/O.
    pub fn start(addr: &str) -> Result<TelemetryServer, ObsdError> {
        let listener = TcpListener::bind(addr)
            .map_err(|source| ObsdError::Bind { addr: addr.to_string(), source })?;
        let local = listener.local_addr().map_err(|source| ObsdError::Accept { source })?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("db-obsd-accept".into())
                .spawn(move || accept_loop(&listener, &stop))
                .map_err(|source| ObsdError::Accept { source })?
        };
        Ok(TelemetryServer { addr: local, stop, accept_thread: Some(accept_thread) })
    }

    /// The address actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, wakes the accept loop, and joins it. Idempotent.
    /// In-flight request handlers finish on their own threads.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        // The accept call blocks until a connection arrives; poke it.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                // Short-lived handler; detached so a slow client never
                // stalls the accept loop.
                let _ = std::thread::Builder::new()
                    .name("db-obsd-conn".into())
                    .spawn(move || handle_connection(stream));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // Transient accept errors (e.g. aborted handshakes) are
                // not worth dying over; bail only when asked to stop.
                if stop.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

/// Hard cap on the request head (request line + headers). The reader
/// itself is truncated at this limit, so an attacker streaming an endless
/// request line costs at most this much memory and gets a `431`.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Hard cap on a single request line. Generous for `GET /metrics`-class
/// paths; far below [`MAX_HEAD_BYTES`] so header room remains.
pub const MAX_REQUEST_LINE_BYTES: usize = 2 * 1024;

/// How the request head ended.
enum Head {
    /// Complete head, with the request line extracted.
    Complete(String),
    /// The head (or the request line alone) exceeded its byte cap.
    Oversized,
    /// The client stopped sending before completing the head.
    HalfOpen,
    /// Connection unusable (reset, clone failure, empty read).
    Dead,
}

/// Reads the request head from `reader` (already capped at
/// [`MAX_HEAD_BYTES`] by a [`io::Read::take`]) and classifies it.
fn read_head(reader: &mut impl BufRead) -> Head {
    let mut request_line = String::new();
    match reader.read_line(&mut request_line) {
        Ok(0) => return Head::Dead,
        // `take` makes a cap overrun look like clean EOF: no newline.
        Ok(_) if !request_line.ends_with('\n') => return Head::Oversized,
        Ok(_) if request_line.len() > MAX_REQUEST_LINE_BYTES => return Head::Oversized,
        Ok(_) => {}
        Err(e) if is_timeout(&e) => return Head::HalfOpen,
        Err(_) => return Head::Dead,
    }
    // Drain the headers so well-behaved clients don't see a reset.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            // EOF before the blank line: either the `take` cap truncated
            // the head, or the client half-closed; both get a clean 4xx.
            Ok(0) => return Head::Oversized,
            Ok(_) if line == "\r\n" || line == "\n" => return Head::Complete(request_line),
            Ok(_) => {}
            Err(e) if is_timeout(&e) => return Head::HalfOpen,
            Err(_) => return Head::Dead,
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

fn handle_connection(stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let clone = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(io::Read::take(clone, MAX_HEAD_BYTES as u64));

    let request_line = match read_head(&mut reader) {
        Head::Complete(line) => line,
        Head::Oversized => {
            respond(&stream, 431, "text/plain; charset=utf-8", "request head too large\n");
            // Closing with unread input pending triggers a TCP reset that
            // can discard the response; drain (bounded) so the client
            // actually sees the 431.
            return drain_excess(stream);
        }
        Head::HalfOpen => {
            return respond(&stream, 408, "text/plain; charset=utf-8", "request timeout\n");
        }
        Head::Dead => return,
    };

    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return respond(&stream, 400, "text/plain; charset=utf-8", "bad request\n"),
    };
    if method != "GET" {
        return respond(&stream, 405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    // Ignore any query string: `/metrics?x=1` is still /metrics.
    match path.split('?').next().unwrap_or(path) {
        "/healthz" => {
            let report = db_obs::health::current();
            let (status, body) = match report.status {
                db_obs::health::Status::Unknown | db_obs::health::Status::Ok => {
                    (200, "ok\n".to_string())
                }
                db_obs::health::Status::Degraded => (200, format!("degraded: {}\n", report.detail)),
                db_obs::health::Status::Failing => (503, format!("failing: {}\n", report.detail)),
            };
            respond(&stream, status, "text/plain; charset=utf-8", &body)
        }
        "/metrics" => {
            let body = db_obs::prometheus_text(&db_obs::snapshot());
            respond(&stream, 200, "text/plain; version=0.0.4; charset=utf-8", &body)
        }
        "/trace" => {
            let body = db_obs::trace_json(&db_obs::trace::events());
            respond(&stream, 200, "application/json", &body)
        }
        _ => respond(&stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

/// Discards whatever the client is still sending, bounded in bytes and by
/// the socket read timeout, then half-closes. Used after an early error
/// response so the pending input does not turn the close into a reset.
fn drain_excess(stream: TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut stream = stream;
    let mut scratch = [0u8; 1024];
    let mut budget: usize = 256 * 1024;
    while budget > 0 {
        match io::Read::read(&mut stream, &mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(n) => budget = budget.saturating_sub(n),
        }
    }
}

fn respond(mut stream: &TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes()).and_then(|()| stream.write_all(body.as_bytes()));
    let _ = stream.flush();
}
