//! Tests for the generic routed HTTP layer (`db_obsd::http`) that the
//! streaming service builds on: POST bodies are delivered intact and the
//! body cap is enforced with a `413`, not a hang or a reset.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use db_obsd::{HttpServer, Request, Response, MAX_BODY_BYTES};

fn start_echo() -> HttpServer {
    HttpServer::start(
        "127.0.0.1:0",
        "echo-test",
        Arc::new(|req: &Request| match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/echo") => Response::ok_text(format!(
                "len={} body={}",
                req.body.len(),
                req.body_str().unwrap_or("<non-utf8>")
            )),
            ("GET", "/param") => {
                Response::ok_text(req.query_param("point").unwrap_or("<missing>").to_string())
            }
            _ => Response::not_found(),
        }),
    )
    .expect("bind ephemeral port")
}

fn raw_request(addr: std::net::SocketAddr, request: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    stream.write_all(request).expect("send");
    let mut out = String::new();
    let _ = stream.read_to_string(&mut out);
    out
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
    raw_request(
        addr,
        format!("POST {path} HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}", body.len())
            .as_bytes(),
    )
}

#[test]
fn post_body_is_delivered_intact() {
    let mut server = start_echo();
    let body = "hello bubbles";
    let resp = post(server.addr(), "/echo", body);
    assert!(resp.starts_with("HTTP/1.1 200"), "got: {resp}");
    assert!(resp.ends_with(&format!("len={} body={}", body.len(), body)), "got: {resp}");
    server.shutdown();
}

#[test]
fn large_body_crossing_the_head_buffer_still_arrives_whole() {
    // A body much larger than MAX_HEAD_BYTES exercises the limit handoff
    // from the capped head reader to the body reader.
    let mut server = start_echo();
    let body = "x".repeat(64 * 1024);
    let resp = post(server.addr(), "/echo", &body);
    assert!(resp.starts_with("HTTP/1.1 200"), "got: {}", &resp[..resp.len().min(200)]);
    assert!(resp.contains(&format!("len={}", body.len())));
    server.shutdown();
}

#[test]
fn oversized_content_length_gets_413_without_reading_the_body() {
    let mut server = start_echo();
    let resp = raw_request(
        server.addr(),
        format!("POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1)
            .as_bytes(),
    );
    assert!(resp.starts_with("HTTP/1.1 413"), "got: {resp}");
    server.shutdown();
}

#[test]
fn query_params_are_parsed() {
    let mut server = start_echo();
    let resp =
        raw_request(server.addr(), b"GET /param?other=1&point=1.5,2.5 HTTP/1.1\r\nHost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "got: {resp}");
    assert!(resp.ends_with("1.5,2.5"), "got: {resp}");
    server.shutdown();
}
