//! End-to-end tests for the telemetry server over real sockets: every
//! route, concurrent scrapes during active recording, typed bind errors,
//! and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use db_obsd::{ObsdError, TelemetryServer};

/// Issues one HTTP/1.1 request and returns (status, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn serves_all_routes() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Register something so /metrics has content to expose.
    db_obs::counter!("obsd.test_requests").add(3);
    let (status, body) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    #[cfg(feature = "metrics")]
    {
        assert!(body.contains("# TYPE obsd_test_requests counter"), "missing TYPE: {body}");
        assert!(body.contains("obsd_test_requests 3"), "missing sample: {body}");
    }
    #[cfg(not(feature = "metrics"))]
    assert!(body.is_empty());

    let (status, body) = request(addr, "GET", "/trace");
    assert_eq!(status, 200);
    let doc = db_obs::Json::parse(&body).expect("/trace must serve valid JSON");
    assert!(doc.get("traceEvents").is_some());

    // Query strings are ignored, unknown paths 404, non-GET 405.
    assert_eq!(request(addr, "GET", "/healthz?verbose=1").0, 200);
    assert_eq!(request(addr, "GET", "/nope").0, 404);
    assert_eq!(request(addr, "POST", "/metrics").0, 405);
}

#[test]
fn concurrent_scrapes_during_recording() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();
    #[cfg(feature = "tracing")]
    db_obs::trace::set_enabled(true);

    std::thread::scope(|s| {
        // A writer hammers the metrics + trace ring while scrapers read.
        let writer = s.spawn(|| {
            for i in 0..20_000u64 {
                db_obs::counter!("obsd.scrape_race").add(1);
                db_obs::histogram!("obsd.scrape_race_hist").record((i & 0xff) as f64);
                db_obs::trace_instant!("obsd.scrape_mark", "i", i);
            }
        });
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    for _ in 0..25 {
                        let (status, body) = request(addr, "GET", "/metrics");
                        assert_eq!(status, 200);
                        // Exposition must stay well-formed mid-run: every
                        // non-comment line is `name{labels} value`.
                        for line in body.lines().filter(|l| !l.starts_with('#')) {
                            let mut it = line.rsplitn(2, ' ');
                            let value = it.next().unwrap();
                            assert!(
                                value == "NaN"
                                    || value.parse::<f64>().is_ok()
                                    || value.starts_with("+Inf"),
                                "bad sample line {line:?}"
                            );
                        }
                        let (status, body) = request(addr, "GET", "/trace");
                        assert_eq!(status, 200);
                        db_obs::Json::parse(&body).expect("torn /trace JSON");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for sc in scrapers {
            sc.join().unwrap();
        }
    });
}

#[test]
fn bind_conflict_is_a_typed_error() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr().to_string();
    let err = TelemetryServer::start(&addr).expect_err("second bind must fail");
    match &err {
        ObsdError::Bind { addr: a, .. } => assert_eq!(a, &addr),
        other => panic!("expected Bind error, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains(&addr), "message should name the address: {msg}");
    assert!(msg.contains("already in use"), "message should say why: {msg}");
}

#[test]
fn shutdown_releases_the_port() {
    let mut server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/healthz").0, 200);
    server.shutdown();
    server.shutdown(); // idempotent
    drop(server);
    // The port is free again (SO_REUSEADDR is not set, so a successful
    // rebind proves the listener actually closed).
    let rebound =
        TelemetryServer::start(&addr.to_string()).expect("port must be reusable after shutdown");
    assert_eq!(request(rebound.addr(), "GET", "/healthz").0, 200);
}
