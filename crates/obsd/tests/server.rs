//! End-to-end tests for the telemetry server over real sockets: every
//! route, concurrent scrapes during active recording, typed bind errors,
//! and graceful shutdown.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use db_obsd::{ObsdError, TelemetryServer, MAX_HEAD_BYTES, MAX_REQUEST_LINE_BYTES};

/// Serializes tests that read or write the process-global health slot.
static HEALTH_SERIAL: Mutex<()> = Mutex::new(());

/// Issues one HTTP/1.1 request and returns (status, body).
fn request(addr: std::net::SocketAddr, method: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn serves_all_routes() {
    let _health = HEALTH_SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    db_obs::health::reset();
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();

    let (status, body) = request(addr, "GET", "/healthz");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    // Register something so /metrics has content to expose.
    db_obs::counter!("obsd.test_requests").add(3);
    let (status, body) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    #[cfg(feature = "metrics")]
    {
        assert!(body.contains("# TYPE obsd_test_requests counter"), "missing TYPE: {body}");
        assert!(body.contains("obsd_test_requests 3"), "missing sample: {body}");
    }
    #[cfg(not(feature = "metrics"))]
    assert!(body.is_empty());

    let (status, body) = request(addr, "GET", "/trace");
    assert_eq!(status, 200);
    let doc = db_obs::Json::parse(&body).expect("/trace must serve valid JSON");
    assert!(doc.get("traceEvents").is_some());

    // Query strings are ignored, unknown paths 404, non-GET 405.
    assert_eq!(request(addr, "GET", "/healthz?verbose=1").0, 200);
    assert_eq!(request(addr, "GET", "/nope").0, 404);
    assert_eq!(request(addr, "POST", "/metrics").0, 405);
}

#[test]
fn concurrent_scrapes_during_recording() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();
    #[cfg(feature = "tracing")]
    db_obs::trace::set_enabled(true);

    std::thread::scope(|s| {
        // A writer hammers the metrics + trace ring while scrapers read.
        let writer = s.spawn(|| {
            for i in 0..20_000u64 {
                db_obs::counter!("obsd.scrape_race").add(1);
                db_obs::histogram!("obsd.scrape_race_hist").record((i & 0xff) as f64);
                db_obs::trace_instant!("obsd.scrape_mark", "i", i);
            }
        });
        let scrapers: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(move || {
                    for _ in 0..25 {
                        let (status, body) = request(addr, "GET", "/metrics");
                        assert_eq!(status, 200);
                        // Exposition must stay well-formed mid-run: every
                        // non-comment line is `name{labels} value`.
                        for line in body.lines().filter(|l| !l.starts_with('#')) {
                            let mut it = line.rsplitn(2, ' ');
                            let value = it.next().unwrap();
                            assert!(
                                value == "NaN"
                                    || value.parse::<f64>().is_ok()
                                    || value.starts_with("+Inf"),
                                "bad sample line {line:?}"
                            );
                        }
                        let (status, body) = request(addr, "GET", "/trace");
                        assert_eq!(status, 200);
                        db_obs::Json::parse(&body).expect("torn /trace JSON");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for sc in scrapers {
            sc.join().unwrap();
        }
    });
}

#[test]
fn healthz_reflects_last_run_health() {
    let _health = HEALTH_SERIAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();

    db_obs::health::reset();
    assert_eq!(request(addr, "GET", "/healthz"), (200, "ok\n".to_string()));

    db_obs::health::report_ok();
    assert_eq!(request(addr, "GET", "/healthz"), (200, "ok\n".to_string()));

    db_obs::health::report_degraded("halved k to 8");
    assert_eq!(request(addr, "GET", "/healthz"), (200, "degraded: halved k to 8\n".to_string()));

    db_obs::health::report_failing("deadline exceeded during clustering after 0.051s");
    let (status, body) = request(addr, "GET", "/healthz");
    assert_eq!(status, 503);
    assert_eq!(body, "failing: deadline exceeded during clustering after 0.051s\n");

    db_obs::health::reset();
}

/// Sends `raw` as-is (no terminating blank line added) and returns the
/// status code, or `None` if the server closed without responding.
fn raw_request(addr: std::net::SocketAddr, raw: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(raw).expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).ok()?;
    response.split_whitespace().nth(1).and_then(|s| s.parse().ok())
}

#[test]
fn oversized_request_line_gets_431_without_buffering_it() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();

    // A request line longer than its own cap (but with a proper head).
    let long_path = "x".repeat(MAX_REQUEST_LINE_BYTES + 100);
    let raw = format!("GET /{long_path} HTTP/1.1\r\n\r\n");
    assert_eq!(raw_request(addr, raw.as_bytes()), Some(431));

    // An endless request line: more than the whole head cap, no newline
    // at all. The server must answer promptly (bounded read), not wait
    // for a line that never ends.
    let t0 = Instant::now();
    let endless = vec![b'a'; MAX_HEAD_BYTES + 4096];
    assert_eq!(raw_request(addr, &endless), Some(431));
    assert!(t0.elapsed() < Duration::from_secs(2), "431 must not wait out the read timeout");

    // Headers exceeding the head cap (request line fine) also 431.
    let fat_headers =
        format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES));
    assert_eq!(raw_request(addr, fat_headers.as_bytes()), Some(431));

    // The server is still healthy afterwards.
    assert_eq!(request(addr, "GET", "/metrics").0, 200);
}

#[test]
fn half_open_slow_client_gets_408_and_never_wedges_the_server() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();

    // Send a partial request line, then go silent: the server's read
    // timeout must fire and answer 408 instead of holding the socket.
    let mut slow = TcpStream::connect(addr).expect("connect");
    slow.write_all(b"GET /metr").expect("partial write");
    slow.set_read_timeout(Some(Duration::from_secs(10))).unwrap();

    // While the slow client is stalled, other clients are served (the
    // handler is per-connection, so this also proves no accept-loop
    // head-of-line blocking).
    assert_eq!(request(addr, "GET", "/healthz").0, 200);

    let mut response = String::new();
    slow.read_to_string(&mut response).expect("read 408");
    assert!(response.starts_with("HTTP/1.1 408 "), "expected 408, got {response:?}");

    // Same for a client that completes the request line but stalls
    // mid-headers.
    let mut stalled = TcpStream::connect(addr).expect("connect");
    stalled.write_all(b"GET /healthz HTTP/1.1\r\nHost: test\r\n").expect("partial head");
    stalled.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut response = String::new();
    stalled.read_to_string(&mut response).expect("read 408");
    assert!(response.starts_with("HTTP/1.1 408 "), "expected 408, got {response:?}");
}

#[test]
fn bind_conflict_is_a_typed_error() {
    let server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr().to_string();
    let err = TelemetryServer::start(&addr).expect_err("second bind must fail");
    match &err {
        ObsdError::Bind { addr: a, .. } => assert_eq!(a, &addr),
        other => panic!("expected Bind error, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains(&addr), "message should name the address: {msg}");
    assert!(msg.contains("already in use"), "message should say why: {msg}");
}

#[test]
fn shutdown_releases_the_port() {
    let mut server = TelemetryServer::start("127.0.0.1:0").expect("start");
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/healthz").0, 200);
    server.shutdown();
    server.shutdown(); // idempotent
    drop(server);
    // The port is free again (SO_REUSEADDR is not set, so a successful
    // rebind proves the listener actually closed).
    let rebound =
        TelemetryServer::start(&addr.to_string()).expect("port must be reusable after shutdown");
    assert_eq!(request(rebound.addr(), "GET", "/healthz").0, 200);
}
