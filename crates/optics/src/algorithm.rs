//! The OPTICS walk (Ankerst et al. 1999, Figures 5–7), generic over
//! [`OpticsSpace`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use db_spatial::order::DistId;
use db_spatial::{Dataset, Neighbor};
use db_supervise::{Stop, Supervisor, Ticker};

use crate::ordering::{ClusterOrdering, OrderingEntry, UNDEFINED};
use crate::space::{OpticsParams, OpticsSpace, PointSpace};

/// Cooperative-check cadence of the walk: every processed object costs a
/// neighbourhood query (O(k) or a matrix-row lookup), so consulting the
/// supervisor every 16 objects reacts well within the 50ms target.
const WALK_TICK: u32 = 16;

// Seed-list entries are (reachability, id) pairs under the shared total
// order [`DistId`]; the heap is a min-heap over it, with lazy deletion
// of stale entries.

/// Runs OPTICS over any [`OpticsSpace`], producing the cluster ordering.
///
/// Objects are visited in id order when a fresh walk start is needed, so
/// the result is fully deterministic.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps < 0`.
pub fn optics<S: OpticsSpace>(space: &S, params: &OpticsParams) -> ClusterOrdering {
    match optics_supervised(space, params, &Supervisor::unlimited()) {
        Ok(ordering) => ordering,
        Err(stop) => panic!("unsupervised OPTICS walk stopped: {stop}"),
    }
}

/// [`optics`] under supervision: the walk consults `sup` every
/// [`WALK_TICK`] processed objects. On `Err` the partial ordering is
/// discarded; on `Ok` the result is bit-for-bit the unsupervised one.
///
/// # Errors
///
/// [`Stop`] when cancelled or past the deadline.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps < 0`.
pub fn optics_supervised<S: OpticsSpace>(
    space: &S,
    params: &OpticsParams,
    sup: &Supervisor,
) -> Result<ClusterOrdering, Stop> {
    assert!(params.min_pts >= 1, "MinPts must be at least 1");
    assert!(params.eps >= 0.0, "eps must be non-negative");
    let _span = db_obs::span!("optics.walk");
    let mut ticker = Ticker::new(sup, WALK_TICK);
    let n = space.len();
    let mut ordering = ClusterOrdering {
        entries: Vec::with_capacity(n),
        eps: params.eps,
        min_pts: params.min_pts,
    };
    let mut processed = vec![false; n];
    // Best reachability seen so far per object; used both as decrease-key
    // state and to detect stale heap entries.
    let mut reach = vec![UNDEFINED; n];
    let mut heap: BinaryHeap<Reverse<DistId>> = BinaryHeap::new();
    let mut neighbors: Vec<Neighbor> = Vec::new();

    let process = |i: usize,
                   reachability: f64,
                   processed: &mut Vec<bool>,
                   reach: &mut Vec<f64>,
                   heap: &mut BinaryHeap<Reverse<DistId>>,
                   neighbors: &mut Vec<Neighbor>,
                   ordering: &mut ClusterOrdering| {
        processed[i] = true;
        space.neighborhood(i, params.eps, neighbors);
        db_obs::counter!("optics.neighborhood_queries").incr();
        db_obs::histogram!("optics.neighborhood_size").record(neighbors.len() as f64);
        let core = space.core_distance(i, params.min_pts, neighbors);
        db_obs::counter!("optics.core_distance_queries").incr();
        ordering.entries.push(OrderingEntry {
            id: i,
            reachability,
            core_distance: core.unwrap_or(UNDEFINED),
            weight: space.weight(i),
        });
        if let Some(core) = core {
            // Update the seed list with every unprocessed neighbour.
            for nb in neighbors.iter() {
                if processed[nb.id] {
                    continue;
                }
                let new_reach = core.max(nb.dist);
                if new_reach < reach[nb.id] {
                    reach[nb.id] = new_reach;
                    heap.push(Reverse(DistId(new_reach, nb.id)));
                    db_obs::counter!("optics.seed_updates").incr();
                }
            }
        }
    };

    for start in 0..n {
        if processed[start] {
            continue;
        }
        ticker.tick()?;
        // A fresh walk start has undefined reachability.
        process(
            start,
            UNDEFINED,
            &mut processed,
            &mut reach,
            &mut heap,
            &mut neighbors,
            &mut ordering,
        );
        // Drain the seed list (lazy deletion of stale entries).
        while let Some(Reverse(DistId(r, id))) = heap.pop() {
            if processed[id] || r > reach[id] {
                db_obs::counter!("optics.stale_seed_skips").incr();
                continue;
            }
            ticker.tick()?;
            process(id, r, &mut processed, &mut reach, &mut heap, &mut neighbors, &mut ordering);
        }
    }
    db_obs::log_debug!(
        "walk done: {} objects ordered (eps {:.3e}, MinPts {})",
        ordering.entries.len(),
        params.eps,
        params.min_pts
    );
    Ok(ordering)
}

/// Convenience wrapper: OPTICS over a plain dataset with an automatically
/// selected spatial index.
pub fn optics_points(ds: &Dataset, params: &OpticsParams) -> ClusterOrdering {
    let eps_hint = params.eps.is_finite().then_some(params.eps);
    let space = PointSpace::new(ds, eps_hint);
    optics(&space, params)
}

/// [`optics_points`] under supervision (see [`optics_supervised`]).
///
/// # Errors
///
/// [`Stop`] when cancelled or past the deadline.
pub fn optics_points_supervised(
    ds: &Dataset,
    params: &OpticsParams,
    sup: &Supervisor,
) -> Result<ClusterOrdering, Stop> {
    let eps_hint = params.eps.is_finite().then_some(params.eps);
    let space = PointSpace::new(ds, eps_hint);
    optics_supervised(&space, params, sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::extract_dbscan;

    fn line_clusters() -> Dataset {
        // Cluster around 0 (0.0..0.9), cluster around 50 (50.0..50.9),
        // one isolated point at 200.
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..10 {
            ds.push(&[i as f64 * 0.1]).unwrap();
        }
        for i in 0..10 {
            ds.push(&[50.0 + i as f64 * 0.1]).unwrap();
        }
        ds.push(&[200.0]).unwrap();
        ds
    }

    #[test]
    fn ordering_is_a_permutation() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: 5.0, min_pts: 3 });
        assert_eq!(o.len(), ds.len());
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn clusters_form_contiguous_walk_segments() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: 5.0, min_pts: 3 });
        // Objects 0..10 must appear consecutively, as must 10..20.
        let walk: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        let first_cluster: Vec<bool> = walk.iter().map(|&id| id < 10).collect();
        let transitions = first_cluster.windows(2).filter(|w| w[0] != w[1]).count();
        // One block of cluster-0 ids, one block of cluster-1 ids, the
        // isolated point somewhere at a boundary: at most 2 transitions.
        assert!(transitions <= 2, "walk interleaves clusters: {walk:?}");
    }

    #[test]
    fn reachabilities_are_low_inside_high_between() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 3 });
        // Exactly one walk start (first entry) with undefined reachability
        // because eps=∞ keeps everything connected.
        let undefined = o.entries.iter().filter(|e| !e.has_reachability()).count();
        assert_eq!(undefined, 1);
        // There must be a jump ≥ 49 somewhere (between the clusters) and
        // another ≥ 149 (to the isolated point).
        let mut finite: Vec<f64> =
            o.entries.iter().filter(|e| e.has_reachability()).map(|e| e.reachability).collect();
        finite.sort_by(f64::total_cmp);
        let top2 = &finite[finite.len() - 2..];
        assert!(top2[0] > 40.0 && top2[1] > 140.0, "jumps missing: {top2:?}");
        // Within-cluster reachabilities are tiny.
        let small = finite.iter().filter(|&&r| r < 0.5).count();
        assert!(small >= 17, "expected mostly small reachabilities, got {small}");
    }

    #[test]
    fn extract_dbscan_recovers_ground_truth() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: 5.0, min_pts: 3 });
        let labels = extract_dbscan(&o, 0.5, ds.len());
        // Points 0..10 share a label, 10..20 share another, 20 is noise.
        assert!(labels[..10].iter().all(|&l| l == labels[0] && l >= 0));
        assert!(labels[10..20].iter().all(|&l| l == labels[10] && l >= 0));
        assert_ne!(labels[0], labels[10]);
        assert_eq!(labels[20], -1);
    }

    #[test]
    fn isolated_points_have_undefined_core_distance() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: 1.0, min_pts: 3 });
        let iso = o.entries.iter().find(|e| e.id == 20).unwrap();
        assert!(!iso.is_core());
        assert!(!iso.has_reachability());
    }

    #[test]
    fn single_object_space() {
        let ds = Dataset::from_rows(2, &[&[1.0, 1.0]]).unwrap();
        let o = optics_points(&ds, &OpticsParams { eps: 1.0, min_pts: 1 });
        assert_eq!(o.len(), 1);
        assert_eq!(o.entries[0].id, 0);
        assert!(!o.entries[0].has_reachability());
        assert_eq!(o.entries[0].core_distance, 0.0); // its own 1-distance
    }

    #[test]
    fn empty_space() {
        let ds = Dataset::new(2).unwrap();
        let o = optics_points(&ds, &OpticsParams::default());
        assert!(o.is_empty());
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let ds = line_clusters();
        let o = optics_points(&ds, &OpticsParams { eps: 1.0, min_pts: 1 });
        assert!(o.entries.iter().all(|e| e.core_distance == 0.0));
    }

    #[test]
    #[should_panic(expected = "MinPts")]
    fn zero_min_pts_panics() {
        let ds = line_clusters();
        optics_points(&ds, &OpticsParams { eps: 1.0, min_pts: 0 });
    }

    #[test]
    fn deterministic() {
        let ds = line_clusters();
        let p = OpticsParams { eps: 5.0, min_pts: 3 };
        assert_eq!(optics_points(&ds, &p), optics_points(&ds, &p));
    }

    #[test]
    fn walk_respects_priority_of_closest_seed() {
        // Three points: 0 at x=0, 1 at x=1, 2 at x=3. Starting at 0 with
        // MinPts=2, the walk must visit 1 before 2.
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[3.0]]).unwrap();
        let o = optics_points(&ds, &OpticsParams { eps: 10.0, min_pts: 2 });
        let walk: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        assert_eq!(walk, vec![0, 1, 2]);
        // Reachability of 1 w.r.t. 0: max(core-dist(0)=1, d=1) = 1.
        assert_eq!(o.entries[1].reachability, 1.0);
        // Reachability of 2: from 1, max(core-dist(1)=1, d=2) = 2.
        assert_eq!(o.entries[2].reachability, 2.0);
    }
}
