//! DBSCAN (Ester, Kriegel, Sander, Xu, KDD 1996) — the flat density-based
//! cluster notion underlying OPTICS (reference [5] of the Data Bubbles
//! paper). Used as an independent baseline and to cross-check
//! [`crate::extract_dbscan`].

use std::collections::VecDeque;

use db_spatial::{Dataset, Neighbor};

use crate::space::{OpticsSpace, PointSpace};

/// DBSCAN over any [`OpticsSpace`]. Returns one label per object:
/// cluster ids `0..`, or `-1` for noise. Border objects are assigned to the
/// first cluster that reaches them (as in the original algorithm).
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps < 0`.
pub fn dbscan_core<S: OpticsSpace>(space: &S, eps: f64, min_pts: usize) -> Vec<i32> {
    assert!(min_pts >= 1, "MinPts must be at least 1");
    assert!(eps >= 0.0, "eps must be non-negative");
    let n = space.len();
    let mut labels = vec![-1i32; n];
    let mut visited = vec![false; n];
    let mut cluster = -1i32;
    let mut neighbors: Vec<Neighbor> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        space.neighborhood(i, eps, &mut neighbors);
        if space.core_distance(i, min_pts, &neighbors).is_none() {
            continue; // noise for now; may become a border object later
        }
        cluster += 1;
        labels[i] = cluster;
        queue.clear();
        queue.extend(neighbors.iter().map(|nb| nb.id));
        while let Some(j) = queue.pop_front() {
            if labels[j] == -1 {
                labels[j] = cluster; // border or core, reached from cluster
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            space.neighborhood(j, eps, &mut neighbors);
            if space.core_distance(j, min_pts, &neighbors).is_some() {
                queue.extend(neighbors.iter().map(|nb| nb.id));
            }
        }
    }
    labels
}

/// DBSCAN over a plain dataset with an automatically selected index.
pub fn dbscan(ds: &Dataset, eps: f64, min_pts: usize) -> Vec<i32> {
    let space = PointSpace::new(ds, Some(eps));
    dbscan_core(&space, eps, min_pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs_and_noise() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for i in 0..20 {
            ds.push(&[(i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2]).unwrap();
        }
        for i in 0..20 {
            ds.push(&[10.0 + (i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2]).unwrap();
        }
        ds.push(&[5.0, 5.0]).unwrap(); // isolated noise
        ds
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let ds = two_blobs_and_noise();
        let labels = dbscan(&ds, 0.5, 4);
        assert!(labels[..20].iter().all(|&l| l == labels[0] && l >= 0));
        assert!(labels[20..40].iter().all(|&l| l == labels[20] && l >= 0));
        assert_ne!(labels[0], labels[20]);
        assert_eq!(labels[40], -1);
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let ds = two_blobs_and_noise();
        let labels = dbscan(&ds, 1e-6, 2);
        assert!(labels.iter().all(|&l| l == -1));
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let ds = two_blobs_and_noise();
        let labels = dbscan(&ds, 100.0, 4);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn min_pts_one_labels_every_point() {
        let ds = two_blobs_and_noise();
        let labels = dbscan(&ds, 0.5, 1);
        assert!(labels.iter().all(|&l| l >= 0));
        // The isolated point forms its own singleton cluster.
        assert_ne!(labels[40], labels[0]);
    }

    #[test]
    fn agrees_with_optics_extraction() {
        use crate::algorithm::optics_points;
        use crate::ordering::extract_dbscan;
        use crate::space::OpticsParams;

        let ds = two_blobs_and_noise();
        let direct = dbscan(&ds, 0.5, 4);
        let o = optics_points(&ds, &OpticsParams { eps: 2.0, min_pts: 4 });
        let extracted = extract_dbscan(&o, 0.5, ds.len());
        // Same partition up to label permutation and border-point
        // assignment; with these well separated blobs they agree exactly
        // after matching labels via the first occurrence.
        let mut mapping = std::collections::HashMap::new();
        for (a, b) in direct.iter().zip(&extracted) {
            if *a >= 0 {
                let m = mapping.entry(*a).or_insert(*b);
                assert_eq!(m, b, "partitions disagree");
            } else {
                assert_eq!(*b, -1);
            }
        }
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(2).unwrap();
        assert!(dbscan(&ds, 1.0, 2).is_empty());
    }
}
