//! OPTICS (Ankerst, Breunig, Kriegel, Sander, SIGMOD 1999) and DBSCAN
//! (Ester et al., KDD 1996) — the hierarchical/density clustering substrate
//! of the Data Bubbles reproduction.
//!
//! The OPTICS walk is implemented once, generically, over the
//! [`OpticsSpace`] trait (ε-neighbourhood + core-distance + object weight).
//! Plain vector data uses [`PointSpace`]; the `data-bubbles` crate provides
//! a second implementation whose neighbourhood/core-distance follow
//! Definitions 6–8 of the Data Bubbles paper — exactly the paper's claim
//! that only those definitions need to change.
//!
//! Also provided:
//!
//! * [`ClusterOrdering`] — the augmented ordering with reachability and
//!   core-distances (the data behind a reachability plot);
//! * [`extract_dbscan`] — flat cluster extraction from an ordering with a
//!   cut level ε′ ≤ ε (§3.2.2 of the OPTICS paper);
//! * [`extract_xi`] — hierarchical ξ-cluster extraction from steep areas;
//! * [`dbscan`] — the classic flat DBSCAN as an independent baseline.
//!
//! # Example
//!
//! ```
//! use db_optics::{optics_points, OpticsParams, extract_dbscan};
//! use db_spatial::Dataset;
//!
//! // Two well separated groups on a line.
//! let mut ds = Dataset::new(1).unwrap();
//! for i in 0..10 {
//!     ds.push(&[i as f64 * 0.1]).unwrap();
//!     ds.push(&[100.0 + i as f64 * 0.1]).unwrap();
//! }
//! let ordering = optics_points(&ds, &OpticsParams { eps: 10.0, min_pts: 3 });
//! let labels = extract_dbscan(&ordering, 1.0, ds.len());
//! let distinct: std::collections::HashSet<i32> =
//!     labels.iter().copied().filter(|&l| l >= 0).collect();
//! assert_eq!(distinct.len(), 2);
//! ```

#![warn(missing_docs)]

mod algorithm;
mod dbscan;
mod ordering;
pub mod params;
pub mod persist;
mod space;
mod tree;
mod xi;

pub use algorithm::{optics, optics_points, optics_points_supervised, optics_supervised};
pub use dbscan::{dbscan, dbscan_core};
pub use ordering::{extract_dbscan, median_smooth, ClusterOrdering, OrderingEntry, UNDEFINED};
pub use params::{k_distances, suggest_cut, suggest_eps};
pub use persist::{read_ordering, write_ordering, PersistError};
pub use space::{OpticsParams, OpticsSpace, PointSpace};
pub use tree::{ClusterNode, ClusterTree};
pub use xi::{extract_xi, XiCluster};
