//! The cluster ordering (reachability plot data) produced by OPTICS, and
//! flat cluster extraction from it.

/// Sentinel for an undefined (∞) reachability or core-distance.
pub const UNDEFINED: f64 = f64::INFINITY;

/// One position of the cluster ordering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrderingEntry {
    /// Object id (index into the space OPTICS ran on).
    pub id: usize,
    /// Reachability-distance w.r.t. the preceding walk
    /// ([`UNDEFINED`] for walk starts).
    pub reachability: f64,
    /// Core-distance ([`UNDEFINED`] when not a core object).
    pub core_distance: f64,
    /// Number of original objects this entry represents (1 for plain
    /// points; the summary weight for compressed objects).
    pub weight: u64,
}

impl OrderingEntry {
    /// Whether the reachability is defined (finite).
    pub fn has_reachability(&self) -> bool {
        self.reachability.is_finite()
    }

    /// Whether the entry is a core object (finite core-distance).
    pub fn is_core(&self) -> bool {
        self.core_distance.is_finite()
    }
}

/// The augmented cluster ordering of an OPTICS run. `entries[0]` is the
/// first object of the walk. Plotting `reachability` over the position
/// yields the reachability plot; "dents" are clusters.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOrdering {
    /// Walk positions in order.
    pub entries: Vec<OrderingEntry>,
    /// The ε the ordering was computed with.
    pub eps: f64,
    /// The MinPts the ordering was computed with.
    pub min_pts: usize,
}

impl ClusterOrdering {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ordering is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The reachability values in walk order (∞ for undefined).
    pub fn reachabilities(&self) -> Vec<f64> {
        self.entries.iter().map(|e| e.reachability).collect()
    }

    /// Position of each object id in the walk: `position()[id] = index into
    /// entries`.
    ///
    /// # Panics
    ///
    /// Panics if ids are not the dense range `0..len` (they always are for
    /// orderings produced by [`crate::optics`]).
    pub fn positions(&self) -> Vec<usize> {
        let mut pos = vec![usize::MAX; self.entries.len()];
        for (walk_idx, e) in self.entries.iter().enumerate() {
            assert!(e.id < pos.len(), "non-dense object ids");
            pos[e.id] = walk_idx;
        }
        assert!(pos.iter().all(|&p| p != usize::MAX), "non-dense object ids");
        pos
    }

    /// The weighted total number of original objects represented.
    pub fn total_weight(&self) -> u64 {
        self.entries.iter().map(|e| e.weight).sum()
    }

    /// Whether two orderings agree position by position: identical ids and
    /// weights, and reachability / core-distance within `rel_tol` relative
    /// error. Paired non-finite values (two ∞, two NaN) count as equal; a
    /// finite value against a non-finite one never matches. Values within
    /// one unit of zero are compared absolutely so near-zero distances do
    /// not blow up the relative error. This is the differential-harness
    /// comparison for stable-statistics paths (DESIGN.md §10); exact paths
    /// should use `==` instead.
    pub fn close_to(&self, other: &ClusterOrdering, rel_tol: f64) -> bool {
        fn close(a: f64, b: f64, tol: f64) -> bool {
            if a == b || (a.is_nan() && b.is_nan()) {
                return true;
            }
            if !a.is_finite() || !b.is_finite() {
                return false;
            }
            (a - b).abs() <= tol * a.abs().max(b.abs()).max(1.0)
        }
        self.entries.len() == other.entries.len()
            && self.entries.iter().zip(&other.entries).all(|(x, y)| {
                x.id == y.id
                    && x.weight == y.weight
                    && close(x.reachability, y.reachability, rel_tol)
                    && close(x.core_distance, y.core_distance, rel_tol)
            })
    }

    /// Expands the ordering into a per-position plot where each entry is
    /// repeated `weight` times (the paper's size-distortion fix of §5, in
    /// its plot-only form: the first copy keeps the entry's reachability,
    /// the remaining copies use `filler(entry, next_entry)`).
    pub fn expand_plot(
        &self,
        mut filler: impl FnMut(&OrderingEntry, Option<&OrderingEntry>) -> f64,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.total_weight() as usize);
        for (i, e) in self.entries.iter().enumerate() {
            out.push(e.reachability);
            if e.weight > 1 {
                let fill = filler(e, self.entries.get(i + 1));
                out.extend(std::iter::repeat_n(fill, e.weight as usize - 1));
            }
        }
        out
    }
}

/// Median-smooths a reachability plot with a centered window of
/// `2·half + 1` positions (∞ values participate and survive where they
/// dominate the window). Point-level reachability plots are noisy; ξ-style
/// steep-area extraction works much better on the smoothed signal, while
/// dents and jumps are preserved (median filters are edge preserving).
pub fn median_smooth(values: &[f64], half: usize) -> Vec<f64> {
    if half == 0 || values.len() < 3 {
        return values.to_vec();
    }
    let mut out = Vec::with_capacity(values.len());
    let mut window: Vec<f64> = Vec::with_capacity(2 * half + 1);
    for i in 0..values.len() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(values.len());
        window.clear();
        window.extend_from_slice(&values[lo..hi]);
        window.sort_by(f64::total_cmp);
        out.push(window[window.len() / 2]);
    }
    out
}

/// Extracts a flat, DBSCAN-equivalent clustering from a cluster ordering
/// with cut level `eps_cut` ≤ the ε of the run (§3.2.2 of the OPTICS
/// paper). Returns one label per *object id* (not per walk position):
/// `labels[id] = cluster id ≥ 0` or `-1` for noise.
///
/// `n_objects` must equal the number of ordering entries (the ids are
/// dense).
///
/// # Panics
///
/// Panics if `n_objects != ordering.len()` or an id is out of range.
#[allow(clippy::neg_cmp_op_on_partial_ord)] // NaN must take the jump branch
pub fn extract_dbscan(ordering: &ClusterOrdering, eps_cut: f64, n_objects: usize) -> Vec<i32> {
    assert_eq!(n_objects, ordering.len(), "id space must match ordering length");
    let mut labels = vec![-1i32; n_objects];
    let mut cluster = -1i32;
    for e in &ordering.entries {
        assert!(e.id < n_objects, "object id out of range");
        // `!(r <= cut)` rather than `r > cut`: a NaN reachability must read
        // as a jump (and below, a NaN core-distance as non-core → noise),
        // otherwise one poisoned value silently glues unrelated walk
        // segments into the current cluster.
        if !(e.reachability <= eps_cut) {
            // Jump: either a new cluster starts here (if the object itself
            // is dense enough at eps_cut) or the object is noise.
            if e.core_distance <= eps_cut {
                cluster += 1;
                labels[e.id] = cluster;
            } else {
                labels[e.id] = -1;
            }
        } else if cluster >= 0 {
            labels[e.id] = cluster;
        } else {
            // Defined reachability before any cluster started can only
            // happen with eps_cut ≥ eps on degenerate inputs; treat as a
            // fresh cluster for robustness.
            cluster += 1;
            labels[e.id] = cluster;
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize, reach: f64, core: f64, weight: u64) -> OrderingEntry {
        OrderingEntry { id, reachability: reach, core_distance: core, weight }
    }

    fn two_cluster_ordering() -> ClusterOrdering {
        // Cluster 0: positions 0-2, cluster 1: positions 3-5.
        ClusterOrdering {
            entries: vec![
                entry(0, UNDEFINED, 0.5, 1),
                entry(1, 0.4, 0.4, 1),
                entry(2, 0.5, 0.6, 1),
                entry(3, 9.0, 0.3, 1),
                entry(4, 0.2, 0.2, 1),
                entry(5, 0.3, 0.4, 1),
            ],
            eps: 10.0,
            min_pts: 2,
        }
    }

    #[test]
    fn entry_flags() {
        let e = entry(0, UNDEFINED, 1.0, 1);
        assert!(!e.has_reachability());
        assert!(e.is_core());
        let e = entry(0, 0.5, UNDEFINED, 1);
        assert!(e.has_reachability());
        assert!(!e.is_core());
    }

    #[test]
    fn positions_invert_the_walk() {
        let o = two_cluster_ordering();
        let pos = o.positions();
        for (walk_idx, e) in o.entries.iter().enumerate() {
            assert_eq!(pos[e.id], walk_idx);
        }
    }

    #[test]
    fn extract_dbscan_finds_two_clusters() {
        let o = two_cluster_ordering();
        let labels = extract_dbscan(&o, 1.0, 6);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn extract_dbscan_marks_sparse_jumps_as_noise() {
        let mut o = two_cluster_ordering();
        // Make the jump object not dense at the cut level.
        o.entries[3].core_distance = 5.0;
        let labels = extract_dbscan(&o, 1.0, 6);
        assert_eq!(labels[3], -1);
        // Followers still open cluster 1? No — they attach to the previous
        // cluster because their reachability is small. This mirrors the
        // OPTICS-paper pseudocode, which only starts clusters at jumps.
        assert_eq!(labels[4], 0);
    }

    #[test]
    fn expand_plot_repeats_by_weight() {
        let o = ClusterOrdering {
            entries: vec![entry(0, UNDEFINED, 0.1, 3), entry(1, 0.5, 0.2, 2)],
            eps: 1.0,
            min_pts: 2,
        };
        assert_eq!(o.total_weight(), 5);
        let plot = o.expand_plot(|e, next| {
            // weighted-style filler: min(own, next) reachability
            let own = e.reachability;
            next.map_or(own, |n| own.min(n.reachability))
        });
        assert_eq!(plot.len(), 5);
        assert!(plot[0].is_infinite());
        assert_eq!(plot[1], 0.5); // filler for entry 0: min(inf, 0.5)
        assert_eq!(plot[2], 0.5);
        assert_eq!(plot[3], 0.5); // entry 1 itself
        assert_eq!(plot[4], 0.5); // filler for entry 1 (no next)
    }

    #[test]
    #[should_panic(expected = "id space must match")]
    fn extract_dbscan_checks_length() {
        extract_dbscan(&two_cluster_ordering(), 1.0, 5);
    }

    #[test]
    fn extract_dbscan_treats_nan_as_jump_not_glue() {
        // A NaN reachability in the middle of cluster 0 must not silently
        // attach to the cluster (NaN > cut and NaN <= cut are both false).
        let mut o = two_cluster_ordering();
        o.entries[2].reachability = f64::NAN;
        o.entries[2].core_distance = 0.5; // dense at the cut: opens a cluster
        let labels = extract_dbscan(&o, 1.0, 6);
        assert_eq!(labels, vec![0, 0, 1, 2, 2, 2]);
        // NaN core-distance at a jump reads as non-core → noise.
        let mut o = two_cluster_ordering();
        o.entries[3].core_distance = f64::NAN;
        let labels = extract_dbscan(&o, 1.0, 6);
        assert_eq!(labels[3], -1);
    }

    #[test]
    fn median_smooth_removes_spikes_keeps_edges() {
        // A step edge with one spike.
        let mut v = vec![1.0; 10];
        v[4] = 100.0; // spike
        v.extend(vec![10.0; 10]);
        let s = median_smooth(&v, 2);
        assert_eq!(s.len(), v.len());
        assert!((s[4] - 1.0).abs() < 1e-12, "spike not removed: {}", s[4]);
        // The edge survives within the window width.
        assert!((s[2] - 1.0).abs() < 1e-12);
        assert!((s[15] - 10.0).abs() < 1e-12);
    }

    #[test]
    fn median_smooth_degenerate_inputs() {
        assert_eq!(median_smooth(&[1.0, 2.0], 3), vec![1.0, 2.0]);
        assert_eq!(median_smooth(&[1.0, 5.0, 9.0], 0), vec![1.0, 5.0, 9.0]);
        let inf = vec![f64::INFINITY; 5];
        assert!(median_smooth(&inf, 1).iter().all(|v| v.is_infinite()));
    }

    #[test]
    fn close_to_tolerates_small_drift_only() {
        let a = two_cluster_ordering();
        let mut b = a.clone();
        assert!(a.close_to(&b, 0.0)); // identical orderings match exactly
        b.entries[1].reachability *= 1.0 + 1e-10;
        assert!(a.close_to(&b, 1e-9));
        assert!(!a.close_to(&b, 1e-12));
        // Paired infinities are equal; ∞ vs finite never matches.
        let mut c = a.clone();
        c.entries[0].reachability = 7.0;
        assert!(!a.close_to(&c, 1e-3));
        // Different ids or weights never match.
        let mut d = a.clone();
        d.entries[2].id = 9;
        assert!(!a.close_to(&d, 1.0));
        let mut e = a.clone();
        e.entries[2].weight = 4;
        assert!(!a.close_to(&e, 1.0));
    }

    #[test]
    fn reachabilities_accessor() {
        let o = two_cluster_ordering();
        let r = o.reachabilities();
        assert_eq!(r.len(), 6);
        assert!(r[0].is_infinite());
        assert_eq!(r[3], 9.0);
        assert!(!o.is_empty());
        assert_eq!(o.len(), 6);
    }
}
