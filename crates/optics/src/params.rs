//! Parameter heuristics: data-driven suggestions for ε and the extraction
//! cut, based on the classic sorted k-NN-distance ("k-dist") analysis of
//! the DBSCAN/OPTICS papers.

use db_spatial::{auto_index, Dataset, SpatialIndex};

/// The sorted MinPts-NN distances of a sample of points — the "k-dist
/// plot" used to choose density parameters by eye; [`suggest_eps`] picks
/// from it automatically.
///
/// Samples at most `max_sample` points (deterministic stride), so the cost
/// is bounded for large datasets.
///
/// # Panics
///
/// Panics if the dataset is empty or `min_pts == 0`.
pub fn k_distances(ds: &Dataset, min_pts: usize, max_sample: usize) -> Vec<f64> {
    assert!(!ds.is_empty(), "dataset must be non-empty");
    assert!(min_pts >= 1, "MinPts must be positive");
    let index = auto_index(ds, None);
    let stride = (ds.len() / max_sample.max(1)).max(1);
    let mut out = Vec::with_capacity(ds.len() / stride + 1);
    let mut nn = Vec::new();
    for i in (0..ds.len()).step_by(stride) {
        // The query point is an indexed point, so it appears in its own
        // result at distance 0; asking for min_pts results therefore
        // yields the MinPts-distance of Definition 2/3 (self included).
        index.knn(ds, ds.point(i), min_pts, &mut nn);
        out.push(nn.last().map_or(0.0, |n| n.dist));
    }
    out.sort_by(f64::total_cmp);
    out
}

/// Suggests an OPTICS generating distance ε: a high quantile (97.5%) of
/// the sampled MinPts-NN distances, times a small safety factor — large
/// enough that nearly every object is a core object (so the cluster
/// ordering is informative), small enough that the spatial index still
/// prunes.
///
/// # Panics
///
/// Panics if the dataset is empty or `min_pts == 0`.
pub fn suggest_eps(ds: &Dataset, min_pts: usize) -> f64 {
    let kd = k_distances(ds, min_pts, 2_048);
    let q = kd[((kd.len() - 1) as f64 * 0.975).round() as usize];
    (q * 1.5).max(f64::MIN_POSITIVE)
}

/// Suggests a flat-extraction cut level ε′: the k-dist "elbow" — the value
/// at the knee of the sorted k-dist curve, found as the point of maximum
/// distance to the chord between the curve's endpoints. Objects below the
/// knee are cluster-dense; above it, noise-sparse.
///
/// # Panics
///
/// Panics if the dataset is empty or `min_pts == 0`.
pub fn suggest_cut(ds: &Dataset, min_pts: usize) -> f64 {
    let kd = k_distances(ds, min_pts, 2_048);
    if kd.len() < 3 {
        return *kd.last().expect("non-empty");
    }
    let n = kd.len() as f64;
    let (y0, y1) = (kd[0], kd[kd.len() - 1]);
    // Maximize the distance from (i, kd[i]) to the chord (0,y0)-(n-1,y1);
    // with x normalized to [0,1] so both axes are comparable.
    let mut best = (0usize, f64::NEG_INFINITY);
    for (i, &y) in kd.iter().enumerate() {
        let x = i as f64 / (n - 1.0);
        let chord_y = y0 + (y1 - y0) * x;
        let d = (chord_y - y).abs() / (y1 - y0).abs().max(1e-300);
        if d > best.1 {
            best = (i, d);
        }
    }
    kd[best.0].max(f64::MIN_POSITIVE)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two dense blobs + sparse noise.
    fn blobs_with_noise() -> Dataset {
        let mut ds = Dataset::new(2).unwrap();
        for c in [[0.0, 0.0], [50.0, 0.0]] {
            for i in 0..300 {
                ds.push(&[c[0] + (i % 20) as f64 * 0.1, c[1] + (i / 20) as f64 * 0.1]).unwrap();
            }
        }
        for i in 0..30 {
            ds.push(&[(i * 97 % 100) as f64, 30.0 + (i * 31 % 50) as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn k_distances_are_sorted_and_positive() {
        let ds = blobs_with_noise();
        let kd = k_distances(&ds, 5, 1_000);
        assert!(!kd.is_empty());
        assert!(kd.windows(2).all(|w| w[0] <= w[1]));
        assert!(kd.iter().all(|&d| d >= 0.0));
    }

    #[test]
    fn suggested_cut_separates_blobs_from_noise() {
        let ds = blobs_with_noise();
        let cut = suggest_cut(&ds, 5);
        // Blob 5-NN distances are ~0.1–0.3; noise 5-NN distances are ≥ 10.
        assert!(cut > 0.05 && cut < 10.0, "cut {cut}");
    }

    #[test]
    fn suggested_eps_covers_almost_everything() {
        let ds = blobs_with_noise();
        let eps = suggest_eps(&ds, 5);
        let kd = k_distances(&ds, 5, usize::MAX);
        let covered = kd.iter().filter(|&&d| d <= eps).count();
        assert!(
            covered as f64 / kd.len() as f64 >= 0.95,
            "eps {eps} covers only {covered}/{}",
            kd.len()
        );
    }

    #[test]
    fn suggestions_feed_optics() {
        use crate::{extract_dbscan, optics_points, OpticsParams};
        let ds = blobs_with_noise();
        let eps = suggest_eps(&ds, 5);
        let cut = suggest_cut(&ds, 5);
        let o = optics_points(&ds, &OpticsParams { eps, min_pts: 5 });
        let labels = extract_dbscan(&o, cut, ds.len());
        // The two blobs come out as two clusters.
        let mut blob_labels: Vec<i32> = vec![labels[0]];
        for &label in labels.iter().take(600) {
            if !blob_labels.contains(&label) {
                blob_labels.push(label);
            }
        }
        assert!(blob_labels.iter().all(|&l| l >= 0), "blob points must not be noise");
        assert_eq!(blob_labels.len(), 2, "expected exactly two blob clusters");
    }

    #[test]
    fn sampling_bounds_work() {
        let ds = blobs_with_noise();
        let kd_small = k_distances(&ds, 5, 10);
        assert!(kd_small.len() <= 64); // stride sampling
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_dataset_panics() {
        k_distances(&Dataset::new(2).unwrap(), 5, 100);
    }
}
