//! Persistence for cluster orderings: a plain-text format so orderings can
//! be written once and re-analyzed later (the paper's pipelines likewise
//! write the final cluster ordering back to disk).
//!
//! Format: a header line `# optics-ordering eps=<e> min_pts=<m>` followed
//! by one CSV row `id,reachability,core_distance,weight` per walk
//! position. Infinite distances serialize as `inf`.

use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

use crate::ordering::{ClusterOrdering, OrderingEntry};

/// Errors of the ordering reader.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file.
    Format {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::Format { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fmt_dist(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "inf".to_string()
    }
}

fn parse_dist(s: &str, line: usize) -> Result<f64, PersistError> {
    if s == "inf" {
        return Ok(f64::INFINITY);
    }
    s.parse()
        .map_err(|_| PersistError::Format { line, message: format!("cannot parse distance {s:?}") })
}

/// Writes an ordering in the text format.
///
/// # Errors
///
/// Returns an error on I/O failure.
pub fn write_ordering(ordering: &ClusterOrdering, writer: impl Write) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# optics-ordering eps={} min_pts={}", fmt_dist(ordering.eps), ordering.min_pts)?;
    for e in &ordering.entries {
        writeln!(
            w,
            "{},{},{},{}",
            e.id,
            fmt_dist(e.reachability),
            fmt_dist(e.core_distance),
            e.weight
        )?;
    }
    w.flush()
}

/// Reads an ordering written by [`write_ordering`].
///
/// # Errors
///
/// Returns an error on I/O failure or malformed content.
pub fn read_ordering(reader: impl Read) -> Result<ClusterOrdering, PersistError> {
    let reader = BufReader::new(reader);
    let mut lines = reader.lines().enumerate();
    let (_, header) =
        lines.next().ok_or(PersistError::Format { line: 1, message: "empty file".to_string() })?;
    let header = header?;
    let rest = header.strip_prefix("# optics-ordering ").ok_or_else(|| PersistError::Format {
        line: 1,
        message: "missing '# optics-ordering' header".to_string(),
    })?;
    let mut eps = f64::INFINITY;
    let mut min_pts = 1usize;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("eps=") {
            eps = parse_dist(v, 1)?;
        } else if let Some(v) = field.strip_prefix("min_pts=") {
            min_pts = v.parse().map_err(|_| PersistError::Format {
                line: 1,
                message: format!("cannot parse min_pts {v:?}"),
            })?;
        }
    }

    let mut entries = Vec::new();
    for (idx, line) in lines {
        let line = line?;
        if line.trim().is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',');
        let mut next = |name: &str| {
            fields.next().ok_or_else(|| PersistError::Format {
                line: idx + 1,
                message: format!("missing field {name}"),
            })
        };
        let id: usize = next("id")?.trim().parse().map_err(|_| PersistError::Format {
            line: idx + 1,
            message: "cannot parse id".to_string(),
        })?;
        let reachability = parse_dist(next("reachability")?.trim(), idx + 1)?;
        let core_distance = parse_dist(next("core_distance")?.trim(), idx + 1)?;
        let weight: u64 = next("weight")?.trim().parse().map_err(|_| PersistError::Format {
            line: idx + 1,
            message: "cannot parse weight".to_string(),
        })?;
        entries.push(OrderingEntry { id, reachability, core_distance, weight });
    }
    Ok(ClusterOrdering { entries, eps, min_pts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::UNDEFINED;

    fn sample() -> ClusterOrdering {
        ClusterOrdering {
            entries: vec![
                OrderingEntry { id: 2, reachability: UNDEFINED, core_distance: 0.5, weight: 10 },
                OrderingEntry { id: 0, reachability: 0.25, core_distance: UNDEFINED, weight: 1 },
                OrderingEntry { id: 1, reachability: 1e-300, core_distance: 3.5, weight: 7 },
            ],
            eps: 12.5,
            min_pts: 4,
        }
    }

    #[test]
    fn round_trip_is_exact() {
        let o = sample();
        let mut buf = Vec::new();
        write_ordering(&o, &mut buf).unwrap();
        let back = read_ordering(buf.as_slice()).unwrap();
        assert_eq!(back, o);
    }

    #[test]
    fn infinite_eps_round_trips() {
        let mut o = sample();
        o.eps = f64::INFINITY;
        let mut buf = Vec::new();
        write_ordering(&o, &mut buf).unwrap();
        let back = read_ordering(buf.as_slice()).unwrap();
        assert!(back.eps.is_infinite());
    }

    #[test]
    fn missing_header_is_an_error() {
        let r = read_ordering("1,2,3,4\n".as_bytes());
        assert!(matches!(r, Err(PersistError::Format { line: 1, .. })));
    }

    #[test]
    fn bad_field_reports_line() {
        let input = "# optics-ordering eps=1 min_pts=2\n0,notanumber,1,1\n";
        match read_ordering(input.as_bytes()) {
            Err(PersistError::Format { line, message }) => {
                assert_eq!(line, 2);
                assert!(message.contains("notanumber"));
            }
            other => panic!("expected format error, got {other:?}"),
        }
    }

    #[test]
    fn empty_file_is_an_error() {
        assert!(read_ordering("".as_bytes()).is_err());
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let input = "# optics-ordering eps=1 min_pts=2\n\n# note\n3,0.5,0.25,2\n";
        let o = read_ordering(input.as_bytes()).unwrap();
        assert_eq!(o.len(), 1);
        assert_eq!(o.entries[0].id, 3);
        assert_eq!(o.entries[0].weight, 2);
    }

    #[test]
    fn error_display() {
        let e = PersistError::Format { line: 7, message: "boom".into() };
        assert!(e.to_string().contains("line 7"));
    }
}
