//! The [`OpticsSpace`] abstraction and its implementation for plain vector
//! data.

use db_spatial::{auto_index, AnyIndex, Dataset, Neighbor, SpatialIndex};

/// Parameters of an OPTICS run: the generating distance ε and the density
/// threshold MinPts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpticsParams {
    /// Generating distance ε. Use `f64::INFINITY` for an unbounded run
    /// (always produces fully defined reachabilities, at O(n²) cost).
    pub eps: f64,
    /// Minimum number of *original* objects for a core object. For
    /// compressed spaces the weights of the summaries count, not the number
    /// of summaries (Def. 7 of the Data Bubbles paper).
    pub min_pts: usize,
}

impl Default for OpticsParams {
    fn default() -> Self {
        Self { eps: f64::INFINITY, min_pts: 5 }
    }
}

/// What the OPTICS walk needs from a collection of objects.
///
/// Implementations exist for plain points ([`PointSpace`]) and for Data
/// Bubbles (in the `data-bubbles` crate).
pub trait OpticsSpace {
    /// Number of objects.
    fn len(&self) -> usize;

    /// Whether there are no objects.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes the ε-neighbourhood of object `i` into `out` (cleared first),
    /// **sorted ascending by distance**, *including* object `i` itself at
    /// distance 0.
    fn neighborhood(&self, i: usize, eps: f64, out: &mut Vec<Neighbor>);

    /// Number of original data objects represented by object `i`
    /// (1 for plain points, `n` for summaries).
    fn weight(&self, i: usize) -> u64;

    /// The core-distance of object `i` given its ε-neighbourhood (as
    /// produced by [`OpticsSpace::neighborhood`]). `None` encodes ∞
    /// (not a core object).
    fn core_distance(&self, i: usize, min_pts: usize, neighborhood: &[Neighbor]) -> Option<f64>;
}

/// [`OpticsSpace`] over a plain [`Dataset`]: Definitions 2–3 of the Data
/// Bubbles paper (= the original OPTICS definitions).
#[derive(Debug)]
pub struct PointSpace<'a> {
    ds: &'a Dataset,
    index: AnyIndex,
}

impl<'a> PointSpace<'a> {
    /// Builds the space with an automatically chosen index ([`auto_index`])
    /// using `eps_hint` as the grid cell width hint.
    pub fn new(ds: &'a Dataset, eps_hint: Option<f64>) -> Self {
        Self { ds, index: auto_index(ds, eps_hint) }
    }

    /// Builds the space with an explicitly chosen index.
    ///
    /// # Panics
    ///
    /// Panics if the index was not built over `ds` (length mismatch).
    pub fn with_index(ds: &'a Dataset, index: AnyIndex) -> Self {
        assert_eq!(ds.len(), index.len(), "index/dataset mismatch");
        Self { ds, index }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Dataset {
        self.ds
    }
}

impl OpticsSpace for PointSpace<'_> {
    fn len(&self) -> usize {
        self.ds.len()
    }

    fn neighborhood(&self, i: usize, eps: f64, out: &mut Vec<Neighbor>) {
        self.index.range(self.ds, self.ds.point(i), eps, out);
        // Lower bound: the index evaluates at least one distance per
        // returned neighbour; `spatial.dist_evals` has the exact count.
        db_obs::counter!("optics.distance_calls").add(out.len() as u64);
    }

    fn weight(&self, _i: usize) -> u64 {
        1
    }

    fn core_distance(&self, _i: usize, min_pts: usize, neighborhood: &[Neighbor]) -> Option<f64> {
        // Definition 3: MinPts-distance if at least MinPts objects lie in
        // the ε-neighbourhood (the object itself counts), else ∞.
        (neighborhood.len() >= min_pts).then(|| neighborhood[min_pts - 1].dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0], &[10.0]]).unwrap()
    }

    #[test]
    fn neighborhood_includes_self_sorted() {
        let d = ds();
        let space = PointSpace::new(&d, Some(2.0));
        let mut out = Vec::new();
        space.neighborhood(1, 1.5, &mut out);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0, 2]);
        assert_eq!(out[0].dist, 0.0);
    }

    #[test]
    fn core_distance_definition_3() {
        let d = ds();
        let space = PointSpace::new(&d, None);
        let mut out = Vec::new();
        space.neighborhood(0, 2.5, &mut out); // {0, 1, 2}
                                              // MinPts=3: core-dist = distance to 3rd closest (incl. self) = 2.0.
        assert_eq!(space.core_distance(0, 3, &out), Some(2.0));
        // MinPts=4: only 3 objects in the neighbourhood -> not core.
        assert_eq!(space.core_distance(0, 4, &out), None);
        // MinPts=1: the object itself, distance 0.
        assert_eq!(space.core_distance(0, 1, &out), Some(0.0));
    }

    #[test]
    fn weight_is_one_for_points() {
        let d = ds();
        let space = PointSpace::new(&d, None);
        assert_eq!(space.weight(0), 1);
        assert_eq!(space.len(), 4);
        assert!(!space.is_empty());
        assert_eq!(space.dataset().len(), 4);
    }

    #[test]
    #[should_panic(expected = "index/dataset mismatch")]
    fn with_index_checks_length() {
        let a = ds();
        let b = Dataset::from_rows(1, &[&[0.0]]).unwrap();
        let idx = auto_index(&b, None);
        PointSpace::with_index(&a, idx);
    }
}
