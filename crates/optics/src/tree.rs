//! The cluster hierarchy: ξ-clusters ([`crate::extract_xi`]) arranged into
//! a containment forest — OPTICS' answer to the dendrogram, restricted to
//! the significant clusters.

use crate::xi::XiCluster;

/// One node of the cluster tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterNode {
    /// The walk-position interval of this cluster.
    pub cluster: XiCluster,
    /// Indices (into [`ClusterTree::nodes`]) of the directly nested
    /// clusters.
    pub children: Vec<usize>,
}

/// A containment forest over extracted ξ-clusters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterTree {
    /// All nodes; children always have larger indices than their parent.
    pub nodes: Vec<ClusterNode>,
    /// Indices of the top-level clusters.
    pub roots: Vec<usize>,
}

impl ClusterTree {
    /// Builds the forest from a set of intervals. Intervals must be either
    /// disjoint or nested (which [`crate::extract_xi`] guarantees up to
    /// boundary overlaps; partially overlapping intervals are attached to
    /// the candidate parent that contains them fully, or become roots).
    pub fn build(clusters: &[XiCluster]) -> ClusterTree {
        let mut sorted: Vec<XiCluster> = clusters.to_vec();
        // Outer intervals first: by start ascending, then size descending.
        sorted.sort_by(|a, b| a.start.cmp(&b.start).then(b.len().cmp(&a.len())));
        sorted.dedup();

        let mut tree = ClusterTree::default();
        // Stack of currently open ancestors (indices into tree.nodes).
        let mut stack: Vec<usize> = Vec::new();
        for c in sorted {
            while let Some(&top) = stack.last() {
                if tree.nodes[top].cluster.contains(&c) {
                    break;
                }
                stack.pop();
            }
            let idx = tree.nodes.len();
            tree.nodes.push(ClusterNode { cluster: c, children: Vec::new() });
            match stack.last() {
                Some(&parent) => tree.nodes[parent].children.push(idx),
                None => tree.roots.push(idx),
            }
            stack.push(idx);
        }
        tree
    }

    /// Number of clusters in the forest.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the forest is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum nesting depth (0 for an empty forest, 1 for flat clusters).
    pub fn depth(&self) -> usize {
        fn rec(tree: &ClusterTree, node: usize) -> usize {
            1 + tree.nodes[node].children.iter().map(|&c| rec(tree, c)).max().unwrap_or(0)
        }
        self.roots.iter().map(|&r| rec(self, r)).max().unwrap_or(0)
    }

    /// Number of leaf clusters (no nested sub-cluster).
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Returns a simplified forest where a cluster is dropped whenever it
    /// shrinks its parent by less than `min_shrink` (fraction of the
    /// parent's length). Steep-area extraction tends to emit stacks of
    /// near-identical nested intervals; this keeps one per stack.
    pub fn simplify(&self, min_shrink: f64) -> ClusterTree {
        fn keep(
            tree: &ClusterTree,
            node: usize,
            parent_len: usize,
            min_shrink: f64,
            out: &mut Vec<XiCluster>,
        ) {
            let c = tree.nodes[node].cluster;
            let significant =
                (parent_len as f64 - c.len() as f64) >= min_shrink * parent_len as f64;
            let effective_parent = if significant {
                out.push(c);
                c.len()
            } else {
                parent_len
            };
            for &ch in &tree.nodes[node].children {
                keep(tree, ch, effective_parent, min_shrink, out);
            }
        }
        let mut kept = Vec::new();
        for &r in &self.roots {
            keep(self, r, usize::MAX, min_shrink, &mut kept);
        }
        ClusterTree::build(&kept)
    }

    /// Renders the forest as an indented outline (for reports).
    pub fn render(&self) -> String {
        fn rec(tree: &ClusterTree, node: usize, depth: usize, out: &mut String) {
            let c = &tree.nodes[node].cluster;
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("[{}..{}] ({} positions)\n", c.start, c.end, c.len()));
            for &ch in &tree.nodes[node].children {
                rec(tree, ch, depth + 1, out);
            }
        }
        let mut out = String::new();
        for &r in &self.roots {
            rec(self, r, 0, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(start: usize, end: usize) -> XiCluster {
        XiCluster { start, end }
    }

    #[test]
    fn flat_clusters_are_all_roots() {
        let t = ClusterTree::build(&[c(0, 9), c(20, 29), c(40, 49)]);
        assert_eq!(t.roots.len(), 3);
        assert_eq!(t.depth(), 1);
        assert_eq!(t.n_leaves(), 3);
    }

    #[test]
    fn nested_clusters_form_a_tree() {
        let t = ClusterTree::build(&[c(0, 100), c(10, 30), c(40, 80), c(50, 60)]);
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.depth(), 3);
        let root = &t.nodes[t.roots[0]];
        assert_eq!(root.cluster, c(0, 100));
        assert_eq!(root.children.len(), 2);
        // The [40..80] child contains [50..60].
        let mid = root
            .children
            .iter()
            .find(|&&ch| t.nodes[ch].cluster == c(40, 80))
            .expect("mid cluster present");
        assert_eq!(t.nodes[*mid].children.len(), 1);
        assert_eq!(t.nodes[t.nodes[*mid].children[0]].cluster, c(50, 60));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let t = ClusterTree::build(&[c(50, 60), c(0, 100), c(10, 30)]);
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicates_are_removed() {
        let t = ClusterTree::build(&[c(0, 10), c(0, 10)]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_input() {
        let t = ClusterTree::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.depth(), 0);
        assert_eq!(t.render(), "");
    }

    #[test]
    fn render_is_indented() {
        let t = ClusterTree::build(&[c(0, 100), c(10, 30)]);
        let r = t.render();
        assert!(r.contains("[0..100]"));
        assert!(r.contains("  [10..30]"));
    }

    #[test]
    fn simplify_collapses_near_identical_stacks() {
        // A stack of nearly identical intervals plus one genuinely nested
        // cluster.
        let t = ClusterTree::build(&[c(0, 100), c(0, 99), c(1, 99), c(20, 40)]);
        assert_eq!(t.depth(), 4);
        let s = t.simplify(0.1);
        assert_eq!(s.depth(), 2, "stack should collapse: {}", s.render());
        assert_eq!(s.len(), 2);
        assert_eq!(s.nodes[s.roots[0]].cluster, c(0, 100));
    }

    #[test]
    fn simplify_keeps_flat_forests() {
        let t = ClusterTree::build(&[c(0, 9), c(20, 29)]);
        let s = t.simplify(0.2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.roots.len(), 2);
    }

    #[test]
    fn same_start_nests_by_size() {
        let t = ClusterTree::build(&[c(0, 50), c(0, 20)]);
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.nodes[t.roots[0]].cluster, c(0, 50));
        assert_eq!(t.depth(), 2);
    }
}
