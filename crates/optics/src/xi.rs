//! ξ-cluster extraction: finds the "dents" of a reachability plot as
//! hierarchical clusters, following the steep-area method of the OPTICS
//! paper (§4.3, Figure 19).
//!
//! A point is ξ-steep downward when its reachability drops by at least a
//! factor `1−ξ` to its successor, and ξ-steep upward symmetrically. A
//! cluster is a pair of a steep-down area and a steep-up area satisfying
//! the paper's cluster conditions; clusters may nest, yielding the
//! hierarchy.

use crate::ordering::ClusterOrdering;

/// One extracted cluster: an inclusive interval of *walk positions*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XiCluster {
    /// First walk position of the cluster.
    pub start: usize,
    /// Last walk position of the cluster (inclusive).
    pub end: usize,
}

impl XiCluster {
    /// Number of walk positions covered.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Intervals are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `other` is fully contained in `self`.
    pub fn contains(&self, other: &XiCluster) -> bool {
        self.start <= other.start && other.end <= self.end
    }
}

#[derive(Debug)]
struct SteepDownArea {
    start: usize,
    end: usize,
    mib: f64,
    start_val: f64,
}

/// Extracts ξ-clusters from a cluster ordering.
///
/// * `xi` — steepness threshold in `(0, 1)`; larger values require sharper
///   cliffs and extract fewer clusters.
/// * `min_cluster_size` — minimum number of walk positions per cluster
///   (the OPTICS paper uses MinPts).
///
/// Returns clusters sorted by start position, larger (outer) clusters
/// before nested ones with the same start.
///
/// ```
/// use db_optics::{extract_xi, optics_points, OpticsParams};
/// use db_spatial::Dataset;
/// let mut ds = Dataset::new(1).unwrap();
/// for i in 0..30 {
///     ds.push(&[i as f64 * 0.1]).unwrap(); // dense run
///     ds.push(&[100.0 + i as f64 * 0.1]).unwrap(); // second dense run
/// }
/// let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 3 });
/// let clusters = extract_xi(&o, 0.3, 5);
/// assert!(clusters.len() >= 2);
/// ```
///
/// # Panics
///
/// Panics if `xi` is not in `(0, 1)`.
pub fn extract_xi(ordering: &ClusterOrdering, xi: f64, min_cluster_size: usize) -> Vec<XiCluster> {
    assert!(xi > 0.0 && xi < 1.0, "xi must be in (0, 1)");
    let n = ordering.len();
    if n < 2 {
        return Vec::new();
    }
    let r: Vec<f64> = ordering.reachabilities();
    // Reachability "after the end" is ∞: the plot conceptually rises at n.
    let rv = |i: usize| if i >= n { f64::INFINITY } else { r[i] };
    let ixi = 1.0 - xi;
    // On an infinite plateau (r[i]=r[i+1]=∞), neither steep-down nor
    // steep-up should trigger; ∞·(1−ξ) ≥ ∞ is true in IEEE, so guard.
    // NaN reachabilities are likewise inert by construction: every
    // comparison below is false for NaN (and `f64::max` in the mib update
    // ignores NaN), so a poisoned value can neither open nor close an
    // area — it just breaks the plateau it sits in.
    let steep_down = |i: usize| {
        let (a, b) = (rv(i), rv(i + 1));
        a.is_finite() && (b == 0.0 || a * ixi >= b) && a > b || (a.is_infinite() && b.is_finite())
    };
    let down = |i: usize| rv(i) >= rv(i + 1);
    let steep_up = |i: usize| {
        let (a, b) = (rv(i), rv(i + 1));
        b.is_infinite() && a.is_finite() || (b.is_finite() && a <= b * ixi && a < b)
    };
    let up = |i: usize| rv(i) <= rv(i + 1);

    let min_pts = ordering.min_pts.max(1);
    let mut sdas: Vec<SteepDownArea> = Vec::new();
    let mut clusters: Vec<XiCluster> = Vec::new();
    let mut index = 0usize;
    let mut mib = 0.0f64;

    // Note `index` runs to n-1 inclusive: rv(n) is conceptually ∞, so a
    // plot that ends inside a dent still closes its final steep-up area.
    while index < n {
        mib = mib.max(rv(index));
        if steep_down(index) {
            filter_sdas(&mut sdas, mib, ixi);
            // Extend the steep down area.
            let start = index;
            let mut end = index;
            let mut flat = 0usize;
            let mut j = index + 1;
            while j < n {
                if steep_down(j) {
                    end = j;
                    flat = 0;
                } else if down(j) {
                    flat += 1;
                    if flat >= min_pts {
                        break;
                    }
                } else {
                    break;
                }
                j += 1;
            }
            sdas.push(SteepDownArea { start, end, mib: 0.0, start_val: rv(start) });
            index = end + 1;
            mib = rv(index);
        } else if steep_up(index) {
            filter_sdas(&mut sdas, mib, ixi);
            // Extend the steep up area.
            let u_start = index;
            let mut u_end = index;
            let mut flat = 0usize;
            let mut j = index + 1;
            while j < n {
                if steep_up(j) {
                    u_end = j;
                    flat = 0;
                } else if up(j) {
                    flat += 1;
                    if flat >= min_pts {
                        break;
                    }
                } else {
                    break;
                }
                j += 1;
            }
            index = u_end + 1;
            mib = rv(index);
            let end_val = rv(u_end + 1);

            for d in &sdas {
                let start_val = rv(d.start);
                // Cluster condition 3b/sc2*: the maximum reachability inside
                // the candidate must be clearly below both boundaries.
                if d.mib > start_val.min(end_val) * ixi {
                    continue;
                }
                // Condition 4: align the higher boundary with the lower one.
                let mut cstart = d.start;
                let mut cend = u_end;
                if end_val.is_finite() && start_val * ixi >= end_val {
                    // Steep-down start is much higher: trim from the left.
                    while cstart < cend && rv(cstart + 1) > end_val {
                        cstart += 1;
                    }
                } else if start_val.is_finite() && end_val * ixi >= start_val {
                    // Steep-up end is much higher: trim from the right.
                    while cend > cstart && rv(cend) > start_val {
                        cend -= 1;
                    }
                }
                // Conditions 1, 2, 3a: interval spans both areas and is
                // large enough.
                if cend <= cstart {
                    continue;
                }
                if cend - cstart + 1 < min_cluster_size {
                    continue;
                }
                if cstart > d.end || cend < u_start {
                    continue;
                }
                clusters.push(XiCluster { start: cstart, end: cend });
            }
        } else {
            index += 1;
        }
    }

    // Drop the trivial whole-plot cluster ("everything is one cluster"),
    // which the artificial ∞ boundaries at both ends would otherwise emit
    // for any plot.
    clusters.retain(|c| !(c.start == 0 && c.end == n - 1));
    clusters.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
    clusters.dedup();
    clusters
}

/// Removes steep-down areas whose start is no longer sufficiently above the
/// maximum seen since (`mib`), and records `mib` into the survivors
/// (the "update mib-values and filter SetOfSteepDownAreas" step of
/// Figure 19 in the OPTICS paper).
fn filter_sdas(sdas: &mut Vec<SteepDownArea>, mib: f64, ixi: f64) {
    sdas.retain_mut(|d| {
        if d.start_val * ixi < mib {
            false
        } else {
            d.mib = d.mib.max(mib);
            true
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ordering::{ClusterOrdering, OrderingEntry, UNDEFINED};

    fn ordering_from(reach: &[f64], min_pts: usize) -> ClusterOrdering {
        ClusterOrdering {
            entries: reach
                .iter()
                .enumerate()
                .map(|(i, &r)| OrderingEntry {
                    id: i,
                    reachability: if i == 0 { UNDEFINED } else { r },
                    core_distance: r.min(1.0),
                    weight: 1,
                })
                .collect(),
            eps: f64::INFINITY,
            min_pts,
        }
    }

    /// A plot with two clear dents separated by a plateau.
    fn two_dents() -> Vec<f64> {
        let mut r = vec![5.0; 10];
        r.extend(vec![0.5; 15]); // dent 1: positions 10..25
        r.extend(vec![5.0; 10]);
        r.extend(vec![0.7; 15]); // dent 2: positions 35..50
        r.extend(vec![5.0; 10]);
        r
    }

    #[test]
    fn finds_both_dents() {
        let o = ordering_from(&two_dents(), 3);
        let clusters = extract_xi(&o, 0.3, 5);
        assert!(
            clusters.iter().any(|c| c.start <= 10 && (24..=26).contains(&c.end)),
            "first dent missing: {clusters:?}"
        );
        assert!(
            clusters.iter().any(|c| (33..=35).contains(&c.start) && (49..=51).contains(&c.end)),
            "second dent missing: {clusters:?}"
        );
    }

    #[test]
    fn nested_dents_produce_nested_clusters() {
        // Outer dent at 1.0 with an inner dent at 0.1.
        let mut r = vec![5.0; 10];
        r.extend(vec![1.0; 10]); // outer, 10..
        r.extend(vec![0.1; 10]); // inner, 20..30
        r.extend(vec![1.0; 10]); // outer continues
        r.extend(vec![5.0; 10]);
        let o = ordering_from(&r, 3);
        let clusters = extract_xi(&o, 0.3, 5);
        let outer = clusters.iter().find(|c| c.len() > 25).expect("outer cluster");
        let inner = clusters.iter().find(|c| c.len() < 15).expect("inner cluster");
        assert!(outer.contains(inner), "outer {outer:?} should contain inner {inner:?}");
    }

    #[test]
    fn flat_plot_has_no_clusters() {
        let o = ordering_from(&vec![1.0; 50], 3);
        assert!(extract_xi(&o, 0.1, 5).is_empty());
    }

    #[test]
    fn min_cluster_size_filters_small_dents() {
        let mut r = vec![5.0; 10];
        r.extend(vec![0.5; 3]); // tiny dent
        r.extend(vec![5.0; 10]);
        let o = ordering_from(&r, 2);
        let clusters = extract_xi(&o, 0.3, 10);
        assert!(clusters.is_empty(), "tiny dent should be filtered: {clusters:?}");
    }

    #[test]
    fn interval_helpers() {
        let a = XiCluster { start: 2, end: 10 };
        let b = XiCluster { start: 3, end: 9 };
        assert!(a.contains(&b));
        assert!(!b.contains(&a));
        assert_eq!(a.len(), 9);
        assert!(!a.is_empty());
    }

    #[test]
    #[should_panic(expected = "xi must be in")]
    fn rejects_bad_xi() {
        let o = ordering_from(&[1.0, 2.0], 2);
        extract_xi(&o, 1.5, 2);
    }

    #[test]
    fn nan_reachability_does_not_poison_extraction() {
        // A NaN inside a plateau must not crash or manufacture clusters out
        // of flat regions; the two real dents must still be found.
        let mut r = two_dents();
        r[5] = f64::NAN; // inside the leading plateau
        let o = ordering_from(&r, 3);
        let clusters = extract_xi(&o, 0.3, 5);
        assert!(
            clusters.iter().any(|c| (24..=26).contains(&c.end)),
            "first dent missing under NaN: {clusters:?}"
        );
        // An all-NaN plot yields nothing rather than panicking.
        let o = ordering_from(&[f64::NAN; 20], 3);
        assert!(extract_xi(&o, 0.3, 5).is_empty());
    }

    #[test]
    fn short_orderings_yield_nothing() {
        let o = ordering_from(&[1.0], 2);
        assert!(extract_xi(&o, 0.1, 1).is_empty());
        let o = ordering_from(&[], 2);
        assert!(extract_xi(&o, 0.1, 1).is_empty());
    }
}
