//! Randomized property tests of the OPTICS walk and the extraction
//! utilities, over many seeded random datasets.

use db_optics::{dbscan, extract_dbscan, extract_xi, median_smooth, optics_points, OpticsParams};
use db_rng::Rng;
use db_spatial::Dataset;

const CASES: u64 = 48;

fn random_dataset(rng: &mut Rng, max_n: usize, dim: usize) -> Dataset {
    let n = rng.gen_range(2..max_n);
    let mut ds = Dataset::new(dim).unwrap();
    let mut row = vec![0.0; dim];
    for _ in 0..n {
        for x in &mut row {
            *x = rng.gen_f64(-50.0, 50.0);
        }
        ds.push(&row).unwrap();
    }
    ds
}

/// The cluster ordering visits every object exactly once.
#[test]
fn ordering_is_a_permutation() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(seed);
        let ds = random_dataset(&mut rng, 150, 2);
        let eps = rng.gen_f64(0.5, 200.0);
        let min_pts = rng.gen_range(1..10);
        let o = optics_points(&ds, &OpticsParams { eps, min_pts });
        assert_eq!(o.len(), ds.len(), "seed {seed}");
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..ds.len()).collect::<Vec<_>>(), "seed {seed}");
    }
}

/// Core-distances are ≤ eps when defined and reachabilities are
/// non-negative.
#[test]
fn distances_respect_bounds() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(100 + seed);
        let ds = random_dataset(&mut rng, 120, 2);
        let eps = rng.gen_f64(0.5, 100.0);
        let min_pts = rng.gen_range(1..8);
        let o = optics_points(&ds, &OpticsParams { eps, min_pts });
        for e in &o.entries {
            if e.is_core() {
                assert!(e.core_distance >= 0.0, "seed {seed}");
                assert!(e.core_distance <= eps + 1e-9, "seed {seed}");
            }
            if e.has_reachability() {
                assert!(e.reachability >= 0.0, "seed {seed}");
            }
        }
    }
}

/// With ε = ∞ and MinPts = 1 every object is core and only the first walk
/// position has undefined reachability.
#[test]
fn unbounded_run_is_fully_connected() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(200 + seed);
        let ds = random_dataset(&mut rng, 80, 3);
        let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 1 });
        let undefined = o.entries.iter().filter(|e| !e.has_reachability()).count();
        assert_eq!(undefined, 1, "seed {seed}");
        assert!(o.entries.iter().all(|e| e.is_core()), "seed {seed}");
    }
}

/// Flat extraction yields a valid labeling: labels in {-1} ∪ [0, k), every
/// cluster id that appears is dense (no gaps).
#[test]
fn extraction_labels_are_dense() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(300 + seed);
        let ds = random_dataset(&mut rng, 120, 2);
        let eps = rng.gen_f64(1.0, 100.0);
        let cut_frac = rng.gen_f64(0.05, 1.0);
        let o = optics_points(&ds, &OpticsParams { eps, min_pts: 3 });
        let labels = extract_dbscan(&o, eps * cut_frac, ds.len());
        assert_eq!(labels.len(), ds.len(), "seed {seed}");
        let max = labels.iter().copied().max().unwrap_or(-1);
        for l in 0..=max {
            assert!(labels.contains(&l), "seed {seed}: label {l} missing below max {max}");
        }
        assert!(labels.iter().all(|&l| l >= -1), "seed {seed}");
    }
}

/// DBSCAN and OPTICS-based extraction agree on the number of dense
/// clusters when run with identical parameters (cluster memberships can
/// differ on border points only).
#[test]
fn dbscan_and_extraction_cluster_counts_match() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(400 + seed);
        let ds = random_dataset(&mut rng, 100, 2);
        let eps = rng.gen_f64(1.0, 30.0);
        let min_pts = 4;
        let direct = dbscan(&ds, eps, min_pts);
        let o = optics_points(&ds, &OpticsParams { eps: eps * 2.0, min_pts });
        let extracted = extract_dbscan(&o, eps, ds.len());
        let count = |labels: &[i32]| {
            let mut v: Vec<i32> = labels.iter().copied().filter(|&l| l >= 0).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        assert_eq!(count(&direct), count(&extracted), "seed {seed}");
    }
}

/// ξ clusters are valid intervals within the plot, properly nested or
/// disjoint after tree construction.
#[test]
fn xi_clusters_are_valid_intervals() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(500 + seed);
        let ds = random_dataset(&mut rng, 150, 2);
        let xi = rng.gen_f64(0.01, 0.9);
        let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 2 });
        let clusters = extract_xi(&o, xi, 2);
        for c in &clusters {
            assert!(c.start < c.end, "seed {seed}");
            assert!(c.end < o.len(), "seed {seed}");
        }
    }
}

/// Median smoothing preserves length and stays within the input's range.
#[test]
fn median_smooth_stays_in_range() {
    for seed in 0..CASES {
        let mut rng = Rng::seed_from_u64(600 + seed);
        let n = rng.gen_range(3..100);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_f64(0.0, 100.0)).collect();
        let half = rng.gen_range(1..6);
        let s = median_smooth(&values, half);
        assert_eq!(s.len(), values.len(), "seed {seed}");
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in s {
            assert!(v >= lo && v <= hi, "seed {seed}");
        }
    }
}
