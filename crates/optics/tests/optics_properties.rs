//! Property tests of the OPTICS walk and the extraction utilities on
//! arbitrary point data.

use db_optics::{
    dbscan, extract_dbscan, extract_xi, median_smooth, optics_points, OpticsParams,
};
use db_spatial::Dataset;
use proptest::prelude::*;

fn dataset_strategy(max_n: usize, dim: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim), 2..max_n).prop_map(
        move |rows| {
            let mut ds = Dataset::new(dim).unwrap();
            for r in &rows {
                ds.push(r).unwrap();
            }
            ds
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cluster ordering visits every object exactly once.
    #[test]
    fn ordering_is_a_permutation(
        ds in dataset_strategy(150, 2),
        eps in 0.5f64..200.0,
        min_pts in 1usize..10,
    ) {
        let o = optics_points(&ds, &OpticsParams { eps, min_pts });
        prop_assert_eq!(o.len(), ds.len());
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..ds.len()).collect::<Vec<_>>());
    }

    /// Reachabilities never under-run the core distance of the predecessor
    /// structure: every finite reachability is at least the distance to
    /// *some* previously processed object's core distance. We check the
    /// weaker but exact invariant that reachability ≥ 0 and core-distances
    /// are ≤ eps when defined.
    #[test]
    fn distances_respect_bounds(
        ds in dataset_strategy(120, 2),
        eps in 0.5f64..100.0,
        min_pts in 1usize..8,
    ) {
        let o = optics_points(&ds, &OpticsParams { eps, min_pts });
        for e in &o.entries {
            if e.is_core() {
                prop_assert!(e.core_distance >= 0.0);
                prop_assert!(e.core_distance <= eps + 1e-9);
            }
            if e.has_reachability() {
                prop_assert!(e.reachability >= 0.0);
            }
        }
    }

    /// With ε = ∞ and MinPts = 1 every object is core and only the first
    /// walk position has undefined reachability.
    #[test]
    fn unbounded_run_is_fully_connected(ds in dataset_strategy(80, 3)) {
        let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 1 });
        let undefined = o.entries.iter().filter(|e| !e.has_reachability()).count();
        prop_assert_eq!(undefined, 1);
        prop_assert!(o.entries.iter().all(|e| e.is_core()));
    }

    /// Flat extraction yields a valid labeling: labels in {-1} ∪ [0, k),
    /// every cluster id that appears is dense (no gaps).
    #[test]
    fn extraction_labels_are_dense(
        ds in dataset_strategy(120, 2),
        eps in 1.0f64..100.0,
        cut_frac in 0.05f64..1.0,
    ) {
        let o = optics_points(&ds, &OpticsParams { eps, min_pts: 3 });
        let labels = extract_dbscan(&o, eps * cut_frac, ds.len());
        prop_assert_eq!(labels.len(), ds.len());
        let max = labels.iter().copied().max().unwrap_or(-1);
        for l in 0..=max {
            prop_assert!(labels.contains(&l), "label {l} missing below max {max}");
        }
        prop_assert!(labels.iter().all(|&l| l >= -1));
    }

    /// DBSCAN and OPTICS-based extraction agree on the number of dense
    /// clusters when run with identical parameters (cluster memberships can
    /// differ on border points only).
    #[test]
    fn dbscan_and_extraction_cluster_counts_match(
        ds in dataset_strategy(100, 2),
        eps in 1.0f64..30.0,
    ) {
        let min_pts = 4;
        let direct = dbscan(&ds, eps, min_pts);
        let o = optics_points(&ds, &OpticsParams { eps: eps * 2.0, min_pts });
        let extracted = extract_dbscan(&o, eps, ds.len());
        let count = |labels: &[i32]| {
            let mut v: Vec<i32> = labels.iter().copied().filter(|&l| l >= 0).collect();
            v.sort_unstable();
            v.dedup();
            v.len()
        };
        prop_assert_eq!(count(&direct), count(&extracted));
    }

    /// ξ clusters are valid intervals within the plot, properly nested or
    /// disjoint after tree construction.
    #[test]
    fn xi_clusters_are_valid_intervals(
        ds in dataset_strategy(150, 2),
        xi in 0.01f64..0.9,
    ) {
        let o = optics_points(&ds, &OpticsParams { eps: f64::INFINITY, min_pts: 2 });
        let clusters = extract_xi(&o, xi, 2);
        for c in &clusters {
            prop_assert!(c.start < c.end);
            prop_assert!(c.end < o.len());
        }
    }

    /// Median smoothing is idempotent on constant plots and bounded by the
    /// input's range.
    #[test]
    fn median_smooth_stays_in_range(
        values in prop::collection::vec(0.0f64..100.0, 3..100),
        half in 1usize..6,
    ) {
        let s = median_smooth(&values, half);
        prop_assert_eq!(s.len(), values.len());
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for v in s {
            prop_assert!(v >= lo && v <= hi);
        }
    }
}
