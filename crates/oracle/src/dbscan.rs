//! Exact DBSCAN: the KDD'96 pseudocode with brute-force neighbourhoods.

use std::collections::VecDeque;

use db_spatial::Dataset;

use crate::knn::exact_range;

/// Exact DBSCAN (Ester et al., KDD 1996) over raw points. Returns one label
/// per object: cluster ids `0..`, `-1` for noise.
///
/// Semantics pinned by this oracle, shared with [`db_optics::dbscan`]:
/// objects are visited in id order; a core object (≥ MinPts objects within
/// ε, itself included) opens a cluster that is grown breadth-first; border
/// objects keep the first cluster that reaches them.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps < 0`.
pub fn exact_dbscan(ds: &Dataset, eps: f64, min_pts: usize) -> Vec<i32> {
    assert!(min_pts >= 1, "MinPts must be at least 1");
    assert!(eps >= 0.0, "eps must be non-negative");
    let n = ds.len();
    let mut labels = vec![-1i32; n];
    let mut visited = vec![false; n];
    let mut cluster = -1i32;
    let mut queue: VecDeque<usize> = VecDeque::new();

    for i in 0..n {
        if visited[i] {
            continue;
        }
        visited[i] = true;
        let neighbors = exact_range(ds, ds.point(i), eps);
        if neighbors.len() < min_pts {
            continue; // noise for now; may become a border object later
        }
        cluster += 1;
        labels[i] = cluster;
        queue.clear();
        queue.extend(neighbors.iter().map(|nb| nb.id));
        while let Some(j) = queue.pop_front() {
            if labels[j] == -1 {
                labels[j] = cluster;
            }
            if visited[j] {
                continue;
            }
            visited[j] = true;
            let neighbors = exact_range(ds, ds.point(j), eps);
            if neighbors.len() >= min_pts {
                queue.extend(neighbors.iter().map(|nb| nb.id));
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_clusters_and_noise_hand_checked() {
        // {0, 1, 2} within eps of each other, {10, 11} likewise, 50 alone.
        let ds =
            Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0], &[10.0], &[11.0], &[50.0]]).unwrap();
        let labels = exact_dbscan(&ds, 1.5, 2);
        assert_eq!(labels, vec![0, 0, 0, 1, 1, -1]);
    }

    #[test]
    fn border_object_keeps_first_cluster() {
        // 2 is a border object of both {0,1,2} and {2,3,4} at MinPts=3:
        // its neighbourhood {1,2,3} holds 3 objects, so it is actually core
        // and bridges everything into one cluster — use MinPts=4 to make it
        // a genuine border object of the left cluster only.
        let ds = Dataset::from_rows(
            1,
            &[&[0.0], &[0.5], &[1.0], &[1.5], &[2.0], &[10.0], &[10.2], &[10.4], &[10.6], &[10.8]],
        )
        .unwrap();
        let labels = exact_dbscan(&ds, 1.0, 4);
        // Left chain 0..5 is one cluster (every point has ≥ 4 within 1.0
        // except the end points, which are borders), right blob another.
        assert!(labels[..5].iter().all(|&l| l == 0), "{labels:?}");
        assert!(labels[5..].iter().all(|&l| l == 1), "{labels:?}");
    }

    #[test]
    fn all_noise_when_eps_tiny() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0]]).unwrap();
        assert_eq!(exact_dbscan(&ds, 1e-9, 2), vec![-1, -1, -1]);
    }

    #[test]
    fn min_pts_one_makes_everything_a_cluster() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[100.0]]).unwrap();
        assert_eq!(exact_dbscan(&ds, 1.0, 1), vec![0, 1]);
    }
}
