//! Brute-force ε-range and k-NN queries: the ground truth for every
//! spatial index in `db-spatial`.
//!
//! The sweeps stream the flat point buffer through the cache-blocked
//! [`db_spatial::dists_to_block`] kernel, so the oracle evaluates the
//! *same canonical reduction order* as production (one set of bits to
//! verify, not two). The oracle's independence is preserved one level
//! down: `tests/kernel_equivalence.rs` pins the kernel bit-for-bit
//! against a plain indexed-loop emulation of the documented order.

use db_spatial::{dists_to_block, Dataset, Neighbor};

/// Rows per kernel block of the brute-force sweeps.
const BLOCK_ROWS: usize = 256;

/// Squared distances from `q` to every point, via the blocked kernel.
fn all_sq_dists(ds: &Dataset, q: &[f64]) -> Vec<f64> {
    let dim = ds.dim();
    let mut out = vec![0.0f64; ds.len()];
    for (chunk, o) in ds.as_flat().chunks(BLOCK_ROWS * dim).zip(out.chunks_mut(BLOCK_ROWS)) {
        dists_to_block(q, chunk, dim, &mut o[..chunk.len() / dim]);
    }
    out
}

/// The exact ε-neighbourhood of `q`: every point with distance ≤ `eps`,
/// sorted ascending by `(distance, id)` — the canonical result order of
/// [`db_spatial::SpatialIndex::range`]. A NaN or negative `eps` yields an
/// empty result (matching the index contract).
///
/// ORACLE: ε-inclusion is decided in *squared* space (`d² ≤ eps²`), exactly
/// as the indexes do. A sqrt-space predicate (`√d² ≤ eps`) can disagree by
/// one ulp when `eps` equals a reported neighbour distance, because
/// `fl(√x)² < x` is possible; the squared predicate is the repo-wide
/// convention, so the oracle pins that convention rather than a subtly
/// different one. See DESIGN.md §10 (tolerance policy).
pub fn exact_range(ds: &Dataset, q: &[f64], eps: f64) -> Vec<Neighbor> {
    if eps.is_nan() || eps < 0.0 {
        return Vec::new();
    }
    let eps_sq = eps * eps;
    let mut out: Vec<Neighbor> = all_sq_dists(ds, q)
        .into_iter()
        .enumerate()
        .filter(|&(_, d2)| d2 <= eps_sq)
        .map(|(id, d2)| Neighbor::new(id, d2.sqrt()))
        .collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out
}

/// The exact k nearest neighbours of `q` (fewer when the dataset is
/// smaller), selected by `(distance, id)` and returned sorted by
/// `(distance, id)` — the canonical order of
/// [`db_spatial::SpatialIndex::knn`]. Selection happens in squared space,
/// mirroring the indexes, so boundary ties resolve identically.
pub fn exact_knn(ds: &Dataset, q: &[f64], k: usize) -> Vec<Neighbor> {
    let mut all: Vec<(f64, usize)> =
        all_sq_dists(ds, q).into_iter().enumerate().map(|(id, d2)| (d2, id)).collect();
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(k);
    let mut out: Vec<Neighbor> =
        all.into_iter().map(|(d2, id)| Neighbor::new(id, d2.sqrt())).collect();
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.id.cmp(&b.id)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> Dataset {
        Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0], &[3.0], &[10.0]]).unwrap()
    }

    #[test]
    fn range_is_inclusive_and_sorted() {
        let ds = line();
        let out = exact_range(&ds, &[1.0], 1.0);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0, 2]);
        assert_eq!(out[0].dist, 0.0);
        assert_eq!(out[1].dist, 1.0); // exactly at eps: included
        assert_eq!(out[2].dist, 1.0);
    }

    #[test]
    fn range_ties_break_by_id() {
        // Points 0 and 2 are both at distance 1 from the query.
        let ds = line();
        let out = exact_range(&ds, &[1.0], 5.0);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0, 2, 3]);
    }

    #[test]
    fn range_degenerate_eps() {
        let ds = line();
        assert!(exact_range(&ds, &[0.0], -1.0).is_empty());
        assert!(exact_range(&ds, &[0.0], f64::NAN).is_empty());
        assert_eq!(exact_range(&ds, &[0.0], f64::INFINITY).len(), 5);
        assert_eq!(exact_range(&ds, &[0.0], 0.0).len(), 1); // only the point itself
    }

    #[test]
    fn knn_selects_smallest_with_id_ties() {
        let ds = line();
        let out = exact_knn(&ds, &[1.0], 3);
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0, 2]);
        let out = exact_knn(&ds, &[1.0], 2);
        // Tie at distance 1 between ids 0 and 2: the smaller id wins.
        assert_eq!(out.iter().map(|n| n.id).collect::<Vec<_>>(), vec![1, 0]);
    }

    #[test]
    fn knn_clamps_to_dataset_size() {
        let ds = line();
        assert_eq!(exact_knn(&ds, &[0.0], 100).len(), 5);
        assert!(exact_knn(&ds, &[0.0], 0).is_empty());
    }
}
