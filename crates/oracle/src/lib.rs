//! Deliberately naive, obviously-correct reference implementations
//! ("oracles") for differential testing of the Data Bubbles pipeline.
//!
//! Every optimized component of the workspace has a counterpart here whose
//! only design goal is to be *auditable against the published definition*:
//!
//! * [`exact_range`] / [`exact_knn`] — O(n) brute-force proximity queries
//!   (the truth the spatial indexes must reproduce bit for bit);
//! * [`exact_optics`] — O(n²) OPTICS on raw points with a linear-scan seed
//!   list instead of a heap (Ankerst et al. 1999, Figures 5–7);
//! * [`exact_dbscan`] — the KDD'96 pseudocode with brute-force
//!   neighbourhoods;
//! * [`exact_single_link`] — O(n³) agglomerative single-link clustering by
//!   literal pairwise minimization;
//! * [`exact_bubble`] — Data Bubble statistics straight from Definition 10
//!   and Lemma 1 of the paper, computed pairwise without sufficient
//!   statistics.
//!
//! None of this code is reachable from the production pipeline; it exists
//! so the differential harness (`tests/oracle_differential.rs`) and the
//! metamorphic suite (`tests/oracle_metamorphic.rs`) can compare the
//! optimized paths against an implementation simple enough to trust by
//! inspection. See DESIGN.md §10 for the verification architecture and the
//! tolerance policy (what must match exactly vs. within stable-statistics
//! tolerances).

#![warn(missing_docs)]

pub mod dbscan;
pub mod knn;
pub mod optics;
pub mod singlelink;
pub mod stats;

pub use dbscan::exact_dbscan;
pub use knn::{exact_knn, exact_range};
pub use optics::exact_optics;
pub use singlelink::{exact_single_link, exact_single_link_points};
pub use stats::{exact_bubble, ExactBubble};
