//! O(n²) exact OPTICS on raw points: no spatial index, no seed heap — the
//! next object is found by a linear scan over the reachability array.

use db_optics::{ClusterOrdering, OpticsParams, OrderingEntry, UNDEFINED};
use db_spatial::Dataset;

use crate::knn::exact_range;

/// Exact OPTICS over raw points (Ankerst et al. 1999, Figures 5–7; equals
/// Definitions 2–3 of the Data Bubbles paper).
///
/// Semantics pinned by this oracle, shared with [`db_optics::optics`]:
///
/// * fresh walk starts pick the lowest unprocessed id, with [`UNDEFINED`]
///   reachability;
/// * the next object within a walk is the unprocessed object with the
///   smallest `(reachability, id)` among those reached so far;
/// * the core-distance is the MinPts-th smallest neighbour distance (the
///   object itself included at distance 0) when at least MinPts objects lie
///   within ε, else [`UNDEFINED`].
///
/// The production walk keeps a lazy-deletion min-heap keyed by
/// `(reachability, id)`; this oracle re-scans all n objects at every step
/// instead, so its correctness is visible from the definition alone.
///
/// # Panics
///
/// Panics if `min_pts == 0` or `eps < 0`.
pub fn exact_optics(ds: &Dataset, params: &OpticsParams) -> ClusterOrdering {
    assert!(params.min_pts >= 1, "MinPts must be at least 1");
    assert!(params.eps >= 0.0, "eps must be non-negative");
    let n = ds.len();
    let mut ordering = ClusterOrdering {
        entries: Vec::with_capacity(n),
        eps: params.eps,
        min_pts: params.min_pts,
    };
    let mut processed = vec![false; n];
    let mut reach = vec![UNDEFINED; n];

    while ordering.entries.len() < n {
        // Linear-scan seed selection: smallest (reachability, id) among
        // unprocessed objects with a defined reachability; if none exists,
        // the lowest unprocessed id starts a fresh walk.
        let mut next: Option<(f64, usize)> = None;
        for (i, &r) in reach.iter().enumerate() {
            if processed[i] || !r.is_finite() {
                continue;
            }
            let better = match next {
                None => true,
                Some((best, _)) => r < best,
            };
            if better {
                next = Some((r, i));
            }
        }
        let (reachability, i) = next.unwrap_or_else(|| {
            let i = processed.iter().position(|&p| !p).expect("an unprocessed object remains");
            (UNDEFINED, i)
        });

        processed[i] = true;
        let neighbors = exact_range(ds, ds.point(i), params.eps);
        // Definition 3: the MinPts-distance, defined iff the neighbourhood
        // (self included) holds at least MinPts objects.
        let core = (neighbors.len() >= params.min_pts).then(|| neighbors[params.min_pts - 1].dist);
        ordering.entries.push(OrderingEntry {
            id: i,
            reachability,
            core_distance: core.unwrap_or(UNDEFINED),
            weight: 1,
        });
        if let Some(core) = core {
            for nb in &neighbors {
                if processed[nb.id] {
                    continue;
                }
                let new_reach = core.max(nb.dist);
                if new_reach < reach[nb.id] {
                    reach[nb.id] = new_reach;
                }
            }
        }
    }
    ordering
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_points_on_a_line_hand_checked() {
        // Points at 0, 1, 3 with MinPts=2: walk 0 → 1 → 2.
        // core(0) = 1 (2nd NN incl. self), reach(1) = max(1, 1) = 1,
        // core(1) = 1, reach(2) = max(core(1)=1, d(1,2)=2) = 2.
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[3.0]]).unwrap();
        let o = exact_optics(&ds, &OpticsParams { eps: 10.0, min_pts: 2 });
        let walk: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        assert_eq!(walk, vec![0, 1, 2]);
        assert!(o.entries[0].reachability.is_infinite());
        assert_eq!(o.entries[0].core_distance, 1.0);
        assert_eq!(o.entries[1].reachability, 1.0);
        assert_eq!(o.entries[2].reachability, 2.0);
    }

    #[test]
    fn ordering_is_a_permutation_with_isolated_point() {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..8 {
            ds.push(&[i as f64 * 0.1]).unwrap();
        }
        ds.push(&[100.0]).unwrap();
        let o = exact_optics(&ds, &OpticsParams { eps: 1.0, min_pts: 3 });
        assert_eq!(o.len(), 9);
        let mut ids: Vec<usize> = o.entries.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
        // The isolated point is not core and unreachable.
        let iso = o.entries.iter().find(|e| e.id == 8).unwrap();
        assert!(!iso.is_core());
        assert!(!iso.has_reachability());
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::new(2).unwrap();
        assert!(exact_optics(&empty, &OpticsParams::default()).is_empty());
        let one = Dataset::from_rows(2, &[&[1.0, 2.0]]).unwrap();
        let o = exact_optics(&one, &OpticsParams { eps: 1.0, min_pts: 1 });
        assert_eq!(o.len(), 1);
        assert_eq!(o.entries[0].core_distance, 0.0);
    }

    #[test]
    #[should_panic(expected = "MinPts")]
    fn zero_min_pts_panics() {
        let ds = Dataset::from_rows(1, &[&[0.0]]).unwrap();
        exact_optics(&ds, &OpticsParams { eps: 1.0, min_pts: 0 });
    }
}
