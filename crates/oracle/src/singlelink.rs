//! O(n³) agglomerative single-link clustering by literal pairwise
//! minimization — the reference for `db-hierarchical`'s SLINK.

use db_hierarchical::{Dendrogram, Merge};
use db_spatial::{euclidean, Dataset};

/// Exact single-link agglomeration over `n` objects with distances from
/// `dist`: repeatedly merge the two active clusters whose closest member
/// pair is smallest, recomputing every cross-cluster distance from scratch
/// each round. Ties (exactly equal linkage distances) keep the earlier
/// pair in `(creation order)` scan order.
///
/// Node numbering is scipy-style (leaves `0..n`, merge `i` creates node
/// `n + i`), matching [`db_hierarchical::Dendrogram`].
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn exact_single_link(n: usize, dist: &impl Fn(usize, usize) -> f64) -> Dendrogram {
    assert!(n >= 1, "need at least one object");
    // Active clusters as (dendrogram node id, member leaves).
    let mut active: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n - 1);
    for step in 0..n - 1 {
        let mut best: Option<(f64, usize, usize)> = None;
        for ia in 0..active.len() {
            for ib in ia + 1..active.len() {
                // Single link: the minimum over all cross pairs.
                let mut d = f64::INFINITY;
                for &p in &active[ia].1 {
                    for &q in &active[ib].1 {
                        let dpq = dist(p, q);
                        if dpq < d {
                            d = dpq;
                        }
                    }
                }
                let better = match best {
                    None => true,
                    Some((bd, _, _)) => d < bd,
                };
                if better {
                    best = Some((d, ia, ib));
                }
            }
        }
        let (d, ia, ib) = best.expect("at least two active clusters remain");
        let (node_b, members_b) = active.swap_remove(ib);
        let (node_a, members_a) = &mut active[ia];
        merges.push(Merge { a: *node_a, b: node_b, dist: d });
        *node_a = n + step;
        members_a.extend(members_b);
    }
    Dendrogram::new(n, merges)
}

/// [`exact_single_link`] over the Euclidean distances of a [`Dataset`].
///
/// # Panics
///
/// Panics if the dataset is empty.
pub fn exact_single_link_points(ds: &Dataset) -> Dendrogram {
    exact_single_link(ds.len(), &|i, j| euclidean(ds.point(i), ds.point(j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_merges_in_gap_order() {
        // Points at 0, 1, 3, 7: merges at distances 1, 2, 4.
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[3.0], &[7.0]]).unwrap();
        let d = exact_single_link_points(&ds);
        assert_eq!(d.n_leaves(), 4);
        let heights: Vec<f64> = d.merges().iter().map(|m| m.dist).collect();
        assert_eq!(heights, vec![1.0, 2.0, 4.0]);
        // First merge joins leaves 0 and 1 into node 4.
        assert_eq!((d.merges()[0].a, d.merges()[0].b), (0, 1));
        assert_eq!((d.merges()[1].a, d.merges()[1].b), (4, 2));
    }

    #[test]
    fn single_link_chains_through_bridges() {
        // Two pairs bridged by a midpoint: single link merges everything at
        // small heights (the chaining effect complete-link would avoid).
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0], &[3.0], &[4.0]]).unwrap();
        let d = exact_single_link_points(&ds);
        assert!(d.merges().iter().all(|m| m.dist == 1.0));
    }

    #[test]
    fn cut_recovers_two_groups() {
        let ds = Dataset::from_rows(1, &[&[0.0], &[0.5], &[10.0], &[10.5]]).unwrap();
        let d = exact_single_link_points(&ds);
        let labels = d.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn singleton_dendrogram() {
        let ds = Dataset::from_rows(1, &[&[5.0]]).unwrap();
        let d = exact_single_link_points(&ds);
        assert_eq!(d.n_leaves(), 1);
        assert!(d.merges().is_empty());
    }
}
