//! Data Bubble statistics computed pairwise, straight from Definition 10
//! and Lemma 1 — no sufficient statistics, no Welford updates.

use db_spatial::{euclidean_sq, Dataset};

/// A Data Bubble computed the naive way: the representative is the plain
/// arithmetic mean, the extent is the root-mean-square pairwise distance
/// of Definition 10,
/// `extent(B) = sqrt( Σᵢ Σⱼ d(Xᵢ, Xⱼ)² / (n·(n−1)) )` over ordered pairs
/// `i ≠ j`. The production `data-bubbles` crate derives both from CF
/// sufficient statistics instead; the differential harness checks the two
/// agree within the stable-statistics tolerance (DESIGN.md §10).
#[derive(Debug, Clone, PartialEq)]
pub struct ExactBubble {
    /// The mean vector.
    pub rep: Vec<f64>,
    /// Number of points summarized.
    pub n: u64,
    /// Definition 10 extent.
    pub extent: f64,
}

impl ExactBubble {
    /// Lemma 1: the expected k-NN distance inside the bubble,
    /// `(k/n)^(1/d) · extent`, clamped at `extent` for `k ≥ n`; `0` for a
    /// bubble of at most one point.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn nndist(&self, k: u64) -> f64 {
        assert!(k >= 1, "k-NN distance needs k >= 1");
        if self.n <= 1 {
            return 0.0;
        }
        let ratio = (k.min(self.n) as f64) / (self.n as f64);
        ratio.powf(1.0 / self.rep.len() as f64) * self.extent
    }
}

/// Computes the exact bubble over the points `ids` of `ds` by brute force:
/// O(|ids|²) distance evaluations for the extent, one accumulation pass for
/// the mean. Duplicate ids are counted as distinct points (positions in the
/// multiset of Definition 10).
///
/// # Panics
///
/// Panics if `ids` is empty.
pub fn exact_bubble(ds: &Dataset, ids: &[usize]) -> ExactBubble {
    assert!(!ids.is_empty(), "a bubble summarizes at least one point");
    let n = ids.len();
    let mut rep = vec![0.0; ds.dim()];
    for &i in ids {
        for (r, &x) in rep.iter_mut().zip(ds.point(i)) {
            *r += x;
        }
    }
    for r in &mut rep {
        *r /= n as f64;
    }
    let extent = if n > 1 {
        let mut sum_sq = 0.0;
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    sum_sq += euclidean_sq(ds.point(ids[a]), ds.point(ids[b]));
                }
            }
        }
        (sum_sq / (n * (n - 1)) as f64).sqrt()
    } else {
        0.0
    };
    ExactBubble { rep, n: n as u64, extent }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_points_hand_checked() {
        // Points 0 and 2: mean 1, pairwise sum 2·(2²) = 8, extent
        // sqrt(8 / 2) = 2 (the pairwise distance itself).
        let ds = Dataset::from_rows(1, &[&[0.0], &[2.0]]).unwrap();
        let b = exact_bubble(&ds, &[0, 1]);
        assert_eq!(b.rep, vec![1.0]);
        assert_eq!(b.n, 2);
        assert!((b.extent - 2.0).abs() < 1e-12);
    }

    #[test]
    fn three_points_hand_checked() {
        // Points 0, 1, 2: ordered-pair squared distances
        // 2·(1 + 4 + 1) = 12; extent = sqrt(12 / 6) = sqrt(2).
        let ds = Dataset::from_rows(1, &[&[0.0], &[1.0], &[2.0]]).unwrap();
        let b = exact_bubble(&ds, &[0, 1, 2]);
        assert_eq!(b.rep, vec![1.0]);
        assert!((b.extent - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn nndist_follows_lemma_1() {
        // 100 points, 2-d, extent 10: nndist(25) = sqrt(25/100)·10 = 5.
        let b = ExactBubble { rep: vec![0.0, 0.0], n: 100, extent: 10.0 };
        assert!((b.nndist(25) - 5.0).abs() < 1e-12);
        // k ≥ n clamps at the extent.
        assert!((b.nndist(1000) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_bubble() {
        let ds = Dataset::from_rows(2, &[&[3.0, 4.0]]).unwrap();
        let b = exact_bubble(&ds, &[0]);
        assert_eq!(b.rep, vec![3.0, 4.0]);
        assert_eq!(b.extent, 0.0);
        assert_eq!(b.nndist(1), 0.0);
    }

    #[test]
    fn duplicate_ids_count_as_points() {
        // The same point twice: mean is the point, extent 0.
        let ds = Dataset::from_rows(1, &[&[5.0]]).unwrap();
        let b = exact_bubble(&ds, &[0, 0]);
        assert_eq!(b.n, 2);
        assert_eq!(b.extent, 0.0);
    }
}
