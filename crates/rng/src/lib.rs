//! A small, deterministic, dependency-free random number generator for the
//! workspace.
//!
//! Every stochastic step in the pipelines (sampling representatives,
//! reservoir sampling, jittered data generation) needs *reproducible*
//! randomness: identical seeds must give identical results across runs,
//! platforms, and crate versions. This crate provides exactly that with a
//! [xoshiro256\*\*](https://prng.di.unimi.it/) generator seeded through
//! splitmix64, plus the handful of derived helpers the workspace uses
//! (uniform ranges, floats, shuffles, and distinct index sampling).
//!
//! It intentionally implements nothing else — no distributions, no OS
//! entropy, no traits — so it stays trivially auditable.

/// The splitmix64 step; used to expand a 64-bit seed into generator state.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256\*\* generator.
///
/// Deterministic: the sequence depends only on the seed. Not
/// cryptographically secure — this is a simulation/benchmark RNG.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a 64-bit seed (splitmix64 expansion, the
    /// initialization the xoshiro authors recommend).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` via Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below needs a positive bound");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, range: core::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "gen_range needs a non-empty range");
        range.start + self.next_below((range.end - range.start) as u64) as usize
    }

    /// A uniform `usize` in `[lo, hi]` (inclusive; supports `hi = 0`).
    pub fn gen_range_inclusive(&mut self, range: core::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_inclusive needs lo <= hi");
        lo + self.next_below((hi - lo) as u64 + 1) as usize
    }

    /// A uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` **distinct** indices from `0..n`, in random order.
    ///
    /// Uses Floyd's algorithm (O(k) memory, O(k) expected draws) so it is
    /// cheap even when `k << n`; for dense draws (`k` close to `n`) it
    /// falls back to a partial Fisher–Yates over `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct of {n}");
        if k == 0 {
            return Vec::new();
        }
        if k * 4 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            for i in 0..k {
                let j = i + self.next_below((n - i) as u64) as usize;
                all.swap(i, j);
            }
            all.truncate(k);
            return all;
        }
        // Floyd: for j in n-k..n, pick t in [0, j]; insert t unless taken,
        // else insert j. Order of insertion is already random enough for
        // our callers (who sort anyway), but we shuffle for parity with
        // rand's `index::sample` contract of random order.
        let mut chosen: Vec<usize> = Vec::with_capacity(k);
        let mut set = std::collections::HashSet::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_below(j as u64 + 1) as usize;
            let pick = if set.insert(t) { t } else { j };
            if pick != t {
                set.insert(j);
            }
            chosen.push(pick);
        }
        self.shuffle(&mut chosen);
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones_and_seeds() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_xoshiro_vector() {
        // First output of xoshiro256** seeded via splitmix64(0) must be
        // stable forever — pin it so refactors cannot silently change
        // every downstream "seeded" result in the workspace.
        let mut r = Rng::seed_from_u64(0);
        let first = r.next_u64();
        let mut again = Rng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_eq!(first, 11091344671253066420);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.next_below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = r.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range_inclusive(0..=0);
            assert_eq!(y, 0);
            let z = r.gen_range_inclusive(5..=6);
            assert!((5..=6).contains(&z));
        }
    }

    #[test]
    fn sample_indices_distinct_and_complete() {
        let mut r = Rng::seed_from_u64(3);
        for (n, k) in [(100, 10), (50, 50), (1000, 3), (8, 6), (1, 1), (5, 0)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k, "n={n} k={k}");
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates for n={n} k={k}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_uniformish() {
        // Each of 10 indices should appear in a size-5 sample roughly half
        // the time over many trials.
        let mut r = Rng::seed_from_u64(11);
        let mut counts = [0u32; 10];
        for _ in 0..2_000 {
            for i in r.sample_indices(10, 5) {
                counts[i] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((800..1200).contains(&c), "index {i} count {c}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted, "astronomically unlikely identity shuffle");
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        Rng::seed_from_u64(0).sample_indices(3, 4);
    }
}
