//! The Bradley–Fayyad–Reina compression scheme (reference \[2\] of the Data
//! Bubbles paper, "Scaling Clustering Algorithms to Large Databases",
//! KDD 1998), as described in the paper's §2:
//!
//! > "the authors distinguish different sets of data items: A set of
//! > compressed data items **DS** which is intended to condense groups of
//! > points unlikely to change cluster membership […], a set of compressed
//! > data items **CS** which represents tight subclusters of data points,
//! > and a set of regular data points **RS** which contains all points
//! > which cannot be assigned to any of the compressed data items. While
//! > BIRCH uses the diameter to threshold compressed data items, \[2\] apply
//! > different threshold conditions for the construction of compressed
//! > data items in the sets DS and CS respectively."
//!
//! This implementation processes the data in chunks (the original works on
//! buffer loads from disk):
//!
//! 1. `primary_clusters` centers are fitted by k-means on the first chunk.
//! 2. Each point within `ds_threshold` standard deviations of its closest
//!    primary center (per-dimension Mahalanobis-like test) is *discarded*
//!    into that center's DS statistics.
//! 3. Leftover points are collected; at each chunk boundary they are
//!    clustered into candidate subclusters, and candidates whose
//!    per-dimension standard deviation is below `cs_max_std` become CS
//!    entries (merging with existing CS entries when the merged subcluster
//!    stays tight). The rest remain in RS as singletons.
//!
//! The output is a set of sufficient statistics `(n, LS, ss)` directly
//! usable by the Data Bubble pipelines.

use db_birch::Cf;
use db_spatial::Dataset;

/// Per-dimension sufficient statistics (BFR needs per-dimension variances,
/// unlike the scalar-`ss` CF of Definition 1).
#[derive(Debug, Clone, PartialEq)]
struct DimStats {
    n: u64,
    ls: Vec<f64>,
    ss: Vec<f64>,
}

impl DimStats {
    fn empty(dim: usize) -> Self {
        Self { n: 0, ls: vec![0.0; dim], ss: vec![0.0; dim] }
    }

    fn add_point(&mut self, p: &[f64]) {
        self.n += 1;
        for ((l, s), &x) in self.ls.iter_mut().zip(self.ss.iter_mut()).zip(p) {
            *l += x;
            *s += x * x;
        }
    }

    fn merge(&mut self, other: &DimStats) {
        self.n += other.n;
        for (l, &o) in self.ls.iter_mut().zip(&other.ls) {
            *l += o;
        }
        for (s, &o) in self.ss.iter_mut().zip(&other.ss) {
            *s += o;
        }
    }

    fn mean(&self, j: usize) -> f64 {
        self.ls[j] / self.n as f64
    }

    fn variance(&self, j: usize) -> f64 {
        let n = self.n as f64;
        (self.ss[j] / n - (self.ls[j] / n).powi(2)).max(0.0)
    }

    fn max_std(&self) -> f64 {
        (0..self.ls.len()).map(|j| self.variance(j)).fold(0.0f64, f64::max).sqrt()
    }

    /// Squared normalized (Mahalanobis-like, diagonal covariance) distance
    /// of `p` from the statistics' mean. Dimensions with ~zero variance
    /// use the fallback scale.
    fn normalized_dist_sq(&self, p: &[f64], fallback_std: f64) -> f64 {
        let mut acc = 0.0;
        for (j, &x) in p.iter().enumerate() {
            let std = self.variance(j).sqrt().max(fallback_std).max(1e-12);
            let d = (x - self.mean(j)) / std;
            acc += d * d;
        }
        acc
    }

    fn to_cf(&self) -> Cf {
        Cf::from_parts(self.n, self.ls.clone(), self.ss.iter().sum())
    }
}

/// Parameters of [`bfr_compress`].
#[derive(Debug, Clone)]
pub struct BfrParams {
    /// Number of primary (DS) clusters.
    pub primary_clusters: usize,
    /// A point joins a DS cluster when its per-dimension normalized
    /// distance (in standard deviations, RMS over dimensions) is below
    /// this.
    pub ds_threshold: f64,
    /// A candidate subcluster becomes a CS entry when its largest
    /// per-dimension standard deviation is below this (absolute units).
    pub cs_max_std: f64,
    /// Chunk size of the streaming pass.
    pub chunk: usize,
    /// Seed for the internal k-means runs.
    pub seed: u64,
}

impl Default for BfrParams {
    fn default() -> Self {
        Self { primary_clusters: 20, ds_threshold: 2.0, cs_max_std: 1.0, chunk: 10_000, seed: 0 }
    }
}

/// The three output sets of the BFR compression.
#[derive(Debug, Clone)]
pub struct BfrResult {
    /// DS: one entry per primary cluster (may be fewer when clusters stay
    /// empty).
    pub discard: Vec<Cf>,
    /// CS: tight subclusters found among the leftovers.
    pub compressed: Vec<Cf>,
    /// RS: points retained as singletons.
    pub retained: Vec<Cf>,
}

impl BfrResult {
    /// All sufficient statistics concatenated (DS, then CS, then RS) — the
    /// representative set handed to a clustering algorithm.
    pub fn all_cfs(&self) -> Vec<Cf> {
        let mut out =
            Vec::with_capacity(self.discard.len() + self.compressed.len() + self.retained.len());
        out.extend(self.discard.iter().cloned());
        out.extend(self.compressed.iter().cloned());
        out.extend(self.retained.iter().cloned());
        out
    }

    /// Total number of summarized points.
    pub fn total_points(&self) -> u64 {
        self.all_cfs().iter().map(|cf| cf.n()).sum()
    }
}

/// Runs the BFR compression over a dataset.
///
/// # Panics
///
/// Panics if the dataset is empty or `primary_clusters == 0`.
pub fn bfr_compress(ds: &Dataset, params: &BfrParams) -> BfrResult {
    assert!(!ds.is_empty(), "cannot compress an empty dataset");
    assert!(params.primary_clusters >= 1, "need at least one primary cluster");
    let dim = ds.dim();
    let k = params.primary_clusters.min(ds.len());

    // Global scale used as variance fallback for fresh clusters.
    let fallback_std = global_std(ds).max(1e-9);

    // Primary centers: k-means on the first chunk.
    let first_chunk = ds.len().min(params.chunk.max(k));
    let init: Vec<usize> = (0..first_chunk).collect();
    let sample = ds.subset(&init);
    let centers = simple_kmeans(&sample, k, 20, params.seed);

    let mut discard: Vec<DimStats> = vec![DimStats::empty(dim); k];
    // Seed the DS statistics with their centers so the Mahalanobis test
    // has a mean from the start (weight 1; removed at the end).
    for (stats, c) in discard.iter_mut().zip(centers.chunks_exact(dim)) {
        stats.add_point(c);
    }

    let mut cs: Vec<DimStats> = Vec::new();
    let mut rs: Vec<Vec<f64>> = Vec::new();
    let threshold_sq = params.ds_threshold * params.ds_threshold;

    let mut processed = 0usize;
    while processed < ds.len() {
        let end = (processed + params.chunk).min(ds.len());
        for i in processed..end {
            let p = ds.point(i);
            // Closest primary center by normalized distance.
            let (best, d2) = discard
                .iter()
                .enumerate()
                .map(|(c, s)| (c, s.normalized_dist_sq(p, fallback_std) / dim as f64))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("k >= 1");
            if d2 <= threshold_sq {
                discard[best].add_point(p);
            } else {
                rs.push(p.to_vec());
            }
        }
        processed = end;
        condense_leftovers(&mut cs, &mut rs, dim, params);
    }

    // Remove the seeding pseudo-points from the DS statistics by
    // subtracting each center once; clusters that absorbed nothing vanish.
    let discard_cfs: Vec<Cf> = discard
        .iter()
        .zip(centers.chunks_exact(dim))
        .filter(|(s, _)| s.n > 1)
        .map(|(s, c)| {
            let mut ls = s.ls.clone();
            let mut ss_total: f64 = s.ss.iter().sum();
            for (l, &x) in ls.iter_mut().zip(c) {
                *l -= x;
                ss_total -= x * x;
            }
            Cf::from_parts(s.n - 1, ls, ss_total.max(0.0))
        })
        .collect();

    BfrResult {
        discard: discard_cfs,
        compressed: cs.iter().map(DimStats::to_cf).collect(),
        retained: rs.iter().map(|p| Cf::from_point(p)).collect(),
    }
}

/// Clusters the current RS into candidate subclusters; tight ones move to
/// CS (merging into an existing CS entry when the merge stays tight).
fn condense_leftovers(
    cs: &mut Vec<DimStats>,
    rs: &mut Vec<Vec<f64>>,
    dim: usize,
    params: &BfrParams,
) {
    if rs.len() < 4 {
        return;
    }
    let mut data = Dataset::with_capacity(dim, rs.len()).expect("dim > 0");
    for p in rs.iter() {
        data.push(p).expect("dim matches");
    }
    // Secondary k-means with ~sqrt(len) candidates.
    let k2 = ((rs.len() as f64).sqrt().ceil() as usize).clamp(1, rs.len());
    let centers = simple_kmeans(&data, k2, 10, params.seed ^ 0x5EC0);
    // Assign leftovers to candidates.
    let mut groups: Vec<DimStats> = vec![DimStats::empty(dim); k2];
    let mut membership = vec![0usize; rs.len()];
    for (i, p) in data.iter().enumerate() {
        let best = (0..k2)
            .min_by(|&a, &b| {
                db_spatial::euclidean_sq(p, &centers[a * dim..(a + 1) * dim])
                    .total_cmp(&db_spatial::euclidean_sq(p, &centers[b * dim..(b + 1) * dim]))
            })
            .expect("k2 >= 1");
        groups[best].add_point(p);
        membership[i] = best;
    }
    // Tight candidates (>= 2 points) become CS entries.
    let mut keep: Vec<Vec<f64>> = Vec::new();
    let mut promoted = vec![false; k2];
    for (g, stats) in groups.iter().enumerate() {
        if stats.n >= 2 && stats.max_std() <= params.cs_max_std {
            promoted[g] = true;
        }
    }
    for (i, p) in rs.drain(..).enumerate() {
        if !promoted[membership[i]] {
            keep.push(p);
        }
    }
    for (g, stats) in groups.into_iter().enumerate() {
        if promoted[g] {
            // Merge into the closest existing CS entry when it stays tight.
            let merged_into = cs.iter_mut().find(|existing| {
                let mut merged = (*existing).clone();
                merged.merge(&stats);
                merged.max_std() <= params.cs_max_std
            });
            match merged_into {
                Some(existing) => existing.merge(&stats),
                None => cs.push(stats),
            }
        }
    }
    *rs = keep;
}

/// Root-mean-square per-dimension standard deviation of the whole dataset.
fn global_std(ds: &Dataset) -> f64 {
    let mut stats = DimStats::empty(ds.dim());
    for p in ds.iter() {
        stats.add_point(p);
    }
    let dim = ds.dim() as f64;
    ((0..ds.dim()).map(|j| stats.variance(j)).sum::<f64>() / dim).sqrt()
}

/// A tiny dependency-free Lloyd k-means (the `db-hierarchical` crate
/// depends on `db-birch`, which would make a dependency from here
/// circular).
fn simple_kmeans(ds: &Dataset, k: usize, iters: usize, seed: u64) -> Vec<f64> {
    let dim = ds.dim();
    let k = k.min(ds.len()).max(1);
    // Deterministic spread-out init: stride sampling after seeding.
    let stride = (ds.len() / k).max(1);
    let offset = (seed as usize) % stride.max(1);
    let mut centers: Vec<f64> = Vec::with_capacity(k * dim);
    for c in 0..k {
        let idx = (offset + c * stride).min(ds.len() - 1);
        centers.extend_from_slice(ds.point(idx));
    }
    let mut assignment = vec![0usize; ds.len()];
    for _ in 0..iters {
        let mut changed = false;
        for (i, p) in ds.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    db_spatial::euclidean_sq(p, &centers[a * dim..(a + 1) * dim])
                        .total_cmp(&db_spatial::euclidean_sq(p, &centers[b * dim..(b + 1) * dim]))
                })
                .expect("k >= 1");
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0u64; k];
        for (i, p) in ds.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i] * dim..(assignment[i] + 1) * dim].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..dim {
                    centers[c * dim + j] = sums[c * dim + j] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }
    centers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        // Three tight groups plus scattered outliers.
        let mut ds = Dataset::new(2).unwrap();
        for c in [[0.0, 0.0], [50.0, 0.0], [0.0, 50.0]] {
            for i in 0..200 {
                ds.push(&[c[0] + (i % 20) as f64 * 0.05, c[1] + (i / 20) as f64 * 0.05]).unwrap();
            }
        }
        for i in 0..10 {
            ds.push(&[200.0 + i as f64 * 37.0, -100.0 - i as f64 * 11.0]).unwrap();
        }
        ds
    }

    #[test]
    fn counts_are_preserved() {
        let ds = blobs();
        let r = bfr_compress(&ds, &BfrParams { primary_clusters: 3, ..BfrParams::default() });
        assert_eq!(r.total_points(), ds.len() as u64);
    }

    #[test]
    fn dense_groups_land_in_ds() {
        let ds = blobs();
        let r = bfr_compress(&ds, &BfrParams { primary_clusters: 3, ..BfrParams::default() });
        // The three blobs dominate: DS holds the lion's share of points.
        let ds_points: u64 = r.discard.iter().map(Cf::n).sum();
        assert!(ds_points >= 550, "DS should absorb most of the 600 blob points, got {ds_points}");
        assert!(r.discard.len() <= 3);
    }

    #[test]
    fn outliers_stay_out_of_ds() {
        let ds = blobs();
        let r = bfr_compress(
            &ds,
            &BfrParams { primary_clusters: 3, ds_threshold: 1.5, ..BfrParams::default() },
        );
        // The 10 far-flung outliers cannot be absorbed by blob statistics:
        // they end up in CS or RS.
        let non_ds: u64 = r.compressed.iter().chain(&r.retained).map(Cf::n).sum();
        assert!(non_ds >= 10, "outliers were wrongly discarded into DS");
    }

    #[test]
    fn cs_entries_are_tight() {
        let ds = blobs();
        let params = BfrParams { primary_clusters: 2, cs_max_std: 1.0, ..BfrParams::default() };
        let r = bfr_compress(&ds, &params);
        for cf in &r.compressed {
            assert!(cf.n() >= 2);
            // The CF radius bounds the per-dimension std from above.
            assert!(
                cf.radius() <= params.cs_max_std * (ds.dim() as f64).sqrt() + 1e-9,
                "CS entry too loose: radius {}",
                cf.radius()
            );
        }
    }

    #[test]
    fn deterministic() {
        let ds = blobs();
        let p = BfrParams { primary_clusters: 3, seed: 5, ..BfrParams::default() };
        let a = bfr_compress(&ds, &p);
        let b = bfr_compress(&ds, &p);
        assert_eq!(a.all_cfs(), b.all_cfs());
    }

    #[test]
    fn single_point_dataset() {
        let ds = Dataset::from_rows(2, &[&[1.0, 2.0]]).unwrap();
        let r = bfr_compress(&ds, &BfrParams::default());
        assert_eq!(r.total_points(), 1);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        bfr_compress(&Dataset::new(2).unwrap(), &BfrParams::default());
    }

    #[test]
    fn chunked_processing_matches_totals() {
        let ds = blobs();
        let small_chunks = bfr_compress(
            &ds,
            &BfrParams { primary_clusters: 3, chunk: 64, ..BfrParams::default() },
        );
        assert_eq!(small_chunks.total_points(), ds.len() as u64);
    }
}
