//! Incremental maintenance of a sampling-based compression: once the
//! representatives are fixed, newly arriving objects are absorbed with one
//! nearest-neighbour query and one CF update (the additivity condition of
//! Definition 1) — no recompression pass.
//!
//! This supports the streaming/warehouse setting the paper's motivation
//! describes (databases that keep growing): keep one compression alive,
//! absorb inserts, and re-run OPTICS on the (cheap) bubble set whenever a
//! fresh cluster ordering is wanted.

use db_birch::Cf;
use db_spatial::{auto_index, AnyIndex, Dataset, SpatialIndex};

use crate::CompressedSample;

/// A live compression: fixed representatives plus growing sufficient
/// statistics and membership.
#[derive(Debug, Clone)]
pub struct IncrementalCompression {
    reps: Dataset,
    index: AnyIndex,
    stats: Vec<Cf>,
    assignment: Vec<u32>,
}

impl IncrementalCompression {
    /// Starts from an existing batch compression.
    pub fn from_sample(sample: &CompressedSample) -> Self {
        let index = auto_index(&sample.reps, None);
        Self {
            reps: sample.reps.clone(),
            index,
            stats: sample.stats.clone(),
            assignment: sample.assignment.clone(),
        }
    }

    /// Starts from bare representatives (each seeds its own statistics).
    ///
    /// # Panics
    ///
    /// Panics if `reps` is empty.
    pub fn from_representatives(reps: Dataset) -> Self {
        assert!(!reps.is_empty(), "need at least one representative");
        let stats = reps.iter().map(Cf::from_point).collect();
        let assignment = (0..reps.len() as u32).collect();
        let index = auto_index(&reps, None);
        Self { reps, index, stats, assignment }
    }

    /// Number of representatives.
    pub fn k(&self) -> usize {
        self.reps.len()
    }

    /// Number of objects absorbed so far (including the representatives
    /// when constructed via [`Self::from_representatives`]).
    pub fn n_objects(&self) -> usize {
        self.assignment.len()
    }

    /// The per-representative sufficient statistics.
    pub fn stats(&self) -> &[Cf] {
        &self.stats
    }

    /// The classification of every absorbed object, in arrival order.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The representatives.
    pub fn representatives(&self) -> &Dataset {
        &self.reps
    }

    /// Absorbs one new object: classifies it to the nearest representative
    /// and updates that representative's statistics. Returns the
    /// representative index.
    ///
    /// # Panics
    ///
    /// Panics if the point dimensionality differs.
    pub fn absorb(&mut self, point: &[f64]) -> usize {
        assert_eq!(point.len(), self.reps.dim(), "dimensionality mismatch");
        let nn = self.index.nearest(&self.reps, point).expect("reps non-empty");
        self.stats[nn.id].add_point(point);
        self.assignment.push(nn.id as u32);
        nn.id
    }

    /// Absorbs a batch of objects.
    pub fn absorb_all(&mut self, ds: &Dataset) {
        for p in ds.iter() {
            self.absorb(p);
        }
    }

    /// Per-representative member lists (arrival order indices).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignment.iter().enumerate() {
            out[a as usize].push(i);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress_by_sampling;

    fn line(n: usize) -> Dataset {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[i as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn incremental_equals_batch_for_same_data() {
        // Batch-compress the first half, absorb the second half one by
        // one; statistics must equal a batch classification of everything
        // against the same representatives.
        let ds = line(200);
        let first = ds.subset(&(0..100).collect::<Vec<_>>());
        let batch = compress_by_sampling(&first, 10, 7).unwrap();
        let mut inc = IncrementalCompression::from_sample(&batch);
        for i in 100..200 {
            inc.absorb(ds.point(i));
        }
        // Reference: classify all 200 points against the same reps.
        let assignment = crate::nn_classify(&ds, &batch.reps);
        let stats = crate::accumulate_stats(&ds, &assignment, 10);
        assert_eq!(inc.n_objects(), 200);
        for (a, b) in inc.stats().iter().zip(&stats) {
            assert_eq!(a.n(), b.n());
            for (x, y) in a.ls().iter().zip(b.ls()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn from_representatives_seeds_one_point_each() {
        let reps = line(5);
        let inc = IncrementalCompression::from_representatives(reps);
        assert_eq!(inc.k(), 5);
        assert_eq!(inc.n_objects(), 5);
        assert!(inc.stats().iter().all(|cf| cf.n() == 1));
    }

    #[test]
    fn absorb_assigns_to_nearest() {
        let reps = Dataset::from_rows(1, &[&[0.0], &[100.0]]).unwrap();
        let mut inc = IncrementalCompression::from_representatives(reps);
        assert_eq!(inc.absorb(&[10.0]), 0);
        assert_eq!(inc.absorb(&[90.0]), 1);
        assert_eq!(inc.members()[0], vec![0, 2]);
        assert_eq!(inc.members()[1], vec![1, 3]);
    }

    #[test]
    fn absorb_all_matches_loop() {
        let reps = line(4);
        let batch = line(50);
        let mut a = IncrementalCompression::from_representatives(reps.clone());
        a.absorb_all(&batch);
        let mut b = IncrementalCompression::from_representatives(reps);
        for p in batch.iter() {
            b.absorb(p);
        }
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn bubbles_from_incremental_stats_cluster_correctly() {
        // Stream two groups into a 4-rep compression; the derived bubble
        // weights must sum to the stream size.
        let reps = Dataset::from_rows(1, &[&[0.0], &[5.0], &[100.0], &[105.0]]).unwrap();
        let mut inc = IncrementalCompression::from_representatives(reps);
        for i in 0..100 {
            inc.absorb(&[(i % 10) as f64]);
            inc.absorb(&[100.0 + (i % 10) as f64]);
        }
        let total: u64 = inc.stats().iter().map(Cf::n).sum();
        assert_eq!(total, 204);
        // The stats feed straight into a bubble space.
        let centroids: Vec<_> = inc.stats().iter().map(|cf| cf.centroid()[0]).collect();
        assert!(centroids[0] < 10.0 && centroids[2] > 90.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn absorb_wrong_dim_panics() {
        let mut inc = IncrementalCompression::from_representatives(line(3));
        inc.absorb(&[0.0, 1.0]);
    }
}
