//! Incremental maintenance of a sampling-based compression: once the
//! representatives are fixed, newly arriving objects are absorbed with one
//! nearest-neighbour query and one CF update (the additivity condition of
//! Definition 1) — no recompression pass.
//!
//! This supports the streaming/warehouse setting the paper's motivation
//! describes (databases that keep growing): keep one compression alive,
//! absorb inserts, and re-run OPTICS on the (cheap) bubble set whenever a
//! fresh cluster ordering is wanted.
//!
//! # Ingest boundary
//!
//! Absorption is an ingest boundary exactly like [`Dataset`] construction:
//! a single NaN/∞ coordinate added to a [`Cf`] permanently corrupts that
//! representative's statistics (no subtraction can remove it), and object
//! ids travel as `u32`, so absorbing past [`Dataset::MAX_POINTS`] objects
//! would silently truncate ids. [`IncrementalCompression::try_absorb`] and
//! [`IncrementalCompression::try_absorb_all`] therefore validate *before*
//! mutating anything and return a typed [`SpatialError`]; on `Err` the
//! compression is bit-for-bit unchanged. The panicking
//! [`IncrementalCompression::absorb`] forms remain as thin wrappers for
//! validated input only.

use db_birch::Cf;
use db_spatial::{auto_index, id_u32, AnyIndex, Dataset, SpatialError, SpatialIndex};

use crate::CompressedSample;

/// A live compression: fixed representatives plus growing sufficient
/// statistics and membership.
#[derive(Debug, Clone)]
pub struct IncrementalCompression {
    reps: Dataset,
    index: AnyIndex,
    stats: Vec<Cf>,
    assignment: Vec<u32>,
    /// Objects absorbed so far. Equal to `assignment.len()` except in
    /// tests that inject an artificial count to exercise the
    /// [`Dataset::MAX_POINTS`] boundary without 2³² real absorbs.
    absorbed: usize,
}

impl IncrementalCompression {
    /// Starts from an existing batch compression.
    pub fn from_sample(sample: &CompressedSample) -> Self {
        let index = auto_index(&sample.reps, None);
        Self {
            reps: sample.reps.clone(),
            index,
            stats: sample.stats.clone(),
            assignment: sample.assignment.clone(),
            absorbed: sample.assignment.len(),
        }
    }

    /// Starts from bare representatives (each seeds its own statistics).
    ///
    /// # Panics
    ///
    /// Panics if `reps` is empty.
    pub fn from_representatives(reps: Dataset) -> Self {
        assert!(!reps.is_empty(), "need at least one representative");
        let stats = reps.iter().map(Cf::from_point).collect();
        let assignment: Vec<u32> = (0..id_u32(reps.len())).collect();
        let absorbed = assignment.len();
        let index = auto_index(&reps, None);
        Self { reps, index, stats, assignment, absorbed }
    }

    /// Number of representatives.
    pub fn k(&self) -> usize {
        self.reps.len()
    }

    /// Number of objects absorbed so far (including the representatives
    /// when constructed via [`Self::from_representatives`]).
    pub fn n_objects(&self) -> usize {
        self.absorbed
    }

    /// The per-representative sufficient statistics.
    pub fn stats(&self) -> &[Cf] {
        &self.stats
    }

    /// The classification of every absorbed object, in arrival order.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The representatives.
    pub fn representatives(&self) -> &Dataset {
        &self.reps
    }

    /// Total mass (sum of per-representative CF counts). Equals
    /// [`Self::n_objects`] for compressions built by the constructors in
    /// this module.
    pub fn total_mass(&self) -> u64 {
        self.stats.iter().map(Cf::n).sum()
    }

    /// Validates one candidate point without mutating anything.
    fn check_point(&self, point: &[f64]) -> Result<(), SpatialError> {
        if point.len() != self.reps.dim() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.reps.dim(),
                got: point.len(),
            });
        }
        if let Some(coord) = point.iter().position(|x| !x.is_finite()) {
            return Err(SpatialError::NonFiniteCoordinate { point: self.absorbed, coord });
        }
        Ok(())
    }

    /// Fails when absorbing `extra` more objects would push the object
    /// count past the `u32` id range.
    fn check_capacity(&self, extra: usize) -> Result<(), SpatialError> {
        let len = self.absorbed.saturating_add(extra);
        if len > Dataset::MAX_POINTS {
            return Err(SpatialError::TooManyPoints { len, max: Dataset::MAX_POINTS });
        }
        Ok(())
    }

    /// Absorbs the (already validated) point. Internal: callers must have
    /// run [`Self::check_point`] and [`Self::check_capacity`] first.
    fn absorb_unchecked(&mut self, point: &[f64]) -> usize {
        let nn = self.index.nearest(&self.reps, point).expect("reps non-empty");
        self.stats[nn.id].add_point(point);
        self.assignment.push(id_u32(nn.id));
        self.absorbed += 1;
        nn.id
    }

    /// Absorbs one new object: classifies it to the nearest representative
    /// and updates that representative's statistics. Returns the
    /// representative index.
    ///
    /// Validation happens *before* any mutation: on `Err` the statistics,
    /// assignment and object count are bit-for-bit unchanged.
    ///
    /// # Errors
    ///
    /// * [`SpatialError::DimensionMismatch`] — wrong point length;
    /// * [`SpatialError::NonFiniteCoordinate`] — NaN or ±∞ coordinate
    ///   (`point` is the would-be object index, i.e. the current
    ///   [`Self::n_objects`]);
    /// * [`SpatialError::TooManyPoints`] — the absorb would exceed
    ///   [`Dataset::MAX_POINTS`] objects (u32 id range).
    pub fn try_absorb(&mut self, point: &[f64]) -> Result<usize, SpatialError> {
        self.check_point(point)?;
        self.check_capacity(1)?;
        Ok(self.absorb_unchecked(point))
    }

    /// Absorbs a batch of objects atomically: the whole batch is validated
    /// (dimensionality, finiteness, id-range capacity) before the first
    /// point is absorbed, so on `Err` nothing was absorbed. Returns the
    /// representative index of every point, in batch order.
    ///
    /// `Dataset` construction already rejects non-finite coordinates, but
    /// the batch is re-checked defensively (it may come from
    /// [`Dataset::from_flat_unchecked`]).
    ///
    /// # Errors
    ///
    /// As [`Self::try_absorb`]; the `point` index of a
    /// [`SpatialError::NonFiniteCoordinate`] counts from the current
    /// [`Self::n_objects`].
    pub fn try_absorb_all(&mut self, ds: &Dataset) -> Result<Vec<usize>, SpatialError> {
        if ds.dim() != self.reps.dim() {
            return Err(SpatialError::DimensionMismatch {
                expected: self.reps.dim(),
                got: ds.dim(),
            });
        }
        self.check_capacity(ds.len())?;
        for (i, p) in ds.iter().enumerate() {
            if let Some(coord) = p.iter().position(|x| !x.is_finite()) {
                return Err(SpatialError::NonFiniteCoordinate { point: self.absorbed + i, coord });
            }
        }
        Ok(ds.iter().map(|p| self.absorb_unchecked(p)).collect())
    }

    /// Absorbs one new object. **Validated input only** — thin wrapper
    /// around [`Self::try_absorb`] for points already known to be finite
    /// and within the id range.
    ///
    /// # Panics
    ///
    /// Panics on any [`Self::try_absorb`] error (dimensionality mismatch,
    /// non-finite coordinate, id-range overflow).
    pub fn absorb(&mut self, point: &[f64]) -> usize {
        match self.try_absorb(point) {
            Ok(rep) => rep,
            Err(e @ SpatialError::DimensionMismatch { .. }) => {
                panic!("dimensionality mismatch: {e}")
            }
            Err(e) => panic!("absorb of invalid point: {e}"),
        }
    }

    /// Absorbs a batch of objects. **Validated input only** — thin wrapper
    /// around [`Self::try_absorb_all`].
    ///
    /// # Panics
    ///
    /// Panics on any [`Self::try_absorb_all`] error.
    pub fn absorb_all(&mut self, ds: &Dataset) {
        if let Err(e) = self.try_absorb_all(ds) {
            panic!("absorb of invalid batch: {e}");
        }
    }

    /// Per-representative member lists (arrival order indices).
    pub fn members(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.k()];
        for (i, &a) in self.assignment.iter().enumerate() {
            out[a as usize].push(i);
        }
        out
    }

    /// Overrides the absorbed-object count. **Test injection only**: lets
    /// the [`Dataset::MAX_POINTS`] boundary be exercised without 2³² real
    /// absorbs. After the call [`Self::n_objects`] and
    /// [`Self::assignment`]`.len()` disagree — never use outside tests.
    #[doc(hidden)]
    pub fn force_object_count_for_tests(&mut self, n: usize) {
        self.absorbed = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress_by_sampling;

    fn line(n: usize) -> Dataset {
        let mut ds = Dataset::new(1).unwrap();
        for i in 0..n {
            ds.push(&[i as f64]).unwrap();
        }
        ds
    }

    #[test]
    fn incremental_equals_batch_for_same_data() {
        // Batch-compress the first half, absorb the second half one by
        // one; statistics must equal a batch classification of everything
        // against the same representatives.
        let ds = line(200);
        let first = ds.subset(&(0..100).collect::<Vec<_>>());
        let batch = compress_by_sampling(&first, 10, 7).unwrap();
        let mut inc = IncrementalCompression::from_sample(&batch);
        for i in 100..200 {
            inc.absorb(ds.point(i));
        }
        // Reference: classify all 200 points against the same reps.
        let assignment = crate::nn_classify(&ds, &batch.reps);
        let stats = crate::accumulate_stats(&ds, &assignment, 10);
        assert_eq!(inc.n_objects(), 200);
        for (a, b) in inc.stats().iter().zip(&stats) {
            assert_eq!(a.n(), b.n());
            for (x, y) in a.ls().iter().zip(b.ls()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn from_representatives_seeds_one_point_each() {
        let reps = line(5);
        let inc = IncrementalCompression::from_representatives(reps);
        assert_eq!(inc.k(), 5);
        assert_eq!(inc.n_objects(), 5);
        assert_eq!(inc.total_mass(), 5);
        assert!(inc.stats().iter().all(|cf| cf.n() == 1));
    }

    #[test]
    fn absorb_assigns_to_nearest() {
        let reps = Dataset::from_rows(1, &[&[0.0], &[100.0]]).unwrap();
        let mut inc = IncrementalCompression::from_representatives(reps);
        assert_eq!(inc.absorb(&[10.0]), 0);
        assert_eq!(inc.absorb(&[90.0]), 1);
        assert_eq!(inc.members()[0], vec![0, 2]);
        assert_eq!(inc.members()[1], vec![1, 3]);
    }

    #[test]
    fn absorb_all_matches_loop() {
        let reps = line(4);
        let batch = line(50);
        let mut a = IncrementalCompression::from_representatives(reps.clone());
        a.absorb_all(&batch);
        let mut b = IncrementalCompression::from_representatives(reps);
        for p in batch.iter() {
            b.absorb(p);
        }
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn bubbles_from_incremental_stats_cluster_correctly() {
        // Stream two groups into a 4-rep compression; the derived bubble
        // weights must sum to the stream size.
        let reps = Dataset::from_rows(1, &[&[0.0], &[5.0], &[100.0], &[105.0]]).unwrap();
        let mut inc = IncrementalCompression::from_representatives(reps);
        for i in 0..100 {
            inc.absorb(&[(i % 10) as f64]);
            inc.absorb(&[100.0 + (i % 10) as f64]);
        }
        let total: u64 = inc.stats().iter().map(Cf::n).sum();
        assert_eq!(total, 204);
        // The stats feed straight into a bubble space.
        let centroids: Vec<_> = inc.stats().iter().map(|cf| cf.centroid()[0]).collect();
        assert!(centroids[0] < 10.0 && centroids[2] > 90.0);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn absorb_wrong_dim_panics() {
        let mut inc = IncrementalCompression::from_representatives(line(3));
        inc.absorb(&[0.0, 1.0]);
    }

    #[test]
    fn try_absorb_rejects_non_finite_without_mutation() {
        let mut inc = IncrementalCompression::from_representatives(line(3));
        let before_stats = inc.stats().to_vec();
        let before_assignment = inc.assignment().to_vec();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(
                inc.try_absorb(&[bad]),
                Err(SpatialError::NonFiniteCoordinate { point: 3, coord: 0 })
            );
        }
        assert_eq!(
            inc.try_absorb(&[0.0, 1.0]),
            Err(SpatialError::DimensionMismatch { expected: 1, got: 2 })
        );
        assert_eq!(inc.stats(), &before_stats[..]);
        assert_eq!(inc.assignment(), &before_assignment[..]);
        assert_eq!(inc.n_objects(), 3);
        // A valid point still goes through afterwards.
        assert_eq!(inc.try_absorb(&[1.0]), Ok(1));
    }

    #[test]
    fn try_absorb_all_is_atomic() {
        // The batch has a NaN in its *last* row; nothing from the batch
        // may be absorbed, including the valid leading rows.
        let mut inc = IncrementalCompression::from_representatives(line(3));
        let batch = Dataset::from_flat_unchecked(1, vec![0.0, 1.0, f64::NAN]);
        let before_stats = inc.stats().to_vec();
        assert_eq!(
            inc.try_absorb_all(&batch),
            Err(SpatialError::NonFiniteCoordinate { point: 5, coord: 0 })
        );
        assert_eq!(inc.stats(), &before_stats[..]);
        assert_eq!(inc.n_objects(), 3);
        // A clean batch reports one representative per point.
        let clean = line(4);
        assert_eq!(inc.try_absorb_all(&clean).unwrap().len(), 4);
        assert_eq!(inc.n_objects(), 7);
    }

    #[test]
    fn absorb_caps_at_the_u32_id_range() {
        // An injected counter stands in for 2³² real absorbs.
        let mut inc = IncrementalCompression::from_representatives(line(2));
        inc.force_object_count_for_tests(Dataset::MAX_POINTS - 1);
        assert_eq!(inc.try_absorb(&[0.5]), Ok(0));
        assert_eq!(inc.n_objects(), Dataset::MAX_POINTS);
        assert_eq!(
            inc.try_absorb(&[0.5]),
            Err(SpatialError::TooManyPoints {
                len: Dataset::MAX_POINTS + 1,
                max: Dataset::MAX_POINTS
            })
        );
        // Batch absorbs respect the same cap before absorbing anything.
        let batch = line(3);
        assert_eq!(
            inc.try_absorb_all(&batch),
            Err(SpatialError::TooManyPoints {
                len: Dataset::MAX_POINTS + 3,
                max: Dataset::MAX_POINTS
            })
        );
    }

    #[test]
    #[should_panic(expected = "absorb of invalid point")]
    fn absorb_panics_on_non_finite() {
        let mut inc = IncrementalCompression::from_representatives(line(3));
        inc.absorb(&[f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "absorb of invalid batch")]
    fn absorb_all_panics_on_non_finite() {
        let mut inc = IncrementalCompression::from_representatives(line(3));
        inc.absorb_all(&Dataset::from_flat_unchecked(1, vec![f64::INFINITY]));
    }
}
